"""The wall-clock observability plane (DESIGN.md §14).

Rides the deterministic :mod:`repro.core.telemetry` primitives across
process boundaries: end-to-end job traces stitched from every node's
shipped spans, a crash-surviving flight recorder per node, Prometheus
text exposition + a long-poll /events feed on the gateway, and the
``repro top`` terminal dashboard. Everything here is stdlib-only and
strictly additive — simulated-plane runs stay byte-identical and the
telemetry-off overhead gate still holds.
"""

from .events import EventLog, parse_jsonl, render_jsonl
from .flight import FlightRecorder, flight_path, load_flight
from .jobtrace import (
    ID_BLOCK,
    MAX_INCARNATIONS,
    job_trace,
    load_spans,
    render_job_trace,
    span_origin,
)
from .prom import (
    CONTENT_TYPE,
    parse_prometheus,
    render_prometheus,
    sample_value,
    split_metric_key,
)
from .top import build_frame, render_top, run_top

__all__ = [
    "CONTENT_TYPE",
    "EventLog",
    "FlightRecorder",
    "ID_BLOCK",
    "MAX_INCARNATIONS",
    "build_frame",
    "flight_path",
    "job_trace",
    "load_flight",
    "load_spans",
    "parse_jsonl",
    "parse_prometheus",
    "render_job_trace",
    "render_jsonl",
    "render_prometheus",
    "render_top",
    "run_top",
    "sample_value",
    "span_origin",
    "split_metric_key",
]
