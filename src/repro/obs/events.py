"""A bounded, sequence-numbered event feed (the gateway's /events).

Job-lifecycle transitions (submitted / assigned / requeued / done /
cancelled) are appended by the :class:`~repro.control.workqueue.WorkQueue`
as they happen; HTTP long-pollers tail the feed with
``GET /events?since=<seq>`` and get back newline-delimited JSON. The
ring is fixed-size: a slow consumer loses old events (and can see the
gap in the seq numbers), never stalls the producer.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Iterable, Optional

__all__ = ["EventLog", "render_jsonl"]

DEFAULT_EVENT_CAPACITY = 1024


class EventLog:
    """Fixed-capacity ring of seq-stamped event dicts."""

    __slots__ = ("capacity", "_events", "next_seq", "dropped")

    def __init__(self, capacity: int = DEFAULT_EVENT_CAPACITY) -> None:
        self.capacity = int(capacity)
        self._events: deque = deque(maxlen=self.capacity)
        #: Seq of the next event to be appended (first event gets 0).
        self.next_seq = 0
        #: Events evicted by the ring before any consumer saw them.
        self.dropped = 0

    @property
    def latest_seq(self) -> int:
        """Seq of the newest event, or -1 when the log is empty."""
        return self.next_seq - 1

    def append(self, event: dict) -> int:
        """Stamp ``event`` with the next seq and append it; returns seq."""
        if len(self._events) == self.capacity:
            self.dropped += 1
        seq = self.next_seq
        event["seq"] = seq
        self.next_seq = seq + 1
        self._events.append(event)
        return seq

    def since(self, seq: int, limit: int = 500) -> list[dict]:
        """Events with seq strictly greater than ``seq``, oldest first."""
        if seq >= self.latest_seq:
            return []
        out = [e for e in self._events if e["seq"] > seq]
        return out[:limit] if limit else out

    def __len__(self) -> int:
        return len(self._events)


def render_jsonl(events: Iterable[dict]) -> str:
    """Newline-delimited JSON, one event per line (byte-stable order)."""
    return "".join(
        json.dumps(e, sort_keys=True, separators=(",", ":")) + "\n"
        for e in events)


def parse_jsonl(text: str) -> list[dict]:
    """Inverse of :func:`render_jsonl`; skips blank lines."""
    out = []
    for line in text.splitlines():
        if line.strip():
            out.append(json.loads(line))
    return out
