"""``repro top`` — a live terminal dashboard over the gateway.

Polls the gateway's JSON snapshot (/metrics.json), queue counts, and
the /events long-poll feed, and renders the numbers a human steering an
SC98-style run actually watches: submissions/s, queue depth, per-site
delivered-vs-available utilisation, p50/p99 route latency, and the most
recent job-lifecycle events. Stdlib only; rendering is a pure function
of one sampled frame so tests never need a terminal (or a gateway).
"""

from __future__ import annotations

import sys
import time
from typing import Optional

from .prom import split_metric_key

__all__ = ["build_frame", "render_top", "run_top"]

_CLEAR = "\x1b[H\x1b[2J"
SUBMIT_ROUTE = "POST /jobs"


def quantile_from_histogram(hist: dict, q: float) -> float:
    """The bucket upper bound at quantile ``q`` (+inf bucket clamps to
    the top finite bound)."""
    total = hist.get("count", 0)
    if total <= 0:
        return 0.0
    bounds = hist.get("bounds", [])
    counts = hist.get("counts", [])
    target = q * total
    seen = 0
    for i, bound in enumerate(bounds):
        seen += counts[i] if i < len(counts) else 0
        if seen >= target:
            return float(bound)
    return float(bounds[-1]) if bounds else 0.0


def _sum_counters(counters: dict, name: str,
                  route: Optional[str] = None) -> int:
    total = 0
    for key, value in counters.items():
        kname, labels = split_metric_key(key)
        if kname != name:
            continue
        if route is not None and labels.get("route") != route:
            continue
        total += value
    return total


def build_frame(metrics: dict, queue: Optional[dict] = None,
                events: Optional[list] = None,
                prev: Optional[dict] = None,
                now: Optional[float] = None) -> dict:
    """Distil one dashboard frame from a /metrics.json snapshot.

    ``prev`` is the previous frame (for rate deltas); rates are 0.0 on
    the first sample.
    """
    now = time.monotonic() if now is None else now
    counters = metrics.get("counters", {})
    gauges = metrics.get("gauges", {})
    histograms = metrics.get("histograms", {})

    submitted = _sum_counters(counters, "http.requests", route=SUBMIT_ROUTE)
    requests = _sum_counters(counters, "http.requests")

    sites: dict[str, dict] = {}
    for key, value in gauges.items():
        name, labels = split_metric_key(key)
        site = labels.get("site")
        if site is None:
            continue
        slot = sites.setdefault(site, {})
        if name == "site.utilisation":
            slot["utilisation"] = value
        elif name == "site.delivered_ops":
            slot["delivered"] = value
        elif name == "site.available_ops":
            slot["available"] = value

    routes: dict[str, dict] = {}
    for key, hist in histograms.items():
        name, labels = split_metric_key(key)
        if name != "http.latency_ms":
            continue
        routes[labels.get("route", "?")] = {
            "count": hist.get("count", 0),
            "p50_ms": quantile_from_histogram(hist, 0.50),
            "p99_ms": quantile_from_histogram(hist, 0.99),
        }

    queue_depth = None
    for key, value in gauges.items():
        name, _labels = split_metric_key(key)
        if name == "sch.queue_depth":
            queue_depth = value
            break
    frame = {
        "now": now,
        "submitted_total": submitted,
        "requests_total": requests,
        "submissions_per_s": 0.0,
        "requests_per_s": 0.0,
        "queue_depth": queue_depth,
        "queue": dict(queue or {}),
        "sites": sites,
        "routes": routes,
        "events": list(events or [])[-8:],
    }
    if prev is not None:
        dt = now - prev.get("now", now)
        if dt > 0:
            frame["submissions_per_s"] = (
                (submitted - prev.get("submitted_total", 0)) / dt)
            frame["requests_per_s"] = (
                (requests - prev.get("requests_total", 0)) / dt)
    return frame


def _bar(fraction: float, width: int = 20) -> str:
    fraction = min(1.0, max(0.0, fraction))
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


def render_top(frame: dict, width: int = 78) -> str:
    """Render one frame as plain text (no ANSI — the loop adds that)."""
    lines = ["repro top — gateway live view", "=" * width]
    depth = frame.get("queue_depth")
    queue = frame.get("queue") or {}
    depth = queue.get("depth", depth)
    lines.append(
        f"submissions/s {frame['submissions_per_s']:8.1f}   "
        f"requests/s {frame['requests_per_s']:8.1f}   "
        f"queue depth {('?' if depth is None else int(depth)):>6}")
    counts = {k: v for k, v in queue.items() if k != "depth"}
    if counts:
        lines.append("jobs: " + "  ".join(
            f"{k}={counts[k]}" for k in sorted(counts)))
    sites = frame.get("sites") or {}
    if sites:
        lines.append("-" * width)
        lines.append(f"{'site':<12} {'busy':<22} {'util':>6} "
                     f"{'delivered':>12} {'available':>12}")
        for site in sorted(sites):
            row = sites[site]
            util = float(row.get("utilisation", 0.0))
            lines.append(
                f"{site:<12} [{_bar(util)}] {util * 100:5.1f}% "
                f"{row.get('delivered', 0):>12,.0f} "
                f"{row.get('available', 0):>12,.0f}")
    routes = frame.get("routes") or {}
    if routes:
        lines.append("-" * width)
        lines.append(f"{'route':<24} {'count':>8} {'p50 ms':>8} "
                     f"{'p99 ms':>8}")
        for route in sorted(routes):
            row = routes[route]
            lines.append(f"{route:<24} {row['count']:>8} "
                         f"{row['p50_ms']:>8.1f} {row['p99_ms']:>8.1f}")
    events = frame.get("events") or []
    if events:
        lines.append("-" * width)
        for event in events:
            t = event.get("t", 0.0)
            lines.append(f"  t={t:9.2f}  {event.get('event', '?'):<10} "
                         f"{event.get('job', '')}")
    return "\n".join(lines)


def run_top(contact: str, interval: float = 1.0,
            duration: Optional[float] = None, once: bool = False,
            out=None) -> int:
    """Poll the gateway and repaint until interrupted (or --once)."""
    from ..control.client import GatewayClient, HttpError

    out = sys.stdout if out is None else out
    prev: Optional[dict] = None
    since = -1
    t0 = time.monotonic()
    try:
        with GatewayClient(contact, timeout=max(2.0, interval + 1.0)) \
                as client:
            while True:
                try:
                    metrics = client.metrics()
                    queue = client.queue()
                    events = client.events(since=since, wait=0.0)
                except HttpError as exc:
                    print(f"gateway {contact} unreachable: {exc}",
                          file=out)
                    return 1
                if events:
                    since = max(e.get("seq", since) for e in events)
                frame = build_frame(metrics, queue=queue, events=events,
                                    prev=prev)
                text = render_top(frame)
                if once:
                    print(text, file=out)
                    return 0
                print(_CLEAR + text, file=out, flush=True)
                prev = frame
                if (duration is not None
                        and time.monotonic() - t0 >= duration):
                    return 0
                time.sleep(interval)
    except KeyboardInterrupt:
        return 0
