"""Prometheus text exposition over the telemetry registry snapshot.

The gateway's /metrics endpoint speaks the Prometheus text format
(version 0.0.4) so any off-the-shelf scraper — or ``repro top`` — can
consume the same counters/gauges/histograms the simulated plane exports
as JSON. The renderer works on the exact dict shape
:meth:`~repro.core.telemetry.MetricsRegistry.snapshot` produces: metric
keys are ``name{k=v,...}`` strings (sorted labels), histogram values are
``{"bounds", "counts", "count", "total"}`` with the implicit +Inf
overflow bucket in ``counts[-1]``.

A strict :func:`parse_prometheus` rides along so tests and CI can
round-trip the exposition instead of eyeballing it: every sample line
must parse back to (name, labels, value) or the whole scrape is
rejected.
"""

from __future__ import annotations

import math
import re
from typing import Iterable, Optional

__all__ = [
    "CONTENT_TYPE",
    "split_metric_key",
    "render_prometheus",
    "parse_prometheus",
]

#: The content type a conforming text-format scrape is served under.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_OK = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_BAD_LABEL_CHARS = re.compile(r"[^a-zA-Z0-9_]")

_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"          # metric name
    r"(?:\{(.*)\})?"                         # optional label block
    r"[ \t]+"
    r"([+-]?(?:[0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?|Inf|NaN))$")
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def split_metric_key(key: str) -> tuple[str, dict]:
    """Split a registry key ``name{k=v,...}`` into (name, labels).

    Inverse of the registry's ``_metric_key``: labels are ``,``-joined
    ``k=v`` pairs (values never contain commas or braces by
    construction — routes and site names don't).
    """
    brace = key.find("{")
    if brace < 0:
        return key, {}
    name = key[:brace]
    labels: dict[str, str] = {}
    inner = key[brace + 1:key.rfind("}")]
    for pair in inner.split(","):
        if not pair:
            continue
        k, _, v = pair.partition("=")
        labels[k] = v
    return name, labels


def _sanitize(name: str) -> str:
    """Coerce a registry name (dots, dashes) to a legal Prometheus one."""
    out = _BAD_CHARS.sub("_", name)
    if not out or not _NAME_OK.match(out):
        out = "_" + out
    return out


def _sanitize_label(name: str) -> str:
    out = _BAD_LABEL_CHARS.sub("_", name)
    if not out or not _LABEL_OK.match(out):
        out = "_" + out
    return out


def _escape(value: str) -> str:
    return (value.replace("\\", "\\\\")
                 .replace("\n", "\\n")
                 .replace('"', '\\"'))


def _fmt(value: float) -> str:
    if isinstance(value, bool):  # pragma: no cover - registries never do
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    f = float(value)
    if math.isinf(f):
        return "+Inf" if f > 0 else "-Inf"
    if math.isnan(f):
        return "NaN"
    if f == int(f) and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def _label_block(labels: dict, extra: Optional[list[tuple[str, str]]] = None
                 ) -> str:
    pairs = [(_sanitize_label(k), _escape(str(v)))
             for k, v in sorted(labels.items())]
    if extra:
        pairs.extend((k, _escape(v)) for k, v in extra)
    if not pairs:
        return ""
    return "{" + ",".join(f'{k}="{v}"' for k, v in pairs) + "}"


def _families(section: dict) -> dict:
    """Group ``name{labels} -> value`` entries into exposition families."""
    fams: dict[str, list[tuple[dict, object]]] = {}
    for key in sorted(section):
        name, labels = split_metric_key(key)
        fams.setdefault(_sanitize(name), []).append((labels, section[key]))
    return fams


def render_prometheus(snapshot: dict) -> str:
    """Render a registry snapshot as Prometheus text exposition.

    ``snapshot`` is the ``{"counters", "gauges", "histograms"}`` dict
    from :meth:`MetricsRegistry.snapshot`. Deterministic: families and
    label sets are emitted sorted, so identical snapshots render to
    identical bytes.
    """
    lines: list[str] = []
    for fam, rows in sorted(_families(snapshot.get("counters", {})).items()):
        lines.append(f"# TYPE {fam} counter")
        for labels, value in rows:
            lines.append(f"{fam}{_label_block(labels)} {_fmt(value)}")
    for fam, rows in sorted(_families(snapshot.get("gauges", {})).items()):
        lines.append(f"# TYPE {fam} gauge")
        for labels, value in rows:
            lines.append(f"{fam}{_label_block(labels)} {_fmt(value)}")
    for fam, rows in sorted(_families(
            snapshot.get("histograms", {})).items()):
        lines.append(f"# TYPE {fam} histogram")
        for labels, hist in rows:
            bounds = hist.get("bounds", [])
            counts = hist.get("counts", [])
            cumulative = 0
            for i, bound in enumerate(bounds):
                cumulative += counts[i] if i < len(counts) else 0
                lines.append(
                    f"{fam}_bucket"
                    f"{_label_block(labels, [('le', _fmt(float(bound)))])}"
                    f" {cumulative}")
            total_count = hist.get("count", 0)
            lines.append(
                f"{fam}_bucket{_label_block(labels, [('le', '+Inf')])}"
                f" {total_count}")
            lines.append(
                f"{fam}_sum{_label_block(labels)}"
                f" {_fmt(float(hist.get('total', 0.0)))}")
            lines.append(
                f"{fam}_count{_label_block(labels)} {total_count}")
    return "\n".join(lines) + "\n" if lines else ""


def _parse_labels(block: str) -> dict:
    labels: dict[str, str] = {}
    pos = 0
    block = block.strip()
    while pos < len(block):
        match = _LABEL_RE.match(block, pos)
        if match is None:
            raise ValueError(f"malformed label block at {block[pos:]!r}")
        value = (match.group(2)
                 .replace("\\n", "\n").replace('\\"', '"')
                 .replace("\\\\", "\\"))
        labels[match.group(1)] = value
        pos = match.end()
        if pos < len(block):
            if block[pos] != ",":
                raise ValueError(f"expected ',' in label block at "
                                 f"{block[pos:]!r}")
            pos += 1
    return labels


def parse_prometheus(text: str) -> list[dict]:
    """Parse text exposition into ``{"name", "labels", "value"}`` samples.

    Strict on purpose: any line that is neither a comment, blank, nor a
    well-formed sample raises ``ValueError``. CI uses this to assert the
    gateway's /metrics actually speaks the format it claims to.
    """
    samples: list[dict] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip() or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: not a valid sample: {line!r}")
        name, label_block, raw = match.groups()
        labels = _parse_labels(label_block) if label_block else {}
        if raw in ("+Inf", "Inf"):
            value: float = math.inf
        elif raw == "-Inf":
            value = -math.inf
        elif raw == "NaN":
            value = math.nan
        else:
            value = float(raw)
        samples.append({"name": name, "labels": labels, "value": value})
    return samples


def sample_value(samples: Iterable[dict], name: str,
                 **labels: str) -> Optional[float]:
    """The value of the first sample matching name + label subset."""
    for sample in samples:
        if sample["name"] != name:
            continue
        if all(sample["labels"].get(k) == v for k, v in labels.items()):
            return sample["value"]
    return None
