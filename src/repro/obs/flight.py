"""Flight recorder: a crash-surviving ring of recent spans and logs.

The telemetry shipper loses whatever happened after the last
``COL_REPORT`` when a node dies — exactly the seconds that explain the
death. The flight recorder closes that gap: every closed span (and log
line) is appended to a per-incarnation JSONL spool, flushed per record
like the job journal, with ring semantics via two-segment rotation —
once ``capacity`` records are written the segment rotates to ``*.1`` and
a fresh one starts, so disk holds at most ~2x capacity records and the
most recent ``capacity`` are always recoverable.

On a graceful SIGTERM the drain hook :meth:`FlightRecorder.seal` writes
the still-open spans plus a footer naming the stop reason. On SIGKILL
nothing runs — and nothing needs to: the spool already holds the
history. The supervisor reaps the dump with :func:`load_flight` and
feeds it to the collector, which dedups spans by id (tracer id blocks
make span ids globally unique per incarnation).
"""

from __future__ import annotations

import json
import os
from typing import Optional

__all__ = ["FlightRecorder", "load_flight", "flight_path"]

DEFAULT_FLIGHT_CAPACITY = 2048
FLIGHT_SUFFIX = ".flight.jsonl"


def flight_path(data_dir: str, node: str, incarnation: int) -> str:
    """Where node ``name`` incarnation ``n`` spools its flight records."""
    return os.path.join(data_dir, f"{node}.{incarnation}{FLIGHT_SUFFIX}")


class FlightRecorder:
    """Incrementally spool closed spans/logs; survive SIGKILL by design.

    ``telemetry`` is the node's :class:`~repro.core.telemetry.Telemetry`;
    :meth:`tick` (called from the driver's reactor hook) takes every span
    closed since the last tick. Open spans wait in ``_pending`` (finish
    mutates in place) and are force-dumped by :meth:`seal`.
    """

    def __init__(self, path: str, telemetry=None, node: str = "",
                 incarnation: int = 0, epoch: float = 0.0,
                 capacity: int = DEFAULT_FLIGHT_CAPACITY) -> None:
        self.path = path
        self.telemetry = telemetry
        self.node = node
        self.incarnation = incarnation
        self.epoch = epoch
        self.capacity = max(1, int(capacity))
        self.records = 0          # total records ever spooled
        self.rotations = 0
        self._written = 0         # records in the current segment
        self._cursor = 0          # first tracer span not yet considered
        self._pending: list = []  # spans seen but still open
        self._sealed = False
        self._fh = open(path, "w", encoding="utf-8")
        self._header()

    # -- spool ----------------------------------------------------------------
    def _header(self) -> None:
        self._emit({"kind": "hello", "node": self.node,
                    "incarnation": self.incarnation, "epoch": self.epoch,
                    "capacity": self.capacity})

    def _emit(self, record: dict) -> None:
        if self._fh.closed:
            return
        self._fh.write(json.dumps(record, sort_keys=True,
                                  separators=(",", ":")) + "\n")
        # Flushed per record, like the job journal: the whole point is
        # that the bytes are on disk when the SIGKILL lands.
        self._fh.flush()

    def _rotate_if_full(self) -> None:
        if self._written < self.capacity:
            return
        self._fh.close()
        os.replace(self.path, self.path + ".1")
        self._fh = open(self.path, "w", encoding="utf-8")
        self._written = 0
        self.rotations += 1
        self._header()

    def _record(self, kind: str, payload: dict) -> None:
        self._rotate_if_full()
        self._emit({"kind": kind, **payload})
        self._written += 1
        self.records += 1

    # -- driver hooks ---------------------------------------------------------
    def observe_log(self, t: float, component: str, level: str,
                    text: str) -> None:
        self._record("log", {"t": t, "component": component,
                             "level": level, "text": text})

    @property
    def cursor(self) -> int:
        """Absolute index of the first span not yet spooled (trim bound)."""
        return self._cursor

    def tick(self) -> int:
        """Spool every span closed since the last tick; returns count."""
        if self.telemetry is None or not self.telemetry.tracer.enabled:
            return 0
        tracer = self.telemetry.tracer
        fresh = tracer.spans[max(self._cursor - tracer.dropped, 0):]
        self._cursor = tracer.dropped + len(tracer.spans)
        candidates = self._pending + fresh
        taken = 0
        still_open = []
        for span in candidates:
            if span.end is None:
                still_open.append(span)
            else:
                self._record("span", span.to_dict())
                taken += 1
        self._pending = still_open
        return taken

    def seal(self, reason: str = "") -> None:
        """Graceful-exit path: dump open spans and a footer, then close."""
        if self._sealed or self._fh.closed:
            return
        self._sealed = True
        if self.telemetry is not None and self.telemetry.tracer.enabled:
            tracer = self.telemetry.tracer
            fresh = tracer.spans[max(self._cursor - tracer.dropped, 0):]
            self._cursor = tracer.dropped + len(tracer.spans)
            for span in self._pending + fresh:
                self._record("span", span.to_dict())
            self._pending = []
        self._emit({"kind": "seal", "reason": reason,
                    "records": self.records})
        self._fh.close()

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()


def _read_records(path: str) -> list[dict]:
    records: list[dict] = []
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except ValueError:
                    # A torn final line is expected when the process was
                    # killed mid-write; everything before it is intact.
                    break
    except OSError:
        pass
    return records


def load_flight(path: str) -> Optional[dict]:
    """Load a flight spool (current segment + rotated predecessor).

    Returns ``{"node", "incarnation", "epoch", "spans", "logs",
    "sealed", "reason"}`` holding the most recent ``capacity`` records,
    or ``None`` when no readable spool exists at ``path``.
    """
    records = _read_records(path + ".1") + _read_records(path)
    if not records:
        return None
    header = next((r for r in records if r.get("kind") == "hello"), None)
    if header is None:
        return None
    capacity = int(header.get("capacity", DEFAULT_FLIGHT_CAPACITY))
    spans = [r for r in records if r.get("kind") == "span"]
    logs = [r for r in records if r.get("kind") == "log"]
    seal = next((r for r in reversed(records) if r.get("kind") == "seal"),
                None)
    keep = spans[-capacity:]
    for record in keep:
        record.pop("kind", None)
    for record in logs:
        record.pop("kind", None)
    return {
        "node": header.get("node", ""),
        "incarnation": int(header.get("incarnation", 0)),
        "epoch": float(header.get("epoch", 0.0)),
        "capacity": capacity,
        "spans": keep,
        "logs": logs[-capacity:],
        "sealed": seal is not None,
        "reason": (seal or {}).get("reason", ""),
    }
