"""Walk one job's causal span chain out of a merged trace.

``repro serve`` writes every span the collector merged (epoch-shifted
onto one wall-clock timeline, flight-recorder recoveries included) to
``spans.json``. A job submitted over POST /jobs roots a trace there:
the gateway's ingress span mints the TraceContext, the WorkQueue stamps
it into the journal record and the outgoing work unit, and every
downstream actor — scheduler assignment, each client incarnation's work
slices, requeues after a kill, final completion — parents its spans on
that context. ``repro trace --job <id> --from <dir>`` loads the file,
finds the job's trace id, and renders the chain chronologically with
per-incarnation provenance derived from the span-id block layout.
"""

from __future__ import annotations

import json
import os
from typing import Iterable, Optional

__all__ = [
    "ID_BLOCK",
    "MAX_INCARNATIONS",
    "span_origin",
    "load_spans",
    "job_trace",
    "render_job_trace",
]

#: Tracer id block per (node index, incarnation) on the live plane —
#: the single source of truth; ``live.node`` imports these.
ID_BLOCK = 1_000_000
#: Incarnations per node index inside the id space.
MAX_INCARNATIONS = 64

SPANS_FILENAME = "spans.json"


def span_origin(span_id: int) -> tuple[int, int]:
    """Map a live-plane span id back to (node_index, incarnation).

    Inverse of the ``run_node`` id_base formula
    ``((idx + 1) * MAX_INCARNATIONS + incarnation) * ID_BLOCK``.
    Returns ``(-1, -1)`` for ids outside any live block (simulated runs
    use id_base 0).
    """
    block = span_id // ID_BLOCK
    if block < MAX_INCARNATIONS:
        return -1, -1
    return block // MAX_INCARNATIONS - 1, block % MAX_INCARNATIONS


def load_spans(path: str) -> list[dict]:
    """Load span dicts from a ``spans.json`` file or a run directory."""
    if os.path.isdir(path):
        path = os.path.join(path, SPANS_FILENAME)
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if isinstance(doc, dict):
        doc = doc.get("spans", [])
    return list(doc)


def _job_of(span: dict) -> Optional[str]:
    args = span.get("args") or {}
    return args.get("job_id") or args.get("id") or args.get("unit_id")


def find_job_trace_id(spans: Iterable[dict], job_id: str) -> Optional[int]:
    """The trace id rooted by ``job_id``'s gateway ingress, if any."""
    fallback = None
    for span in spans:
        if _job_of(span) != job_id:
            continue
        if span.get("name") == "job ingress":
            return span.get("trace_id")
        if fallback is None:
            fallback = span.get("trace_id")
    return fallback


def job_trace(spans: Iterable[dict], job_id: str) -> dict:
    """Collect and order every span on ``job_id``'s trace.

    Returns ``{"job", "trace_id", "spans", "incarnations", "requeues"}``;
    ``spans`` sorted by (start, span_id) — the one causal chain the
    acceptance criteria ask for. Raises ``KeyError`` when the job roots
    no trace in the file.
    """
    spans = list(spans)
    trace_id = find_job_trace_id(spans, job_id)
    if trace_id is None:
        raise KeyError(f"no trace found for job {job_id!r}")
    chain = sorted(
        (s for s in spans if s.get("trace_id") == trace_id),
        key=lambda s: (s.get("start", 0.0), s.get("span_id", 0)))
    incarnations = sorted({
        span_origin(s.get("span_id", 0))
        for s in chain if span_origin(s.get("span_id", 0))[0] >= 0})
    requeues = sum(1 for s in chain
                   if "requeue" in (s.get("name") or "")
                   or s.get("outcome") == "requeue")
    return {
        "job": job_id,
        "trace_id": trace_id,
        "spans": chain,
        "incarnations": incarnations,
        "requeues": requeues,
    }


def _fmt_args(args: dict, limit: int = 3) -> str:
    if not args:
        return ""
    parts = [f"{k}={args[k]}" for k in sorted(args)[:limit]]
    more = len(args) - limit
    if more > 0:
        parts.append(f"+{more}")
    return " " + " ".join(parts)


def render_job_trace(trace: dict) -> str:
    """One causal span walk, human-readable, chronological."""
    chain = trace["spans"]
    lines = [f"job {trace['job']}  trace {trace['trace_id']}  "
             f"{len(chain)} spans  requeues={trace['requeues']}"]
    if trace["incarnations"]:
        incs = ", ".join(f"node{n}/inc{i}"
                         for n, i in trace["incarnations"])
        lines.append(f"incarnations: {incs}")
    t0 = chain[0].get("start", 0.0) if chain else 0.0
    for span in chain:
        start = span.get("start", 0.0)
        end = span.get("end")
        dur = "" if end is None else f" {max(0.0, end - start) * 1000:.2f}ms"
        node_idx, inc = span_origin(span.get("span_id", 0))
        origin = "sim" if node_idx < 0 else f"inc{inc}"
        outcome = span.get("outcome") or ""
        outcome = f" [{outcome}]" if outcome and outcome != "ok" else ""
        lines.append(
            f"  +{(start - t0) * 1000:9.2f}ms  {origin:>5}  "
            f"{span.get('component', '?'):<14} {span.get('name', '?')}"
            f"{dur}{outcome}{_fmt_args(span.get('args') or {})}")
    return "\n".join(lines)
