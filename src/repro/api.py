"""The supported public surface of the EveryWare reproduction.

Everything an application, experiment, or example needs is re-exported
here under one roof::

    from repro.api import Component, Send, RetryPolicy, FaultPlan, ...

Anything *not* listed in ``__all__`` is an internal detail that may move
between releases; the deep module paths (``repro.core.gossip.server``,
...) keep working but are not part of the compatibility contract.

The surface groups into five layers:

* **Components and effects** — the sans-IO programming model: a
  :class:`Component` handles messages/timers and returns effect lists
  (:class:`Send`, :class:`SetTimer`, ...); drivers own all I/O.
* **Policies** — :class:`TimeoutPolicy` and :class:`RetryPolicy`
  describe *how* a reliable :class:`Send` is timed out and retried; the
  drivers execute them so components never hand-roll retry loops.
* **Drivers and transport** — :class:`SimDriver` (simulated grid) and
  :class:`NetDriver` (real TCP) run components; :class:`Message`,
  :class:`TcpClient`/:class:`TcpServer` are the lingua franca, riding
  the :class:`EventLoop` reactor with :class:`AsyncSender` write queues
  (:func:`run_netbench` measures the stack — ``repro bench --net``).
* **Simulated grid** — :class:`Environment`, :class:`Host`,
  :class:`Network`, load models, and the fault-injection subsystem
  (:class:`FaultPlan` and its injectors).
* **Services and scenarios** — the EveryWare services (gossip,
  scheduler, persistent state, logging, task farm) and the prebuilt
  experiment worlds (:func:`build_core`, :func:`build_sc98`,
  :func:`run_chaos`).
* **Observability** — :class:`Telemetry` (metrics registry + causal
  tracer), the :class:`EngineProfiler`, and the Chrome-trace/metrics
  exporters (see DESIGN.md §9 and ``repro trace``).
* **Compute plane** — :class:`ComputeLane` implementations
  (:class:`InlineLane` / :class:`PoolLane` via :func:`make_lane`) that
  execute heuristic kernel tasks inline or on a worker pool with
  bit-identical results (see DESIGN.md §10 and ``repro bench``).
* **Live deployment plane** — the same components as real OS processes
  on localhost: :func:`sc98_topology` → :func:`run_live` stands up a
  supervised world and returns a merged :class:`LiveReport` (see
  DESIGN.md §11 and ``repro live``).
"""

from __future__ import annotations

# -- components and effects ------------------------------------------------
from .core.component import (
    CancelTimer,
    Component,
    Effect,
    LogLine,
    NullRuntime,
    Send,
    SetTimer,
    Stop,
)

# -- retry / timeout policies ----------------------------------------------
from .core.policy import RetryPolicy, TimeoutPolicy

# -- observability ----------------------------------------------------------
from .core.telemetry import (
    MetricsRegistry,
    Span,
    Telemetry,
    TraceContext,
    Tracer,
    export_chrome_trace,
    render_timeline,
    write_metrics_json,
    write_trace_json,
)
from .simgrid.profile import EngineProfiler

# -- drivers and transport -------------------------------------------------
from .core.simdriver import SimDriver
from .core.netdriver import NetDriver
from .core.linguafranca import (
    AsyncSender,
    EventLoop,
    Message,
    TcpClient,
    TcpServer,
)
from .core.netbench import run_netbench
from .core.forecasting import (
    ForecastRegistry,
    ForecasterBank,
    default_bank,
    event_tag,
)

# -- gossip and services ---------------------------------------------------
from .core.gossip import ComparatorRegistry, GossipAgent, GossipServer, StateStore
from .core.services import (
    LoggingServer,
    PersistentStateServer,
    QueueWorkSource,
    SchedulerServer,
)
from .core.services.framework import TaskFarmMaster, TaskFarmWorker

# -- simulated grid --------------------------------------------------------
from .simgrid import Environment
from .simgrid.host import Host, HostSpec
from .simgrid.load import ConstantLoad, MeanRevertingLoad
from .simgrid.network import Address, AddressError, Network
from .simgrid.rand import RngStreams
from .simgrid.faults import (
    FaultPlan,
    FaultStats,
    HostCrash,
    InfraOutage,
    MessageChaos,
    SitePartition,
)

# -- compute plane ----------------------------------------------------------
from .parallel import (
    ComputeLane,
    EvalRound,
    EvalResult,
    InlineLane,
    PoolLane,
    Recount,
    RecountResult,
    StepBatch,
    StepBatchResult,
    make_lane,
    run_task,
)
from .parallel.scaling import run_scaling

# -- application: Ramsey search --------------------------------------------
from .ramsey import (
    RAMSEY_BEST,
    Coloring,
    ModelEngine,
    RamseyClient,
    RealEngine,
    TabuSearch,
    is_counter_example,
    ramsey_comparator,
    unit_generator,
)
from .ramsey.verify import counter_example_validator

# -- scenarios and experiment harnesses ------------------------------------
from .apps.runner import run_farm
from .experiments.scenario import ServiceCore, build_core, model_client_factory
from .experiments.sc98 import SC98Config, SC98Results, SC98World, build_sc98
from .experiments.report import (
    render_fig2,
    render_fig3a,
    render_fig3b,
    render_grid_criteria,
    render_headlines,
)
from .experiments.chaos import (
    PROFILES,
    ChaosConfig,
    ChaosReport,
    build_plan,
    run_chaos,
    run_chaos_matrix,
)
from .experiments.observe import (
    ObserveConfig,
    ObserveWorld,
    requeue_chains,
    run_observe,
)

# -- live deployment plane ---------------------------------------------------
from .live import (
    Collector,
    LiveReport,
    Manifest,
    NodeSpec,
    RestartPolicy,
    Supervisor,
    Topology,
    build_manifest,
    check_invariants,
    run_live,
    sc98_topology,
)

__all__ = [
    # components and effects
    "CancelTimer",
    "Component",
    "Effect",
    "LogLine",
    "NullRuntime",
    "Send",
    "SetTimer",
    "Stop",
    # policies
    "RetryPolicy",
    "TimeoutPolicy",
    # observability
    "MetricsRegistry",
    "Span",
    "Telemetry",
    "TraceContext",
    "Tracer",
    "export_chrome_trace",
    "render_timeline",
    "write_metrics_json",
    "write_trace_json",
    "EngineProfiler",
    # drivers and transport
    "SimDriver",
    "NetDriver",
    "AsyncSender",
    "EventLoop",
    "Message",
    "TcpClient",
    "TcpServer",
    "run_netbench",
    "ForecastRegistry",
    "ForecasterBank",
    "default_bank",
    "event_tag",
    # gossip and services
    "ComparatorRegistry",
    "GossipAgent",
    "GossipServer",
    "StateStore",
    "LoggingServer",
    "PersistentStateServer",
    "QueueWorkSource",
    "SchedulerServer",
    "TaskFarmMaster",
    "TaskFarmWorker",
    # simulated grid
    "Environment",
    "Host",
    "HostSpec",
    "ConstantLoad",
    "MeanRevertingLoad",
    "Address",
    "AddressError",
    "Network",
    "RngStreams",
    # fault injection
    "FaultPlan",
    "FaultStats",
    "HostCrash",
    "InfraOutage",
    "MessageChaos",
    "SitePartition",
    # compute plane
    "ComputeLane",
    "EvalRound",
    "EvalResult",
    "InlineLane",
    "PoolLane",
    "Recount",
    "RecountResult",
    "StepBatch",
    "StepBatchResult",
    "make_lane",
    "run_scaling",
    "run_task",
    # Ramsey application
    "RAMSEY_BEST",
    "Coloring",
    "ModelEngine",
    "RamseyClient",
    "RealEngine",
    "TabuSearch",
    "is_counter_example",
    "ramsey_comparator",
    "unit_generator",
    "counter_example_validator",
    # scenarios
    "run_farm",
    "ServiceCore",
    "build_core",
    "model_client_factory",
    "SC98Config",
    "SC98Results",
    "SC98World",
    "build_sc98",
    "render_fig2",
    "render_fig3a",
    "render_fig3b",
    "render_grid_criteria",
    "render_headlines",
    "PROFILES",
    "ChaosConfig",
    "ChaosReport",
    "build_plan",
    "run_chaos",
    "run_chaos_matrix",
    "ObserveConfig",
    "ObserveWorld",
    "requeue_chains",
    "run_observe",
    # live deployment plane
    "Collector",
    "LiveReport",
    "Manifest",
    "NodeSpec",
    "RestartPolicy",
    "Supervisor",
    "Topology",
    "build_manifest",
    "check_invariants",
    "run_live",
    "sc98_topology",
]
