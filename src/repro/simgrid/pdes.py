"""Conservative parallel discrete-event simulation.

The classic conservative PDES recipe (Chandy/Misra/Bryant) adapted to
this engine's determinism contract:

* **Partitions** — simulated hosts grouped by site
  (:meth:`Network.site_partitions`). Intra-site traffic is fast and
  chatty; inter-site traffic pays wide-area latency. That latency gap is
  exactly what makes site boundaries the right partition boundaries.
* **Lookahead** — the minimum inter-site link latency
  (:meth:`Network.min_cross_site_latency`). Congestion and jitter only
  *inflate* delays, so the static minimum is a hard lower bound: no
  event executed inside a window of that width can be affected by a
  cross-partition message sent within the same window.
* **Windows and barriers** — the run advances in lookahead-sized windows
  (:meth:`Environment.run_windowed`). Inside a window, per-partition
  work that has been offloaded to the compute lane (the PR-4 kernel
  pool: tabu step batches, candidate evaluation rounds) executes on
  worker processes while the event loop advances; each window edge is a
  synchronization barrier where outstanding completions are harvested
  before any cross-window event can observe them.

The parity contract is absolute and inherited from the compute plane:
kernels are bit-identical between inline and pooled execution, simulated
time is charged from exact op counts, and :meth:`Environment.run_windowed`
is provably order-identical to a plain ``run`` — so a windowed parallel
run produces byte-identical world snapshots, op meters, and parity
hashes to the serial run, for every seed and worker count. Parallelism
changes wall-clock time only, never outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .engine import Environment
from .network import Network

__all__ = ["PartitionPlan", "WindowedRunner", "plan_partitions"]

#: Floor on the synchronization window: a pathologically small inter-site
#: latency would make barrier overhead dominate (windows cost one heap
#: sentinel + one barrier call each).
MIN_WINDOW = 1e-6


@dataclass
class PartitionPlan:
    """Static partitioning decision for one world."""

    #: site name -> host names, in registration order.
    partitions: dict[str, list[str]] = field(default_factory=dict)
    #: Synchronization window width (simulated seconds).
    lookahead: float = 0.0

    @property
    def n_partitions(self) -> int:
        return len(self.partitions)

    @property
    def n_hosts(self) -> int:
        return sum(len(hosts) for hosts in self.partitions.values())

    def to_dict(self) -> dict:
        return {
            "partitions": {site: list(hosts)
                           for site, hosts in self.partitions.items()},
            "n_partitions": self.n_partitions,
            "n_hosts": self.n_hosts,
            "lookahead": self.lookahead,
        }


def plan_partitions(network: Network,
                    window: Optional[float] = None) -> PartitionPlan:
    """Partition a network's hosts by site and derive the lookahead.

    ``window`` overrides the derived lookahead (it may only *shrink* it:
    a larger window would let an inter-site message land inside the
    window that sent it, voiding the conservative guarantee)."""
    lookahead = network.min_cross_site_latency()
    if window is not None:
        lookahead = min(float(window), lookahead)
    return PartitionPlan(
        partitions=network.site_partitions(),
        lookahead=max(lookahead, MIN_WINDOW),
    )


class WindowedRunner:
    """Drives one world to its horizon in lookahead-sized windows.

    ``lane`` is the compute lane whose in-flight work the barriers
    reconcile; ``None`` (or an inline lane) degrades to pure windowed
    serial execution — same results, same event order, only the barrier
    cadence added.
    """

    def __init__(
        self,
        env: Environment,
        network: Network,
        lane=None,
        window: Optional[float] = None,
    ) -> None:
        self.env = env
        self.lane = lane
        self.plan = plan_partitions(network, window=window)
        self.windows = 0
        self.barriers = 0
        self.harvested = 0

    def _barrier(self, edge: float) -> None:
        self.windows += 1
        lane = self.lane
        if lane is not None:
            # Harvest every completion the window's offloaded kernels
            # produced; anything still running belongs to a task whose
            # requesting component is blocked on it and charges its sim
            # time from op counts, so it cannot leak across the edge.
            self.barriers += 1
            self.harvested += len(lane.drain())

    def run(self, until: float) -> dict:
        """Run to ``until``; returns the run's synchronization stats."""
        self.env.run_windowed(until, self.plan.lookahead, self._barrier)
        return self.stats()

    def stats(self) -> dict:
        out = self.plan.to_dict()
        out.update({
            "windows": self.windows,
            "barriers": self.barriers,
            "harvested": self.harvested,
            "workers": getattr(self.lane, "workers", 0) if self.lane else 0,
        })
        return out
