"""Simulated wide-area network.

Routes datagram-style deliveries between named endpoints
(``"host/port"``). Delivery latency is ``site-pair latency x congestion +
size/bandwidth``; deliveries are silently dropped when either endpoint's
host is down, the destination is not listening, or a partition separates
the two sites. Senders recover through time-outs, exactly as the paper's
lingua franca does over TCP (§2.1): EveryWare deliberately avoids relying
on connection-failure signals.

The global congestion factor is how scenarios express SCInet-style
network-wide disturbance (§2.2: "network performance on the exhibit floor
varied dramatically").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Iterable, Optional

from .engine import Environment
from .host import Host
from .load import EventSchedule, LoadModel
from .rand import PrefixedStreams, RngStreams
from .resources import Store

__all__ = ["Address", "AddressError", "Network", "NetworkStats", "Delivery"]


class AddressError(ValueError):
    """Canonical error for malformed endpoint addresses.

    Subclasses :class:`ValueError` so pre-existing ``except ValueError``
    callers keep working.
    """


@dataclass(frozen=True, order=True)
class Address:
    """Endpoint address: a host name and a named port."""

    host: str
    port: str

    def __str__(self) -> str:
        return f"{self.host}/{self.port}"

    @classmethod
    def parse(cls, text: str) -> "Address":
        host, sep, port = text.partition("/")
        if not sep or not host or not port or "/" in port:
            raise AddressError(f"bad address {text!r} (want 'host/port')")
        return cls(host, port)


@dataclass
class NetworkStats:
    sent: int = 0
    delivered: int = 0
    dropped_down: int = 0
    dropped_partition: int = 0
    dropped_unbound: int = 0
    dropped_loss: int = 0
    bytes_delivered: int = 0
    # Fault-injection accounting (see repro.simgrid.faults.MessageChaos).
    dropped_fault: int = 0
    duplicated_fault: int = 0
    delayed_fault: int = 0


@dataclass
class Delivery:
    """What a listener pulls from its mailbox."""

    src: Address
    dst: Address
    payload: bytes
    sent_at: float
    delivered_at: float
    #: Sender's trace context, carried out-of-band so delivery-time drops
    #: can be attributed to their cause without decoding the payload.
    trace: Optional[tuple[int, int]] = None


class Network:
    """Message fabric connecting simulated hosts."""

    def __init__(
        self,
        env: Environment,
        streams: RngStreams | PrefixedStreams,
        base_latency: float = 0.05,
        intra_site_latency: float = 0.002,
        bandwidth: float = 1.0e6,  # bytes/second end-to-end
        jitter: float = 0.2,
        congestion_model: Optional[LoadModel] = None,
        congestion_period: float = 30.0,
        loss_rate: float = 0.0,
    ) -> None:
        self.env = env
        self.base_latency = base_latency
        self.intra_site_latency = intra_site_latency
        self.bandwidth = bandwidth
        self.jitter = jitter
        #: Probability an individual datagram is silently lost in transit
        #: (flaky exhibit-floor networking; senders recover via time-outs).
        self.loss_rate = loss_rate
        self._rng = streams.get("network")
        self._hosts: dict[str, Host] = {}
        self._mailboxes: dict[Address, Store] = {}
        self._site_latency: dict[tuple[str, str], float] = {}
        self._partition_groups: list[frozenset[str]] = []
        #: Active message-chaos injector (duck-typed: anything with a
        #: ``fates(rng) -> Optional[list[float]]`` method; installed and
        #: removed by :class:`repro.simgrid.faults.FaultPlan`). ``None``
        #: keeps the send path on its zero-overhead fast path.
        self.chaos = None
        self.stats = NetworkStats()
        #: Optional world telemetry (see :meth:`attach_telemetry`); the
        #: fault plan also parks its active injector span contexts here so
        #: drops can name the fault that caused them.
        self.telemetry = None
        self.chaos_ctx: Optional[tuple[int, int]] = None
        self.partition_ctx: Optional[tuple[int, int]] = None
        self._drop_counters: dict = {}
        self._c_delivered = None
        # Congestion >= 1 multiplies latency and divides bandwidth.
        self._congestion = 1.0
        self._congestion_model = congestion_model or EventSchedule()
        self._congestion_period = congestion_period
        self._started = False

    # -- topology ---------------------------------------------------------
    def add_host(self, host: Host) -> None:
        if host.name in self._hosts:
            raise ValueError(f"duplicate host {host.name!r}")
        self._hosts[host.name] = host

    def host(self, name: str) -> Host:
        return self._hosts[name]

    def hosts(self) -> Iterable[Host]:
        return self._hosts.values()

    def set_site_latency(self, a: str, b: str, latency: float) -> None:
        """Override the one-way latency between two sites (symmetric)."""
        self._site_latency[(a, b)] = latency
        self._site_latency[(b, a)] = latency

    def site_partitions(self) -> dict[str, list[str]]:
        """Hosts grouped by site, in registration order — the natural
        partitioning for conservative parallel DES (intra-site traffic is
        fast and chatty, inter-site traffic pays wide-area latency)."""
        parts: dict[str, list[str]] = {}
        for host in self._hosts.values():
            parts.setdefault(host.site, []).append(host.name)
        return parts

    def min_cross_site_latency(self) -> float:
        """Lower bound on the delay of any inter-site message, *now and
        forever*: congestion multiplies latency by >= 1, jitter multiplies
        by >= 1, and transfer time adds >= 0 — so the static minimum over
        site-pair base latencies is a valid conservative lookahead for
        windowed parallel execution (no event can be affected by a
        cross-partition message sent less than this long ago)."""
        sites = {host.site for host in self._hosts.values()}
        lookahead = self.base_latency
        for (a, b), latency in self._site_latency.items():
            if a != b and a in sites and b in sites:
                lookahead = min(lookahead, latency)
        return lookahead

    def start(self) -> None:
        """Begin the congestion process. Idempotent."""
        if self._started:
            return
        self._started = True
        self.env.process(self._congestion_loop())

    def _congestion_loop(self) -> Generator:
        while True:
            avail = self._congestion_model.advance(
                self.env.now, self._congestion_period, self._rng
            )
            # availability 1.0 -> congestion 1.0; availability 0.1 -> 10x.
            self._congestion = 1.0 / max(avail, 0.05)
            yield self.env.timeout(self._congestion_period)

    @property
    def congestion(self) -> float:
        return self._congestion

    # -- observability -----------------------------------------------------
    def attach_telemetry(self, telemetry) -> None:
        """Wire the fabric into a world's metrics registry + tracer."""
        self.telemetry = telemetry
        self._drop_counters = {}
        self._c_delivered = telemetry.metrics.counter("net.delivered")

    def _note_drop(
        self,
        reason: str,
        trace: Optional[tuple[int, int]],
        cause: Optional[tuple[int, int]] = None,
    ) -> None:
        """Mirror a drop onto the metrics registry and, for traced
        messages, emit a drop span naming the causing fault (if any)."""
        telemetry = self.telemetry
        if telemetry is None:
            return
        counter = self._drop_counters.get(reason)
        if counter is None:
            counter = self._drop_counters[reason] = (
                telemetry.metrics.counter(f"net.{reason}"))
        counter.inc()
        tracer = telemetry.tracer
        if tracer.enabled and trace is not None:
            args = None
            if cause is not None:
                args = {"fault_trace": cause[0], "fault_span": cause[1]}
            tracer.instant(
                f"drop {reason}",
                self.env.now,
                component="network",
                parent=trace,
                outcome="dropped-by-fault" if cause is not None else "dropped",
                args=args,
            )

    # -- partitions ----------------------------------------------------------
    def set_partitions(self, groups: Iterable[Iterable[str]]) -> None:
        """Partition sites into isolated groups. Sites not listed form an
        implicit extra group. Pass ``[]`` to heal all partitions."""
        self._partition_groups = [frozenset(g) for g in groups]

    def _same_partition(self, site_a: str, site_b: str) -> bool:
        if not self._partition_groups:
            return True
        ga = gb = None
        for group in self._partition_groups:
            if site_a in group:
                ga = group
            if site_b in group:
                gb = group
        return ga is gb

    # -- endpoints ---------------------------------------------------------
    def bind(self, address: Address) -> Store:
        """Start listening at ``address``; returns the delivery mailbox."""
        if address.host not in self._hosts:
            raise ValueError(f"unknown host {address.host!r}")
        if address in self._mailboxes:
            raise ValueError(f"address {address} already bound")
        box = Store(self.env)
        self._mailboxes[address] = box
        return box

    def unbind(self, address: Address) -> None:
        self._mailboxes.pop(address, None)

    def is_bound(self, address: Address) -> bool:
        return address in self._mailboxes

    # -- transmission ---------------------------------------------------------
    def delay(self, src_host: str, dst_host: str, nbytes: int) -> float:
        """Transmission delay for ``nbytes`` between two hosts, now."""
        a = self._hosts[src_host].site
        b = self._hosts[dst_host].site
        if a == b:
            latency = self._site_latency.get((a, b), self.intra_site_latency)
        else:
            latency = self._site_latency.get((a, b), self.base_latency)
        latency *= self._congestion
        if self.jitter > 0:
            latency *= 1.0 + self.jitter * float(self._rng.random())
        xfer = nbytes / (self.bandwidth / self._congestion)
        return latency + xfer

    def send(self, src: Address, dst: Address, payload: bytes,
             trace: Optional[tuple[int, int]] = None) -> None:
        """Fire-and-forget datagram send; loss is silent by design."""
        self.stats.sent += 1
        src_host = self._hosts.get(src.host)
        dst_host = self._hosts.get(dst.host)
        if src_host is None or not src_host.up:
            self.stats.dropped_down += 1
            self._note_drop("dropped_down", trace,
                            src_host.down_ctx if src_host is not None else None)
            return
        if dst_host is None:
            self.stats.dropped_unbound += 1
            self._note_drop("dropped_unbound", trace)
            return
        if not self._same_partition(src_host.site, dst_host.site):
            self.stats.dropped_partition += 1
            self._note_drop("dropped_partition", trace, self.partition_ctx)
            return
        if self.loss_rate > 0.0 and float(self._rng.random()) < self.loss_rate:
            self.stats.dropped_loss += 1
            self._note_drop("dropped_loss", trace)
            return
        delay = self.delay(src.host, dst.host, len(payload))
        if self.chaos is not None:
            self._send_chaotic(src, dst, payload, delay, trace)
            return
        delivery = Delivery(
            src=src,
            dst=dst,
            payload=payload,
            sent_at=self.env.now,
            delivered_at=self.env.now + delay,
            trace=trace,
        )
        # Plain timeout + callback: cheaper than a process per message.
        timer = self.env.timeout(delay)
        assert timer.callbacks is not None
        timer.callbacks.append(lambda _ev: self._deliver(delivery))

    def _send_chaotic(self, src: Address, dst: Address, payload: bytes,
                      delay: float,
                      trace: Optional[tuple[int, int]] = None) -> None:
        """Slow path behind an active fault injector: the chaos hook maps
        one logical send to zero (drop), one, or several (duplicate)
        physical deliveries, each with an optional extra delay — extra
        delays on a subset of traffic are what reorder messages."""
        fates = self.chaos.fates(self._rng)
        if not fates:
            self.stats.dropped_fault += 1
            self._note_drop("dropped_fault", trace, self.chaos_ctx)
            return
        if len(fates) > 1:
            self.stats.duplicated_fault += len(fates) - 1
            if self.telemetry is not None:
                self.telemetry.metrics.counter(
                    "net.duplicated_fault").inc(len(fates) - 1)
        for extra in fates:
            if extra > 0.0:
                self.stats.delayed_fault += 1
            delivery = Delivery(
                src=src,
                dst=dst,
                payload=payload,
                sent_at=self.env.now,
                delivered_at=self.env.now + delay + extra,
                trace=trace,
            )
            timer = self.env.timeout(delay + extra)
            assert timer.callbacks is not None
            timer.callbacks.append(
                lambda _ev, _d=delivery: self._deliver(_d))

    def _deliver(self, delivery: Delivery) -> None:
        dst_host = self._hosts.get(delivery.dst.host)
        if dst_host is None or not dst_host.up:
            self.stats.dropped_down += 1
            self._note_drop("dropped_down", delivery.trace,
                            dst_host.down_ctx if dst_host is not None else None)
            return
        box = self._mailboxes.get(delivery.dst)
        if box is None:
            self.stats.dropped_unbound += 1
            self._note_drop("dropped_unbound", delivery.trace)
            return
        self.stats.delivered += 1
        self.stats.bytes_delivered += len(delivery.payload)
        if self._c_delivered is not None:
            self._c_delivered.inc()
        box.put(delivery)
