"""Deterministic named random streams.

Every stochastic component of the simulation (each host's load process,
each infrastructure's churn process, the network congestion process) draws
from its own named stream so that adding or removing one component never
perturbs the randomness seen by the others. Streams are derived from a
single root seed via ``numpy.random.SeedSequence`` keyed by a stable hash
of the stream name.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngStreams"]


class RngStreams:
    """A factory of independent, reproducible ``numpy`` generators."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._cache: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name`` (created on first use).

        The same (seed, name) pair always yields an identical stream,
        independent of creation order.
        """
        gen = self._cache.get(name)
        if gen is None:
            digest = hashlib.sha256(name.encode("utf-8")).digest()
            # Fold the 256-bit digest into four 64-bit words of entropy.
            words = [
                int.from_bytes(digest[i : i + 8], "little") for i in range(0, 32, 8)
            ]
            seq = np.random.SeedSequence(entropy=self.seed, spawn_key=tuple(words))
            gen = np.random.default_rng(seq)
            self._cache[name] = gen
        return gen

    def child(self, prefix: str) -> "PrefixedStreams":
        """A view that prepends ``prefix:`` to every stream name."""
        return PrefixedStreams(self, prefix)


class PrefixedStreams:
    """Namespaced view over :class:`RngStreams`."""

    def __init__(self, root: RngStreams, prefix: str) -> None:
        self._root = root
        self._prefix = prefix

    def get(self, name: str) -> np.random.Generator:
        return self._root.get(f"{self._prefix}:{name}")

    def child(self, prefix: str) -> "PrefixedStreams":
        return PrefixedStreams(self._root, f"{self._prefix}:{prefix}")
