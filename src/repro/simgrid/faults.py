"""Fault injection: schedulable attacks on the simulated Grid.

The SC98 run survived precisely the failures this module lets a scenario
*provoke on purpose* (PAPER §2.2, §3, §5):

* **host crash / reboot** (:class:`HostCrash`) — Condor reclamations and
  plain machine failures killed guest processes without warning;
* **site partition / heal** (:class:`SitePartition`) — SCInet was
  reconfigured on the fly and whole sites dropped off the network; the
  Gossip pool split into subcliques and re-merged afterwards;
* **message drop / duplicate / delay / reorder**
  (:class:`MessageChaos`) — the exhibit-floor network lost and delayed
  datagrams; EveryWare's lingua franca never trusts the transport;
* **infrastructure outage** (:class:`InfraOutage`) — entire
  infrastructures went dark mid-run (the paper's Legion anecdote: the
  net.Legion testbed was lost and later restored while the application
  kept running on everything else).

A :class:`FaultPlan` is a deterministic schedule of such injectors.
``install`` arms it against a world (environment + network + adapters);
every action is recorded in ``plan.log`` and counted in ``plan.stats``
so experiments can assert exactly what was injected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Generator, Iterable, Optional, Sequence

from .engine import Environment
from .network import Network

if TYPE_CHECKING:  # pragma: no cover
    from ..infra.base import InfraAdapter

__all__ = [
    "FaultPlan",
    "FaultStats",
    "HostCrash",
    "SitePartition",
    "InfraOutage",
    "MessageChaos",
]


@dataclass(frozen=True)
class HostCrash:
    """Take one host down at ``at``; optionally reboot it later.

    A reboot only brings the *machine* back — guest processes stay dead
    until an infrastructure adapter (or the plan's ``adapters`` hook)
    relaunches a client, exactly like an SC98 machine coming back."""

    at: float
    host: str
    reboot_after: Optional[float] = None
    reason: str = "fault:crash"


@dataclass(frozen=True)
class SitePartition:
    """Split the network into isolated site groups at ``at``.

    ``groups`` follows :meth:`Network.set_partitions`; sites not listed
    form an implicit extra group. ``heal_after`` seconds later the
    partition is healed (all groups cleared)."""

    at: float
    groups: tuple[tuple[str, ...], ...]
    heal_after: Optional[float] = None


@dataclass(frozen=True)
class InfraOutage:
    """An entire infrastructure goes dark at ``at`` (every host down),
    optionally restored ``restore_after`` seconds later — the Legion
    story of §5.3 writ as an injector. ``infra`` names the adapter."""

    at: float
    infra: str
    restore_after: Optional[float] = None


@dataclass(frozen=True)
class MessageChaos:
    """A window of Byzantine transport behavior on every datagram.

    While active (``at`` .. ``at + duration``), each send independently:

    * is dropped with probability ``drop``;
    * otherwise is duplicated with probability ``duplicate`` (the copy
      gets an extra uniform(0, delay_max) delay);
    * and/or is delayed by uniform(0, delay_max) with probability
      ``delay`` — delaying a random subset of traffic is what *reorders*
      it relative to program order.
    """

    at: float
    duration: float
    drop: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0
    delay_max: float = 5.0

    def fates(self, rng) -> list[float]:
        """Map one send to its delivery fates: a list of extra delays,
        empty for a drop. Randomness comes from the network's own
        deterministic stream."""
        if self.drop > 0.0 and float(rng.random()) < self.drop:
            return []
        extra = 0.0
        if self.delay > 0.0 and float(rng.random()) < self.delay:
            extra = float(rng.random()) * self.delay_max
        fates = [extra]
        if self.duplicate > 0.0 and float(rng.random()) < self.duplicate:
            fates.append(float(rng.random()) * self.delay_max)
        return fates


Injector = HostCrash | SitePartition | InfraOutage | MessageChaos


@dataclass
class FaultStats:
    """What actually fired (a skipped injector, e.g. an unknown host,
    counts in ``skipped`` rather than failing the run)."""

    crashes: int = 0
    reboots: int = 0
    partitions: int = 0
    heals: int = 0
    outages: int = 0
    restores: int = 0
    chaos_windows: int = 0
    skipped: int = 0


class FaultPlan:
    """A deterministic, inspectable schedule of fault injectors."""

    def __init__(self, injectors: Optional[Iterable[Injector]] = None) -> None:
        self.injectors: list[Injector] = list(injectors or [])
        self.stats = FaultStats()
        #: Chronological record of every action taken: (time, event).
        self.log: list[tuple[float, str]] = []
        self._installed = False
        self._adapters: dict[str, "InfraAdapter"] = {}
        #: World telemetry passed to :meth:`install`: every firing bumps a
        #: ``fault.*`` counter (so chaos reports and metric scrapes agree)
        #: and, when tracing, opens a root span that victim-side drop spans
        #: point back to.
        self.telemetry = None

    # -- construction (chainable) ------------------------------------------
    def add(self, injector: Injector) -> "FaultPlan":
        self.injectors.append(injector)
        return self

    def crash(self, at: float, host: str, reboot_after: Optional[float] = None,
              reason: str = "fault:crash") -> "FaultPlan":
        return self.add(HostCrash(at=at, host=host, reboot_after=reboot_after,
                                  reason=reason))

    def partition(self, at: float, groups: Sequence[Sequence[str]],
                  heal_after: Optional[float] = None) -> "FaultPlan":
        frozen = tuple(tuple(g) for g in groups)
        return self.add(SitePartition(at=at, groups=frozen, heal_after=heal_after))

    def outage(self, at: float, infra: str,
               restore_after: Optional[float] = None) -> "FaultPlan":
        return self.add(InfraOutage(at=at, infra=infra,
                                    restore_after=restore_after))

    def chaos(self, at: float, duration: float, drop: float = 0.0,
              duplicate: float = 0.0, delay: float = 0.0,
              delay_max: float = 5.0) -> "FaultPlan":
        return self.add(MessageChaos(at=at, duration=duration, drop=drop,
                                     duplicate=duplicate, delay=delay,
                                     delay_max=delay_max))

    # -- introspection ------------------------------------------------------
    def last_heal_time(self) -> Optional[float]:
        """When the final scheduled disturbance ends (partition heal,
        host reboot, infra restore, chaos window close) — the moment
        from which recovery metrics should be measured."""
        ends: list[float] = []
        for inj in self.injectors:
            if isinstance(inj, SitePartition) and inj.heal_after is not None:
                ends.append(inj.at + inj.heal_after)
            elif isinstance(inj, HostCrash) and inj.reboot_after is not None:
                ends.append(inj.at + inj.reboot_after)
            elif isinstance(inj, InfraOutage) and inj.restore_after is not None:
                ends.append(inj.at + inj.restore_after)
            elif isinstance(inj, MessageChaos):
                ends.append(inj.at + inj.duration)
        return max(ends) if ends else None

    # -- installation --------------------------------------------------------
    def install(
        self,
        env: Environment,
        network: Network,
        adapters: Iterable["InfraAdapter"] = (),
        telemetry=None,
    ) -> None:
        """Arm every injector as a simulation process. Idempotent per
        plan instance (a plan installs once)."""
        if self._installed:
            raise RuntimeError("fault plan already installed")
        self._installed = True
        self.telemetry = telemetry if telemetry is not None else network.telemetry
        adapter_by_name = {a.name: a for a in adapters}
        self._adapters = adapter_by_name
        for injector in self.injectors:
            if isinstance(injector, HostCrash):
                env.process(self._run_crash(env, network, injector))
            elif isinstance(injector, SitePartition):
                env.process(self._run_partition(env, network, injector))
            elif isinstance(injector, InfraOutage):
                env.process(self._run_outage(env, adapter_by_name, injector))
            elif isinstance(injector, MessageChaos):
                env.process(self._run_chaos(env, network, injector))
            else:  # pragma: no cover - construction guards against this
                raise TypeError(f"unknown injector {injector!r}")

    def _note(self, now: float, event: str) -> None:
        self.log.append((now, event))

    def _fire(self, now: float, kind: str, detail: str):
        """Mirror one injector firing onto the metrics registry and, when
        tracing, emit a root fault span. Returns the span's context so the
        caller can park it where victims will find it (host.down_ctx,
        network.partition_ctx, ...)."""
        telemetry = self.telemetry
        if telemetry is None:
            return None
        telemetry.metrics.counter(f"fault.{kind}").inc()
        tracer = telemetry.tracer
        if not tracer.enabled:
            return None
        span = tracer.instant(f"fault {kind} {detail}", now,
                              component="faults", outcome="fault")
        return span.ctx

    def _run_crash(self, env: Environment, network: Network,
                   inj: HostCrash) -> Generator:
        yield env.timeout(inj.at)
        try:
            host = network.host(inj.host)
        except KeyError:
            self.stats.skipped += 1
            self._fire(env.now, "skipped", inj.host)
            self._note(env.now, f"skip crash {inj.host} (unknown host)")
            return
        host.go_down(inj.reason)
        host.down_ctx = self._fire(env.now, "crashes", inj.host)
        self.stats.crashes += 1
        self._note(env.now, f"crash {inj.host}")
        if inj.reboot_after is not None:
            yield env.timeout(inj.reboot_after)
            host.go_up()
            self._fire(env.now, "reboots", inj.host)
            self.stats.reboots += 1
            self._note(env.now, f"reboot {inj.host}")
            # The machine is back but its guest processes are not; if an
            # adapter owns the host, have it relaunch a client (the
            # adapter's own failure cycle only handles its own downs).
            adapter = self._adapters.get(host.infra)
            if adapter is not None:
                adapter.respawn_later(host, 0.0)

    def _run_partition(self, env: Environment, network: Network,
                       inj: SitePartition) -> Generator:
        yield env.timeout(inj.at)
        network.set_partitions([list(g) for g in inj.groups])
        network.partition_ctx = self._fire(
            env.now, "partitions", "|".join(",".join(g) for g in inj.groups))
        self.stats.partitions += 1
        self._note(env.now, f"partition {inj.groups!r}")
        if inj.heal_after is not None:
            yield env.timeout(inj.heal_after)
            network.set_partitions([])
            network.partition_ctx = None
            self._fire(env.now, "heals", "partition")
            self.stats.heals += 1
            self._note(env.now, "heal partition")

    def _run_outage(self, env: Environment, adapters: dict,
                    inj: InfraOutage) -> Generator:
        yield env.timeout(inj.at)
        adapter = adapters.get(inj.infra)
        if adapter is None:
            self.stats.skipped += 1
            self._note(env.now, f"skip outage {inj.infra} (unknown adapter)")
            return
        downed = adapter.go_dark(reason=f"fault:outage:{inj.infra}")
        ctx = self._fire(env.now, "outages", inj.infra)
        if ctx is not None:
            for host in adapter.hosts:
                if not host.up:
                    host.down_ctx = ctx
        self.stats.outages += 1
        self._note(env.now, f"outage {inj.infra} ({downed} hosts)")
        if inj.restore_after is not None:
            yield env.timeout(inj.restore_after)
            restored = adapter.relight()
            self._fire(env.now, "restores", inj.infra)
            self.stats.restores += 1
            self._note(env.now, f"restore {inj.infra} ({restored} hosts)")

    def _run_chaos(self, env: Environment, network: Network,
                   inj: MessageChaos) -> Generator:
        yield env.timeout(inj.at)
        network.chaos = inj
        self.stats.chaos_windows += 1
        span = None
        telemetry = self.telemetry
        if telemetry is not None:
            telemetry.metrics.counter("fault.chaos_windows").inc()
            tracer = telemetry.tracer
            if tracer.enabled:
                # The chaos window is a *duration* span: every drop during
                # it points back here via network.chaos_ctx.
                span = tracer.begin("fault chaos_window", component="faults",
                                    start=env.now)
                network.chaos_ctx = span.ctx
        self._note(env.now, f"chaos on (drop={inj.drop} dup={inj.duplicate} "
                            f"delay={inj.delay})")
        yield env.timeout(inj.duration)
        if network.chaos is inj:
            network.chaos = None
        if span is not None:
            telemetry.tracer.finish(span, env.now, "fault")
            if network.chaos_ctx == span.ctx:
                network.chaos_ctx = None
        self._note(env.now, "chaos off")
