"""Discrete-event simulation engine.

This is the substrate on which the SC98-scale EveryWare experiments run.
It is a small, deterministic, generator-coroutine event simulator in the
style of SimPy: simulated processes are Python generators that ``yield``
events (timeouts, other processes, store gets, conditions) and are resumed
when those events trigger.

Determinism guarantees
----------------------
Events scheduled for the same simulated time are processed in FIFO order of
scheduling (a monotonically increasing sequence number breaks ties), so a
simulation driven by a seeded RNG replays identically.

Example
-------
>>> env = Environment()
>>> def proc(env):
...     yield env.timeout(5)
...     return env.now
>>> p = env.process(proc(env))
>>> env.run()
>>> p.value
5
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Condition",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "SimulationError",
    "StopSimulation",
    "PRIORITY_URGENT",
    "PRIORITY_NORMAL",
]

#: Scheduling priorities: lower value is processed first at equal times.
PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1

# Event lifecycle states.
_PENDING = 0
_TRIGGERED = 1  # scheduled on the event queue but callbacks not yet run
_PROCESSED = 2  # callbacks have run


class SimulationError(Exception):
    """Raised for misuse of the simulation API."""


class StopSimulation(Exception):
    """Raised internally to end :meth:`Environment.run` early."""

    def __init__(self, value: Any = None) -> None:
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    ``cause`` carries the value passed to :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> Any:
        return self.args[0]


class Event:
    """A one-shot occurrence that processes may wait on.

    An event starts *pending*; calling :meth:`succeed` or :meth:`fail`
    *triggers* it, scheduling its callbacks at the current simulation time.
    """

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._state: int = _PENDING
        #: Whether a raised failure was handed to a waiter. Unhandled
        #: failures propagate out of Environment.run().
        self._defused: bool = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to occur."""
        return self._state >= _TRIGGERED

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have been executed."""
        return self._state == _PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or the exception if it failed)."""
        if self._state == _PENDING:
            raise SimulationError("value of a pending event is not available")
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = PRIORITY_NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._state != _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self, delay=0, priority=priority)
        return self

    def fail(self, exc: BaseException, priority: int = PRIORITY_NORMAL) -> "Event":
        """Trigger the event as failed with exception ``exc``."""
        if not isinstance(exc, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exc!r}")
        if self._state != _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exc
        self.env.schedule(self, delay=0, priority=priority)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another event (chaining)."""
        if event._ok:
            self.succeed(event._value)
        else:
            event._defused = True
            self.fail(event._value)

    def __repr__(self) -> str:
        state = {_PENDING: "pending", _TRIGGERED: "triggered", _PROCESSED: "processed"}
        return f"<{type(self).__name__} {state[self._state]} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers ``delay`` simulated seconds after creation."""

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        super().__init__(env)
        self._delay = delay
        self._value = value
        self._ok = True
        env.schedule(self, delay=delay)

    def __repr__(self) -> str:
        return f"<Timeout delay={self._delay}>"


class Initialize(Event):
    """Internal: kicks a newly created :class:`Process`."""

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self._ok = True
        self.callbacks.append(process._resume)
        env.schedule(self, delay=0, priority=PRIORITY_URGENT)


class Process(Event):
    """A running simulated process wrapping a generator.

    The process is itself an event that triggers when the generator
    returns (value = return value) or raises (failure).
    """

    def __init__(self, env: "Environment", generator: Generator) -> None:
        if not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None  # event we are waiting on
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._state == _PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting on, if any."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._state != _PENDING:
            raise SimulationError(f"{self!r} has terminated and cannot be interrupted")
        if self._generator is self.env._active_generator:
            raise SimulationError("a process cannot interrupt itself")
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event._defused = True
        event.callbacks.append(self._resume)
        self.env.schedule(event, delay=0, priority=PRIORITY_URGENT)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the triggered event's outcome."""
        env = self.env
        env._active_process = self
        env._active_generator = self._generator
        while True:
            # Detach from the event that woke us.
            if self._target is not None and self._target.callbacks is not None:
                try:
                    self._target.callbacks.remove(self._resume)
                except ValueError:
                    pass
            self._target = None
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    event._defused = True
                    next_event = self._generator.throw(event._value)
            except StopIteration as exc:
                env._active_process = None
                env._active_generator = None
                self.succeed(exc.value)
                return
            except BaseException as exc:
                env._active_process = None
                env._active_generator = None
                self.fail(exc)
                return

            if not isinstance(next_event, Event):
                env._active_process = None
                env._active_generator = None
                err = SimulationError(
                    f"process yielded a non-event: {next_event!r}"
                )
                self.fail(err)
                return

            if next_event._state == _PROCESSED:
                # Already happened: loop and resume immediately with its value.
                event = next_event
                continue
            # Wait for it.
            self._target = next_event
            if next_event.callbacks is None:
                # Being processed right now; shouldn't happen, but be safe.
                event = next_event
                continue
            next_event.callbacks.append(self._resume)
            break
        env._active_process = None
        env._active_generator = None


class Condition(Event):
    """Waits on several events; triggers when ``evaluate`` is satisfied.

    The value of a condition is a dict mapping each *triggered* constituent
    event to its value, in trigger order.
    """

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[list[Event], int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0
        for e in self._events:
            if e.env is not env:
                raise SimulationError("events from different environments")
        if self._evaluate(self._events, 0) and not self._events:
            self.succeed({})
            return
        for e in self._events:
            if e._state == _PROCESSED:
                self._check(e)
            elif e.callbacks is not None:
                e.callbacks.append(self._check)
        # Handle the case where enough events were already processed.
        if self._state == _PENDING and self._evaluate(self._events, self._count):
            self.succeed(self._collect())

    def _collect(self) -> dict:
        return {e: e._value for e in self._events if e._state == _PROCESSED and e._ok}

    def _check(self, event: Event) -> None:
        if self._state != _PENDING:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._evaluate(self._events, self._count):
            self.succeed(self._collect())

    @staticmethod
    def any_events(events: list[Event], count: int) -> bool:
        return count > 0 or not events

    @staticmethod
    def all_events(events: list[Event], count: int) -> bool:
        return count >= len(events)


class AnyOf(Condition):
    """Triggers when any constituent event triggers."""

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.any_events, events)


class AllOf(Condition):
    """Triggers when all constituent events have triggered."""

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.all_events, events)


class Environment:
    """Execution environment: clock, event queue, and process management."""

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        self._active_generator: Optional[Generator] = None

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- event construction ------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        return Process(self, generator)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling & execution ---------------------------------------------
    def schedule(self, event: Event, delay: float = 0.0,
                 priority: int = PRIORITY_NORMAL) -> None:
        """Place a triggered event on the queue ``delay`` seconds from now."""
        if event._state != _PENDING:
            raise SimulationError(f"{event!r} already scheduled")
        event._state = _TRIGGERED
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next scheduled event."""
        if not self._queue:
            raise SimulationError("no more events")
        when, _prio, _seq, event = heapq.heappop(self._queue)
        self._now = when
        callbacks = event.callbacks
        event.callbacks = None
        event._state = _PROCESSED
        assert callbacks is not None
        for cb in callbacks:
            cb(event)
        if not event._ok and not event._defused:
            # An unhandled failure: surface it to the caller of run().
            raise event._value

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the queue empties, time ``until`` passes, or the
        event ``until`` triggers (returning its value)."""
        stop_at = None
        stop_event: Optional[Event] = None
        if isinstance(until, Event):
            stop_event = until
            if stop_event._state == _PROCESSED:
                return stop_event._value

            def _stop(event: Event) -> None:
                raise StopSimulation(event._value)

            if stop_event.callbacks is None:
                return stop_event._value
            stop_event.callbacks.append(_stop)
        elif until is not None:
            stop_at = float(until)
            if stop_at < self._now:
                raise SimulationError(
                    f"until={stop_at} is in the past (now={self._now})"
                )
        try:
            while self._queue:
                if stop_at is not None and self._queue[0][0] >= stop_at:
                    self._now = stop_at
                    return None
                self.step()
        except StopSimulation as stop:
            return stop.value
        if stop_event is not None and stop_event._state != _PROCESSED:
            raise SimulationError("run() until-event was never triggered")
        if stop_at is not None:
            self._now = stop_at
        return None
