"""Discrete-event simulation engine.

This is the substrate on which the SC98-scale EveryWare experiments run.
It is a small, deterministic, generator-coroutine event simulator in the
style of SimPy: simulated processes are Python generators that ``yield``
events (timeouts, other processes, store gets, conditions) and are resumed
when those events trigger.

Determinism guarantees
----------------------
Events scheduled for the same simulated time are processed in FIFO order of
scheduling (a monotonically increasing sequence number breaks ties), so a
simulation driven by a seeded RNG replays identically.

Performance notes
-----------------
Every experiment in this reproduction is bounded by this module's event
loop, so the hot paths are deliberately low-level (see DESIGN.md §6):

* every event class declares ``__slots__`` (no per-event ``__dict__``);
* :class:`Timeout` — the dominant event type by far — schedules itself
  inline instead of going through the generic :meth:`Environment.schedule`
  state checks (a fresh timeout is pending by construction);
* :meth:`Process._resume` never scans callback lists; the rare
  ``interrupt()`` path detaches the process from its old target instead,
  so the per-resume cost is a couple of attribute stores;
* :meth:`Environment.run` inlines the event-pop loop with ``heappop`` and
  the queue bound to locals, and skips the deadline comparison entirely
  when no ``until=<time>`` was given.

None of this changes observable scheduling order: same seeds produce
byte-identical simulation results.

Example
-------
>>> env = Environment()
>>> def proc(env):
...     yield env.timeout(5)
...     return env.now
>>> p = env.process(proc(env))
>>> env.run()
>>> p.value
5
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from sys import getrefcount
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Condition",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "SimulationError",
    "StopSimulation",
    "PRIORITY_URGENT",
    "PRIORITY_NORMAL",
]

#: Scheduling priorities: lower value is processed first at equal times.
PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1

#: Queue entries are ``(time, tag, event)`` 3-tuples where
#: ``tag = (priority - 1) * _PRIORITY_STRIDE + seq`` — priority dominates
#: the monotonically increasing sequence number, exactly as the former
#: ``(time, priority, seq, event)`` 4-tuples sorted, with one less tuple
#: element to build and compare per event. PRIORITY_NORMAL (the common
#: case) lands on ``tag = seq``, a machine-word int with no bignum
#: arithmetic; PRIORITY_URGENT biases by ``-_PRIORITY_STRIDE`` so every
#: urgent event sorts before every normal one at the same time.
_PRIORITY_STRIDE = 1 << 62

#: Tag of the run(until=<time>) deadline sentinel: sorts before any real
#: event at the same time, urgent included (seq >= 1 makes every real tag
#: greater than -_PRIORITY_STRIDE - 1 > this).
_DEADLINE_TAG = -(1 << 63)

_new_timeout = object.__new__  # allocation helper for the timeout fast path


class _Deadline:
    """Queue sentinel for ``run(until=<time>)``.

    Popping the sentinel ends the run: it sorts *before* every real event
    scheduled at the deadline (negative tag), so events at exactly
    ``stop_at`` are not processed — the same semantics as checking
    ``queue[0][0] >= stop_at`` before every pop, without paying for that
    comparison per event. ``callbacks`` is None so the run loop recognizes
    it from the field it already loads. A stale sentinel (left queued when
    a run aborted early) is skipped when eventually popped.
    """

    __slots__ = ("callbacks",)

    def __init__(self) -> None:
        self.callbacks = None

# Event lifecycle states. There is no PROCESSED state value: "callbacks
# have run" is encoded as ``callbacks is None`` (the event loop nulls the
# list out as it pops each event), which the hot paths read anyway — so the
# loop saves one attribute store per event.
_PENDING = 0
_TRIGGERED = 1  # scheduled on the event queue


class SimulationError(Exception):
    """Raised for misuse of the simulation API."""


class StopSimulation(Exception):
    """Raised internally to end :meth:`Environment.run` early."""

    def __init__(self, value: Any = None) -> None:
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    ``cause`` carries the value passed to :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> Any:
        return self.args[0]


class Event:
    """A one-shot occurrence that processes may wait on.

    An event starts *pending*; calling :meth:`succeed` or :meth:`fail`
    *triggers* it, scheduling its callbacks at the current simulation time.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_state", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._state: int = _PENDING
        #: Whether a raised failure was handed to a waiter. Unhandled
        #: failures propagate out of Environment.run(). Events that can
        #: only succeed (timeouts, Initialize) never materialize this slot:
        #: it is read exclusively behind a ``not _ok`` check.
        self._defused: bool = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to occur."""
        return self._state >= _TRIGGERED

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or the exception if it failed)."""
        if self._state == _PENDING:
            raise SimulationError("value of a pending event is not available")
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = PRIORITY_NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._state != _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self._state = _TRIGGERED
        env = self.env
        env._seq += 1
        heappush(env._queue,
                 (env._now, (priority - 1) * _PRIORITY_STRIDE + env._seq, self))
        return self

    def fail(self, exc: BaseException, priority: int = PRIORITY_NORMAL) -> "Event":
        """Trigger the event as failed with exception ``exc``."""
        if not isinstance(exc, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exc!r}")
        if self._state != _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exc
        self._state = _TRIGGERED
        env = self.env
        env._seq += 1
        heappush(env._queue,
                 (env._now, (priority - 1) * _PRIORITY_STRIDE + env._seq, self))
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another event (chaining)."""
        if event._ok:
            self.succeed(event._value)
        else:
            event._defused = True
            self.fail(event._value)

    def __repr__(self) -> str:
        if self.callbacks is None:
            state = "processed"
        elif self._state != _PENDING:
            state = "triggered"
        else:
            state = "pending"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers ``delay`` simulated seconds after creation.

    The constructor schedules inline: a fresh timeout is pending by
    construction, so the generic :meth:`Environment.schedule` state check
    is unnecessary on what is by far the most common event type.
    """

    __slots__ = ("_delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._delay = delay
        self._state = _TRIGGERED
        env._seq += 1
        heappush(env._queue, (env._now + delay, env._seq, self))

    def __repr__(self) -> str:
        return f"<Timeout delay={self._delay}>"


class Initialize(Event):
    """Internal: kicks a newly created :class:`Process`."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        self.env = env
        self.callbacks = [process._bound_resume]
        self._value = None
        self._ok = True
        self._state = _TRIGGERED
        env._seq += 1
        heappush(env._queue, (env._now, env._seq - _PRIORITY_STRIDE, self))


class Process(Event):
    """A running simulated process wrapping a generator.

    The process is itself an event that triggers when the generator
    returns (value = return value) or raises (failure).
    """

    __slots__ = ("_generator", "_target", "_bound_resume")

    def __init__(self, env: "Environment", generator: Generator) -> None:
        if not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None  # event we are waiting on
        # Bind once: `self._resume` creates a fresh bound-method object on
        # every attribute access, and _resume registers itself as a callback
        # on every wait — reuse one binding instead.
        self._bound_resume = self._resume
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._state == _PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting on, if any."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._state != _PENDING:
            raise SimulationError(f"{self!r} has terminated and cannot be interrupted")
        if self.env._active_process is self:
            raise SimulationError("a process cannot interrupt itself")
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event._defused = True
        event.callbacks.append(self._deliver_interrupt)
        self.env.schedule(event, delay=0, priority=PRIORITY_URGENT)

    def _deliver_interrupt(self, event: Event) -> None:
        """Detach from the interrupted wait, then resume with the failure.

        Doing the (linear) callback-list removal here — on the rare
        interrupt path — is what lets :meth:`_resume` skip detach checks
        entirely on every normal wakeup.
        """
        if self._state != _PENDING:
            return  # the process ended before the interrupt was delivered
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._bound_resume)
            except ValueError:
                pass
        self._resume(event)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the triggered event's outcome."""
        env = self.env
        env._active_process = self
        generator = self._generator
        while True:
            try:
                if event._ok:
                    next_event = generator.send(event._value)
                else:
                    event._defused = True
                    next_event = generator.throw(event._value)
            except StopIteration as exc:
                env._active_process = None
                self._target = None
                self.succeed(exc.value)
                return
            except BaseException as exc:
                env._active_process = None
                self._target = None
                self.fail(exc)
                return

            if type(next_event) is Timeout or isinstance(next_event, Event):
                callbacks = next_event.callbacks
                if callbacks is None:
                    # Already happened: loop and resume immediately.
                    event = next_event
                    continue
                # Wait for it.
                self._target = next_event
                callbacks.append(self._bound_resume)
                break

            env._active_process = None
            self._target = None
            err = SimulationError(
                f"process yielded a non-event: {next_event!r}"
            )
            self.fail(err)
            return
        env._active_process = None


class Condition(Event):
    """Waits on several events; triggers when ``evaluate`` is satisfied.

    The value of a condition is a dict mapping each *triggered* constituent
    event to its value, in trigger order.

    Empty conditions are resolved at construction time: ``evaluate`` is
    consulted once with ``(events=[], count=0)`` and, if satisfied, the
    condition succeeds immediately with ``{}``. Both built-in evaluators
    accept the empty set — ``AllOf([])`` is vacuously satisfied and
    ``AnyOf([])`` triggers immediately rather than deadlocking.
    """

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[list[Event], int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0
        for e in self._events:
            if e.env is not env:
                raise SimulationError("events from different environments")
        if not self._events:
            # No constituents: settle now if the evaluator accepts the
            # empty set (both built-ins do), else stay pending forever.
            if self._evaluate(self._events, 0):
                self.succeed({})
            return
        for e in self._events:
            if e.callbacks is None:
                self._check(e)
            else:
                e.callbacks.append(self._check)
        # Handle the case where enough events were already processed.
        if self._state == _PENDING and self._evaluate(self._events, self._count):
            self.succeed(self._collect())

    def _collect(self) -> dict:
        return {e: e._value for e in self._events if e.callbacks is None and e._ok}

    def _check(self, event: Event) -> None:
        if self._state != _PENDING:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._evaluate(self._events, self._count):
            self.succeed(self._collect())

    @staticmethod
    def any_events(events: list[Event], count: int) -> bool:
        return count > 0 or not events

    @staticmethod
    def all_events(events: list[Event], count: int) -> bool:
        return count >= len(events)


class AnyOf(Condition):
    """Triggers when any constituent event triggers (immediately if empty)."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.any_events, events)


class AllOf(Condition):
    """Triggers when all constituent events have triggered (vacuously true
    for an empty set)."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.all_events, events)


class Environment:
    """Execution environment: clock, event queue, and process management."""

    __slots__ = ("_now", "_queue", "_seq", "_active_process", "_free_timeouts",
                 "profiler", "drain_hook")

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        #: Dead Timeout shells recycled by run(); see timeout(). Needs no
        #: size cap: a shell is only parked here after being popped off the
        #: queue, so the list never outgrows the peak number of timeouts
        #: that were ever simultaneously scheduled.
        self._free_timeouts: list[Timeout] = []
        #: Optional :class:`repro.simgrid.profile.EngineProfiler`. ``None``
        #: (the default) keeps run() on the inlined fast loops — the only
        #: cost of the feature when disabled is this one attribute check at
        #: run() entry plus one per driver-handled message.
        self.profiler = None
        #: Optional zero-arg callable invoked between events (after each
        #: event's callbacks). Used by the compute plane to drain pool
        #: completions and refresh queue-depth gauges without the lane
        #: owning the run loop. ``None`` (the default) keeps run() on the
        #: inlined fast loops — one attribute check at run() entry.
        self.drain_hook = None

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- event construction ------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        # Inlined twin of Timeout.__init__ (kept in sync): building the
        # dominant event type through type.__call__ -> __init__ costs an
        # extra Python frame per event, which this factory skips.
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        free = self._free_timeouts
        if free:
            # Reuse a dead shell (and its empty callbacks list) that run()
            # proved unreachable. Recycled shells are known to hold
            # env=self, _ok=True, _state=_TRIGGERED and _value=None (only
            # successfully processed timeouts are recycled, and the
            # recycler clears _value), so only the changed fields need
            # storing.
            t = free.pop()
            t._delay = delay
            if value is not None:
                t._value = value
        else:
            t = _new_timeout(Timeout)
            t.env = self
            t.callbacks = []
            t._value = value
            t._ok = True
            t._delay = delay
            t._state = _TRIGGERED
        seq = self._seq + 1
        self._seq = seq
        heappush(self._queue, (self._now + delay, seq, t))
        return t

    def process(self, generator: Generator) -> Process:
        return Process(self, generator)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling & execution ---------------------------------------------
    def schedule(self, event: Event, delay: float = 0.0,
                 priority: int = PRIORITY_NORMAL) -> None:
        """Place a triggered event on the queue ``delay`` seconds from now."""
        if event._state != _PENDING:
            raise SimulationError(f"{event!r} already scheduled")
        event._state = _TRIGGERED
        self._seq += 1
        heappush(self._queue,
                 (self._now + delay,
                  (priority - 1) * _PRIORITY_STRIDE + self._seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next scheduled event."""
        if not self._queue:
            raise SimulationError("no more events")
        self._now, _tag, event = heappop(self._queue)
        callbacks = event.callbacks
        event.callbacks = None
        for cb in callbacks:
            cb(event)
        if not event._ok and not event._defused:
            # An unhandled failure: surface it to the caller of run().
            raise event._value

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the queue empties, time ``until`` passes, or the
        event ``until`` triggers (returning its value)."""
        if self.profiler is not None:
            return self._run_profiled(until)
        if self.drain_hook is not None:
            return self._run_draining(until)
        stop_at = None
        stop_event: Optional[Event] = None
        if isinstance(until, Event):
            stop_event = until
            if stop_event.callbacks is None:  # already processed
                return stop_event._value

            def _stop(event: Event) -> None:
                raise StopSimulation(event._value)

            stop_event.callbacks.append(_stop)
        elif until is not None:
            stop_at = float(until)
            if stop_at < self._now:
                raise SimulationError(
                    f"until={stop_at} is in the past (now={self._now})"
                )
        # The loops below inline step() with `queue` and `heappop` bound to
        # locals. A deadline is implemented as a queue sentinel rather than
        # a per-event `queue[0][0] >= stop_at` comparison; the sentinel's
        # negative tag sorts it before every real event scheduled at
        # exactly `stop_at`, preserving the seed semantics (events at the
        # deadline are not processed). Identical event ordering either way.
        # After an event's callbacks have run, a refcount of exactly 2
        # (the loop local + getrefcount's argument) proves no process,
        # condition, or user variable can ever reach the event again; dead
        # Timeout shells and their callback lists are recycled through
        # timeout() instead of round-tripping the allocator. Purely an
        # allocation optimization: scheduling order is untouched.
        queue = self._queue
        pop = heappop
        refs = getrefcount
        free = self._free_timeouts
        timeout_cls = Timeout
        if stop_at is None:
            try:
                while queue:
                    self._now, _tag, event = pop(queue)
                    callbacks = event.callbacks
                    event.callbacks = None
                    if len(callbacks) == 1:  # the overwhelmingly common case
                        callbacks[0](event)
                    else:
                        for cb in callbacks:
                            cb(event)
                    # A Timeout can never fail (it is born triggered, so
                    # fail() rejects it), which makes the failure check and
                    # the recycle check mutually exclusive branches.
                    if type(event) is timeout_cls:
                        if refs(event) == 2:
                            callbacks.clear()
                            event.callbacks = callbacks
                            event._value = None
                            free.append(event)
                    elif not event._ok and not event._defused:
                        raise event._value
            except StopSimulation as stop:
                return stop.value
            if stop_event is not None and stop_event.callbacks is not None:
                raise SimulationError("run() until-event was never triggered")
            return None
        sentinel_entry = (stop_at, _DEADLINE_TAG, _Deadline())
        heappush(queue, sentinel_entry)
        try:
            while True:
                self._now, _tag, event = pop(queue)
                callbacks = event.callbacks
                if callbacks is None:
                    # The deadline sentinel: _now is already stop_at.
                    return None
                event.callbacks = None
                if len(callbacks) == 1:  # the overwhelmingly common case
                    callbacks[0](event)
                else:
                    for cb in callbacks:
                        cb(event)
                if type(event) is timeout_cls:
                    if refs(event) == 2:
                        callbacks.clear()
                        event.callbacks = callbacks
                        event._value = None
                        free.append(event)
                elif not event._ok and not event._defused:
                    raise event._value
        except BaseException:
            # Crash path (unhandled event failure, KeyboardInterrupt, ...):
            # withdraw the sentinel so the queue is left clean for any
            # subsequent run()/step() calls.
            try:
                queue.remove(sentinel_entry)
                heapify(queue)
            except ValueError:
                pass
            raise

    def run_windowed(
        self,
        until: float,
        window: float,
        barrier: Optional[Callable[[float], None]] = None,
    ) -> None:
        """Run to ``until`` in fixed-width time windows, invoking
        ``barrier(edge)`` after each window edge is reached.

        Event ordering is *byte-identical* to a single ``run(until=...)``:
        each window is a plain :meth:`run` to the next edge, and the
        deadline sentinel makes an edge a pure checkpoint — events at
        exactly the edge time are processed at the start of the next
        window, in the same ``(time, tag)`` heap order they would have
        been processed in an unwindowed run (the sequence counter runs on
        across windows). This is the synchronization skeleton of the
        conservative parallel DES (see :mod:`repro.simgrid.pdes`): the
        window width is the lookahead — no event inside a window can be
        affected by an inter-partition message sent in the same window —
        and the barrier is where cross-partition work (compute-lane
        completions) is reconciled.
        """
        stop_at = float(until)
        if stop_at < self._now:
            raise SimulationError(
                f"until={stop_at} is in the past (now={self._now})"
            )
        if window <= 0:
            raise SimulationError(f"window must be positive, got {window!r}")
        edge = self._now
        while edge < stop_at:
            edge = min(edge + window, stop_at)
            self.run(until=edge)
            if barrier is not None:
                barrier(edge)

    def _run_profiled(self, until: Optional[float | Event] = None) -> Any:
        """run() twin taken when a profiler is attached: same scheduling
        semantics, but samples per-event-type counts and callback wall
        time. Skips the Timeout-recycling micro-optimization — profiled
        runs measure, fast runs race."""
        from time import perf_counter

        profiler = self.profiler
        stop_at = None
        stop_event: Optional[Event] = None
        if isinstance(until, Event):
            stop_event = until
            if stop_event.callbacks is None:  # already processed
                return stop_event._value

            def _stop(event: Event) -> None:
                raise StopSimulation(event._value)

            stop_event.callbacks.append(_stop)
        elif until is not None:
            stop_at = float(until)
            if stop_at < self._now:
                raise SimulationError(
                    f"until={stop_at} is in the past (now={self._now})"
                )
        queue = self._queue
        sentinel_entry = None
        if stop_at is not None:
            sentinel_entry = (stop_at, _DEADLINE_TAG, _Deadline())
            heappush(queue, sentinel_entry)
        by_type = profiler.events_by_type
        run_t0 = perf_counter()
        try:
            while queue:
                self._now, _tag, event = heappop(queue)
                callbacks = event.callbacks
                if callbacks is None:
                    if sentinel_entry is not None:
                        sentinel_entry = None  # popped: nothing to withdraw
                        return None  # the deadline sentinel ends the run
                    continue  # stale sentinel from an aborted earlier run
                event.callbacks = None
                tname = type(event).__name__
                by_type[tname] = by_type.get(tname, 0) + 1
                profiler.events += 1
                t0 = perf_counter()
                for cb in callbacks:
                    cb(event)
                profiler.callback_time += perf_counter() - t0
                if not event._ok and not event._defused:
                    raise event._value
        except StopSimulation as stop:
            return stop.value
        finally:
            profiler.run_wall_time += perf_counter() - run_t0
            if sentinel_entry is not None:
                try:
                    queue.remove(sentinel_entry)
                    heapify(queue)
                except ValueError:
                    pass
        if stop_event is not None and stop_event.callbacks is not None:
            raise SimulationError("run() until-event was never triggered")
        return None

    def _run_draining(self, until: Optional[float | Event] = None) -> Any:
        """run() twin taken when a drain hook is attached: identical
        scheduling semantics, with the hook called between events so an
        external completion source (the compute plane's worker pool) is
        harvested at every event boundary. Skips the Timeout-recycling
        micro-optimization — the hook may retain event references."""
        hook = self.drain_hook
        stop_at = None
        stop_event: Optional[Event] = None
        if isinstance(until, Event):
            stop_event = until
            if stop_event.callbacks is None:  # already processed
                return stop_event._value

            def _stop(event: Event) -> None:
                raise StopSimulation(event._value)

            stop_event.callbacks.append(_stop)
        elif until is not None:
            stop_at = float(until)
            if stop_at < self._now:
                raise SimulationError(
                    f"until={stop_at} is in the past (now={self._now})"
                )
        queue = self._queue
        sentinel_entry = None
        if stop_at is not None:
            sentinel_entry = (stop_at, _DEADLINE_TAG, _Deadline())
            heappush(queue, sentinel_entry)
        try:
            while queue:
                self._now, _tag, event = heappop(queue)
                callbacks = event.callbacks
                if callbacks is None:
                    if sentinel_entry is not None:
                        sentinel_entry = None  # popped: nothing to withdraw
                        return None  # the deadline sentinel ends the run
                    continue  # stale sentinel from an aborted earlier run
                event.callbacks = None
                for cb in callbacks:
                    cb(event)
                if not event._ok and not event._defused:
                    raise event._value
                hook()
        except StopSimulation as stop:
            return stop.value
        finally:
            if sentinel_entry is not None:
                try:
                    queue.remove(sentinel_entry)
                    heapify(queue)
                except ValueError:
                    pass
        if stop_event is not None and stop_event.callbacks is not None:
            raise SimulationError("run() until-event was never triggered")
        return None
