"""Engine-level profiling: event-loop and handler latency sampling.

Attach an :class:`EngineProfiler` to :attr:`Environment.profiler
<repro.simgrid.engine.Environment.profiler>` before calling ``run()`` and
the engine switches to a sampling twin of its event loop; drivers feed
per-component ``on_message`` wall latency through
:meth:`EngineProfiler.record_handler`. Detached (the default), the only
residual cost is one attribute check at ``run()`` entry and one per
driver-handled message.

All numbers here are *wall-clock* (they answer "where does the simulation
spend host CPU?"), so they are intentionally excluded from the
deterministic trace/metrics exports that same-seed CI jobs diff.
"""

from __future__ import annotations

__all__ = ["EngineProfiler"]


class EngineProfiler:
    """Accumulated event-loop statistics for one or more ``run()`` calls."""

    def __init__(self) -> None:
        #: Total events popped off the queue.
        self.events = 0
        #: Events by concrete event class name (Timeout, Process, ...).
        self.events_by_type: dict[str, int] = {}
        #: Wall seconds spent inside event callbacks.
        self.callback_time = 0.0
        #: Wall seconds spent inside ``run()`` overall.
        self.run_wall_time = 0.0
        #: ``(component, mtype) -> [calls, total_seconds, max_seconds]``
        #: fed by the drivers around ``Component.on_message``.
        self.handlers: dict[tuple[str, str], list] = {}

    def record_handler(self, component: str, mtype: str, seconds: float) -> None:
        cell = self.handlers.get((component, mtype))
        if cell is None:
            cell = self.handlers[(component, mtype)] = [0, 0.0, 0.0]
        cell[0] += 1
        cell[1] += seconds
        if seconds > cell[2]:
            cell[2] = seconds

    @property
    def events_per_second(self) -> float:
        return self.events / self.run_wall_time if self.run_wall_time else 0.0

    def report(self) -> dict:
        """Structured profile (wall-clock values; not diff-stable)."""
        return {
            "events": self.events,
            "events_by_type": dict(sorted(self.events_by_type.items())),
            "events_per_second": round(self.events_per_second, 1),
            "callback_time_s": round(self.callback_time, 6),
            "run_wall_time_s": round(self.run_wall_time, 6),
            "handlers": {
                f"{comp}:{mtype}": {
                    "calls": calls,
                    "total_s": round(total, 6),
                    "mean_us": round(1e6 * total / calls, 2) if calls else 0.0,
                    "max_us": round(1e6 * mx, 2),
                }
                for (comp, mtype), (calls, total, mx)
                in sorted(self.handlers.items())
            },
        }

    def chrome_events(self, pid: int = 0) -> list[dict]:
        """The handler-latency profile as Chrome ``trace_event`` dicts,
        for a profiler lane inside the simulation's trace export
        (``export_chrome_trace(..., extra_events=...)``).

        Handlers are laid out *sequentially* by accumulated wall time —
        this lane answers "where did host CPU go", not "when did things
        happen", so its timeline is wall seconds of callback work, not
        simulated time. Each handler gets one complete ("X") event whose
        duration is its total wall time, plus a counter ("C") event with
        its call count. ``pid`` 0 picks a lane id far from the
        component pids the span exporter assigns."""
        pid = pid or 9999
        events: list[dict] = [{
            "name": "process_name",
            "ph": "M",
            "ts": 0,
            "pid": pid,
            "tid": pid,
            "args": {"name": "engine profiler (wall)"},
        }]
        cursor = 0.0
        ranked = sorted(self.handlers.items(), key=lambda kv: -kv[1][1])
        for (comp, mtype), (calls, total, mx) in ranked:
            events.append({
                "name": f"{comp}:{mtype}",
                "cat": "profile",
                "ph": "X",
                "ts": round(cursor * 1e6, 3),
                "dur": round(total * 1e6, 3),
                "pid": pid,
                "tid": pid,
                "args": {
                    "calls": calls,
                    "mean_us": round(1e6 * total / calls, 2) if calls else 0.0,
                    "max_us": round(1e6 * mx, 2),
                },
            })
            events.append({
                "name": "handler calls",
                "ph": "C",
                "ts": round(cursor * 1e6, 3),
                "pid": pid,
                "args": {f"{comp}:{mtype}": calls},
            })
            cursor += total
        return events

    def render(self, top: int = 15) -> str:
        """Human-readable profile summary."""
        lines = [
            f"events processed : {self.events}",
            f"events/s (wall)  : {self.events_per_second:,.0f}",
            f"callback time    : {self.callback_time:.4f}s "
            f"of {self.run_wall_time:.4f}s run wall time",
            "events by type   : " + ", ".join(
                f"{k}={v}" for k, v in sorted(self.events_by_type.items())),
        ]
        if self.handlers:
            lines.append("slowest handlers (by total wall time):")
            ranked = sorted(self.handlers.items(), key=lambda kv: -kv[1][1])
            for (comp, mtype), (calls, total, mx) in ranked[:top]:
                mean = 1e6 * total / calls if calls else 0.0
                lines.append(
                    f"  {comp:<20} {mtype:<16} calls={calls:<7d} "
                    f"total={total * 1e3:8.2f}ms mean={mean:7.1f}us "
                    f"max={mx * 1e6:8.1f}us")
        return "\n".join(lines)
