"""Simulated Computational Grid substrate (discrete-event simulation)."""

from .engine import (
    AllOf,
    AnyOf,
    Condition,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from .faults import (
    FaultPlan,
    FaultStats,
    HostCrash,
    InfraOutage,
    MessageChaos,
    SitePartition,
)
from .network import Address, AddressError, Network
from .resources import Gate, Store, get_with_timeout

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
    "Address",
    "AddressError",
    "FaultPlan",
    "FaultStats",
    "HostCrash",
    "InfraOutage",
    "MessageChaos",
    "Network",
    "SitePartition",
    "Gate",
    "Store",
    "get_with_timeout",
]
