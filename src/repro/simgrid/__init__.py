"""Simulated Computational Grid substrate (discrete-event simulation)."""

from .engine import (
    AllOf,
    AnyOf,
    Condition,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from .resources import Gate, Store, get_with_timeout

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
    "Gate",
    "Store",
    "get_with_timeout",
]
