"""Simulated hosts.

A :class:`Host` models one machine in the resource pool: a peak speed in
"useful integer operations per second" (the paper's delivered-performance
metric, §4), an ambient-load process that modulates what fraction of that
speed a guest obtains, and an up/down/reclaimed lifecycle driven by the
infrastructure adapters (Condor reclamation, LSF kills, churn, ...).

Processes started via :meth:`Host.spawn` are interrupted with a
:class:`HostDown` cause when the host dies, mirroring how guest processes
at SC98 were killed without warning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional

from .engine import Environment, Interrupt, Process
from .load import ConstantLoad, LoadModel
from .rand import PrefixedStreams, RngStreams

__all__ = ["Host", "HostDown", "HostSpec"]


class HostDown(Exception):
    """Interrupt cause delivered to guest processes when their host dies."""

    def __init__(self, host: "Host", reason: str) -> None:
        super().__init__(f"{host.name} down: {reason}")
        self.host = host
        self.reason = reason


@dataclass
class HostSpec:
    """Static description of a host."""

    name: str
    site: str = "default"
    infra: str = "unix"
    speed: float = 1.0e7  # peak useful integer ops / second
    load_model: LoadModel = field(default_factory=ConstantLoad)
    load_period: float = 30.0  # seconds between availability updates


class Host:
    """A machine in the simulated Grid."""

    def __init__(
        self,
        env: Environment,
        spec: HostSpec,
        streams: RngStreams | PrefixedStreams,
    ) -> None:
        self.env = env
        self.spec = spec
        self.name = spec.name
        self.site = spec.site
        self.infra = spec.infra
        self.up = True
        self.availability = 1.0
        self._rng = streams.get(f"load:{spec.name}")
        self._guests: dict[str, Process] = {}
        self._load_proc: Optional[Process] = None
        #: cumulative (seconds up, seconds total) for dependability metrics
        self.up_seconds = 0.0
        self._last_state_change = env.now
        self._started = False
        #: Trace context of the fault-injector span that took this host
        #: down (set by :class:`repro.simgrid.faults.FaultPlan`, cleared on
        #: :meth:`go_up`); lets the network attribute drops at a dead host
        #: to the injected fault. ``None`` for ordinary MTBF churn.
        self.down_ctx: Optional[tuple[int, int]] = None

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> None:
        """Begin the ambient-load process. Idempotent."""
        if self._started:
            return
        self._started = True
        self._load_proc = self.env.process(self._load_loop())

    def _load_loop(self) -> Generator:
        period = self.spec.load_period
        model = self.spec.load_model
        while True:
            if self.up:
                value = model.advance(self.env.now, period, self._rng)
                self.availability = min(max(value, 0.0), 1.0)
            yield self.env.timeout(period)

    def go_down(self, reason: str = "failure") -> None:
        """Take the host down, killing all guest processes."""
        if not self.up:
            return
        self.up_seconds += self.env.now - self._last_state_change
        self._last_state_change = self.env.now
        self.up = False
        self.availability = 0.0
        guests, self._guests = self._guests, {}
        cause = HostDown(self, reason)
        for proc in guests.values():
            if proc.is_alive:
                proc.interrupt(cause)

    def go_up(self) -> None:
        """Bring the host back up (guest processes must be respawned)."""
        if self.up:
            return
        self._last_state_change = self.env.now
        self.up = True
        self.availability = 1.0
        self.down_ctx = None

    @property
    def uptime_fraction(self) -> float:
        """Fraction of elapsed simulation time this host has been up."""
        total = self.env.now
        if total <= 0:
            return 1.0
        up = self.up_seconds
        if self.up:
            up += self.env.now - self._last_state_change
        return up / total

    # -- computation ----------------------------------------------------------
    def effective_speed(self) -> float:
        """Deliverable ops/second right now."""
        return self.spec.speed * self.availability if self.up else 0.0

    # -- guest processes --------------------------------------------------------
    def spawn(self, generator: Generator, name: str) -> Process:
        """Run a guest process; it is interrupted with HostDown if the host
        dies. A second spawn with the same name replaces the registry entry
        (the older process keeps running but is no longer tracked)."""
        if not self.up:
            raise RuntimeError(f"cannot spawn {name!r} on down host {self.name}")
        proc = self.env.process(generator)
        self._guests[name] = proc

        def _deregister(_event: Any, name: str = name, proc: Process = proc) -> None:
            if self._guests.get(name) is proc:
                del self._guests[name]

        assert proc.callbacks is not None
        proc.callbacks.append(_deregister)
        return proc

    def guest_names(self) -> list[str]:
        return sorted(self._guests)

    def __repr__(self) -> str:
        state = "up" if self.up else "down"
        return f"<Host {self.name} ({self.infra}@{self.site}) {state} avail={self.availability:.2f}>"
