"""Waitable resources for the simulation engine: mailboxes and gates.

:class:`Store` is the FIFO mailbox used by simulated transports; it is the
rendezvous point between message-delivery events and processes blocked in
``recv``. :class:`Gate` is a broadcast signal usable by many waiters.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generator, Optional

from .engine import AnyOf, Environment, Event, SimulationError

__all__ = ["Store", "StoreGet", "StorePut", "Gate", "get_with_timeout"]


class StoreGet(Event):
    """Event that triggers when an item becomes available in the store."""

    __slots__ = ("store",)

    def __init__(self, store: "Store") -> None:
        super().__init__(store.env)
        self.store = store
        store._getters.append(self)
        store._service()

    def cancel(self) -> None:
        """Withdraw this get request (e.g. after a timeout won the race)."""
        if self._state == 0:  # still pending
            try:
                self.store._getters.remove(self)
            except ValueError:
                pass


class StorePut(Event):
    """Event that triggers when the item has been accepted by the store."""

    __slots__ = ("store", "item")

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.env)
        self.store = store
        self.item = item
        store._putters.append(self)
        store._service()

    def cancel(self) -> None:
        if self._state == 0:
            try:
                self.store._putters.remove(self)
            except ValueError:
                pass


class Store:
    """An unordered-capacity FIFO store of items.

    ``capacity`` bounds the number of queued items; puts beyond capacity
    block until space frees up (capacity ``inf`` by default).
    """

    def __init__(self, env: Environment, capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise SimulationError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: deque[Any] = deque()
        self._getters: deque[StoreGet] = deque()
        self._putters: deque[StorePut] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        """Offer ``item``; returns an event triggering on acceptance."""
        return StorePut(self, item)

    def get(self) -> StoreGet:
        """Request an item; returns an event triggering with the item."""
        return StoreGet(self)

    def try_get(self) -> Optional[Any]:
        """Immediately pop an item if available, else None."""
        if self.items:
            item = self.items.popleft()
            self._service()
            return item
        return None

    def _service(self) -> None:
        """Match queued putters to capacity and items to getters."""
        progress = True
        while progress:
            progress = False
            while self._putters and len(self.items) < self.capacity:
                put = self._putters.popleft()
                self.items.append(put.item)
                put.succeed()
                progress = True
            while self._getters and self.items:
                get = self._getters.popleft()
                get.succeed(self.items.popleft())
                progress = True


class Gate:
    """A broadcast signal: many processes wait; one ``fire`` wakes all."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._waiters: list[Event] = []

    def wait(self) -> Event:
        ev = Event(self.env)
        self._waiters.append(ev)
        return ev

    def fire(self, value: Any = None) -> int:
        """Wake all current waiters; returns how many were woken."""
        waiters, self._waiters = self._waiters, []
        for ev in waiters:
            ev.succeed(value)
        return len(waiters)


def get_with_timeout(
    env: Environment, store: Store, timeout: Optional[float]
) -> Generator:
    """Process helper: get from ``store`` or give up after ``timeout``.

    Yields once; the generator's return value is the item, or ``None`` on
    timeout. Usage::

        item = yield from get_with_timeout(env, mailbox, 5.0)
    """
    get_ev = store.get()
    if timeout is None:
        item = yield get_ev
        return item
    to_ev = env.timeout(timeout)
    yield AnyOf(env, [get_ev, to_ev])
    if get_ev.triggered:
        return get_ev.value
    get_ev.cancel()
    return None
