"""Ambient load models.

A load model produces, for a single resource, a time series of *availability
fractions* in ``[0, 1]``: the share of the resource's peak capacity that a
guest computation can actually obtain. This is the simulated stand-in for
the contention the paper's application experienced on the non-dedicated
SC98 resource pool ("ambient load conditions", §2.2, §4).

Models are advanced in fixed steps by the host's load process. All
randomness comes from the generator passed to ``advance`` so that load
traces replay deterministically under :class:`repro.simgrid.rand.RngStreams`.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

__all__ = [
    "LoadModel",
    "ConstantLoad",
    "MeanRevertingLoad",
    "DiurnalLoad",
    "ScheduledEvent",
    "EventSchedule",
    "TraceLoad",
    "ComposedLoad",
]


def _clip01(x: float) -> float:
    return 0.0 if x < 0.0 else (1.0 if x > 1.0 else x)


class LoadModel:
    """Base class. Subclasses override :meth:`advance`."""

    def advance(self, t: float, dt: float, rng: np.random.Generator) -> float:
        """Return the availability fraction for the window ``[t, t+dt)``."""
        raise NotImplementedError

    def reset(self) -> None:
        """Forget internal state (for replay from time zero)."""


class ConstantLoad(LoadModel):
    """Fixed availability — e.g. a dedicated or unloaded resource."""

    def __init__(self, availability: float = 1.0) -> None:
        if not 0.0 <= availability <= 1.0:
            raise ValueError(f"availability {availability} outside [0, 1]")
        self.availability = availability

    def advance(self, t: float, dt: float, rng: np.random.Generator) -> float:
        return self.availability


class MeanRevertingLoad(LoadModel):
    """AR(1) mean-reverting availability (shared interactive machines).

    ``x(t+dt) = x + theta*(mean - x)*dt + sigma*sqrt(dt)*noise`` clipped to
    [0, 1]. ``theta`` is the reversion rate per second and ``sigma`` the
    diffusion scale per sqrt-second.
    """

    def __init__(
        self,
        mean: float = 0.7,
        theta: float = 1.0 / 600.0,
        sigma: float = 0.01,
        initial: Optional[float] = None,
    ) -> None:
        if not 0.0 <= mean <= 1.0:
            raise ValueError(f"mean {mean} outside [0, 1]")
        self.mean = mean
        self.theta = theta
        self.sigma = sigma
        self.initial = mean if initial is None else initial
        self._x = self.initial

    def advance(self, t: float, dt: float, rng: np.random.Generator) -> float:
        noise = rng.standard_normal()
        self._x += self.theta * (self.mean - self._x) * dt
        self._x += self.sigma * math.sqrt(max(dt, 0.0)) * noise
        self._x = _clip01(self._x)
        return self._x

    def reset(self) -> None:
        self._x = self.initial


class DiurnalLoad(LoadModel):
    """Availability that follows a day/night cycle plus noise.

    Availability peaks at ``night_peak`` around ``trough_hour + 12`` and
    bottoms out at ``day_trough`` around ``trough_hour`` (local time in
    hours), modelling interactive users loading machines during the day.
    """

    def __init__(
        self,
        day_trough: float = 0.35,
        night_peak: float = 0.9,
        trough_hour: float = 14.0,
        noise_sigma: float = 0.05,
    ) -> None:
        self.day_trough = day_trough
        self.night_peak = night_peak
        self.trough_hour = trough_hour
        self.noise_sigma = noise_sigma

    def advance(self, t: float, dt: float, rng: np.random.Generator) -> float:
        hour = (t / 3600.0) % 24.0
        phase = math.cos(2 * math.pi * (hour - self.trough_hour) / 24.0)
        # phase = +1 at the trough hour, -1 twelve hours later.
        mid = (self.night_peak + self.day_trough) / 2.0
        amp = (self.night_peak - self.day_trough) / 2.0
        base = mid - amp * phase
        return _clip01(base + self.noise_sigma * rng.standard_normal())


class ScheduledEvent:
    """A multiplicative availability disturbance over ``[start, end)``.

    ``factor`` scales availability during the window; a recovery ramp of
    ``ramp`` seconds linearly blends back to 1.0 after ``end``. This is how
    the SC98 scenario expresses the 11:00 judging-time load spike (§4.1).
    """

    def __init__(self, start: float, end: float, factor: float, ramp: float = 0.0) -> None:
        if end < start:
            raise ValueError("event end before start")
        if factor < 0:
            raise ValueError("negative factor")
        self.start = start
        self.end = end
        self.factor = factor
        self.ramp = ramp

    def multiplier(self, t: float) -> float:
        if t < self.start:
            return 1.0
        if t < self.end:
            return self.factor
        if self.ramp > 0 and t < self.end + self.ramp:
            frac = (t - self.end) / self.ramp
            return self.factor + (1.0 - self.factor) * frac
        return 1.0


class EventSchedule(LoadModel):
    """Deterministic availability from a set of scheduled events."""

    def __init__(self, events: Sequence[ScheduledEvent] = ()) -> None:
        self.events = list(events)

    def add(self, event: ScheduledEvent) -> None:
        self.events.append(event)

    def multiplier(self, t: float) -> float:
        m = 1.0
        for ev in self.events:
            m *= ev.multiplier(t)
        return m

    def advance(self, t: float, dt: float, rng: np.random.Generator) -> float:
        # Deliberately not clipped above 1: a schedule may *boost* another
        # model inside a ComposedLoad (which clips the final product); a
        # host clamps its own availability to [0, 1] regardless.
        return max(self.multiplier(t), 0.0)


class TraceLoad(LoadModel):
    """Replays a recorded availability trace (step-wise hold).

    This is how real measurements — e.g. NWS CPU-availability series from
    an actual deployment — drive the simulation instead of a synthetic
    model. ``times`` must be ascending; the value in force at simulated
    time ``t`` is the last sample at or before ``t`` (offset by
    ``t0``). With ``loop=True`` the trace repeats past its end; otherwise
    the final value holds.
    """

    def __init__(
        self,
        times: Sequence[float],
        values: Sequence[float],
        t0: float = 0.0,
        loop: bool = False,
    ) -> None:
        if len(times) != len(values) or not len(times):
            raise ValueError("times/values must be equal-length and non-empty")
        self._times = np.asarray(times, dtype=float)
        if np.any(np.diff(self._times) < 0):
            raise ValueError("trace times must be ascending")
        self._values = np.clip(np.asarray(values, dtype=float), 0.0, 1.0)
        self.t0 = t0
        self.loop = loop
        self._span = float(self._times[-1] - self._times[0])

    @classmethod
    def from_csv(cls, path: str, **kwargs) -> "TraceLoad":
        """Load a two-column (time, availability) CSV; '#' comments and a
        header row are tolerated."""
        times, values = [], []
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                parts = line.split(",")
                try:
                    t, v = float(parts[0]), float(parts[1])
                except (ValueError, IndexError):
                    continue  # header or malformed row
                times.append(t)
                values.append(v)
        return cls(times, values, **kwargs)

    def advance(self, t: float, dt: float, rng: np.random.Generator) -> float:
        rel = t - self.t0
        if self.loop and self._span > 0:
            rel = self._times[0] + (rel - self._times[0]) % self._span
        idx = int(np.searchsorted(self._times, rel, side="right")) - 1
        idx = min(max(idx, 0), len(self._values) - 1)
        return float(self._values[idx])


class ComposedLoad(LoadModel):
    """Product of several load models (e.g. diurnal x scheduled spikes)."""

    def __init__(self, *models: LoadModel) -> None:
        if not models:
            raise ValueError("ComposedLoad needs at least one model")
        self.models = models

    def advance(self, t: float, dt: float, rng: np.random.Generator) -> float:
        value = 1.0
        for m in self.models:
            value *= m.advance(t, dt, rng)
        return _clip01(value)

    def reset(self) -> None:
        for m in self.models:
            m.reset()
