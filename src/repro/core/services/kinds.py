"""The work-unit *kind* registry: the app-agnostic unit contract.

EveryWare's claim is that the toolkit is general, and the unit of that
generality is the work unit: a JSON-safe dict that travels submit →
journal → ``SCH_WORK`` → client execution → ``SCH_REPORT`` → complete
without any layer in between understanding it. What *does* understand
it is looked up here, keyed by the unit's ``kind`` field:

* ``validate(spec)`` — is this spec executable at all (gateway/admission
  side);
* ``engine_factory()`` — the client-side
  :class:`~repro.ramsey.client.ComputeEngine` that executes it
  (dispatched per-unit by :class:`KindEngine`, so one client process can
  execute whichever kind it is handed);
* ``check_result(spec, result)`` — a pluggable sanity check the work
  store runs *before* accepting a remote completion (the paper's §3.1
  distrust-remote-results discipline, generalized from counter-example
  verification: a rejected result is requeued, never recorded).

Units without a ``kind`` field default to ``"ramsey"`` — the original
application predates the field, and every journaled spec from before
this registry existed must keep meaning what it meant. Unknown kinds are
admitted unchecked (the queue is a transport, not a gatekeeper); only
*registered* kinds get validation and result checks.

Lookup supports one level of wildcarding: ``explore.eval`` falls back to
an ``explore.*`` registration, so an app family can share one contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

__all__ = [
    "AppKind",
    "DEFAULT_KIND",
    "KIND_FIELD",
    "KindEngine",
    "KindRegistry",
    "ResultCheckError",
    "kind_of",
    "register_kind",
    "registry",
]

#: The spec/unit field naming the app kind.
KIND_FIELD = "kind"

#: Kind assumed for specs that predate the field (the Ramsey search).
DEFAULT_KIND = "ramsey"


class ResultCheckError(Exception):
    """A remote result failed its kind's sanity check (distrust it)."""


@dataclass(frozen=True)
class AppKind:
    """One registered application kind (see module docstring)."""

    name: str
    #: Raises ``ValueError`` for specs that can never execute.
    validate: Optional[Callable[[dict], None]] = None
    #: Builds a fresh client-side ComputeEngine for this kind.
    engine_factory: Optional[Callable[[], Any]] = None
    #: Raises :class:`ResultCheckError` for results to be distrusted.
    check_result: Optional[Callable[[dict, Optional[dict]], None]] = None
    description: str = ""


class KindRegistry:
    """Name → :class:`AppKind`, with ``family.*`` wildcard fallback."""

    def __init__(self) -> None:
        self._kinds: dict[str, AppKind] = {}

    def register(self, kind: AppKind, replace: bool = False) -> AppKind:
        if not replace and kind.name in self._kinds:
            raise ValueError(f"app kind {kind.name!r} already registered")
        self._kinds[kind.name] = kind
        return kind

    def get(self, name: str) -> Optional[AppKind]:
        """Exact match first, then the ``family.*`` wildcard."""
        kind = self._kinds.get(name)
        if kind is not None:
            return kind
        head, sep, _ = name.partition(".")
        if sep:
            return self._kinds.get(f"{head}.*")
        return None

    def names(self) -> list[str]:
        return sorted(self._kinds)

    def kind_of(self, spec: dict) -> str:
        """The spec's kind name (``DEFAULT_KIND`` when unlabelled)."""
        name = spec.get(KIND_FIELD) if isinstance(spec, dict) else None
        return str(name) if name else DEFAULT_KIND

    def validate(self, spec: dict) -> None:
        """Run the kind's validator, if one is registered (ValueError)."""
        kind = self.get(self.kind_of(spec))
        if kind is not None and kind.validate is not None:
            kind.validate(spec)

    def checker_for(self, spec: dict) -> Optional[Callable]:
        """The result sanity check for this spec's kind, or None."""
        kind = self.get(self.kind_of(spec))
        return None if kind is None else kind.check_result


#: The process-wide default registry. Applications register at import
#: time (``repro.ramsey.tasks`` claims ``ramsey``, ``repro.explore``
#: claims ``explore.eval``), so any process that can *build* a kind's
#: engine also distrusts its results.
registry = KindRegistry()


def register_kind(
    name: str,
    validate: Optional[Callable[[dict], None]] = None,
    engine_factory: Optional[Callable[[], Any]] = None,
    check_result: Optional[Callable[[dict, Optional[dict]], None]] = None,
    description: str = "",
    replace: bool = False,
) -> AppKind:
    """Register an :class:`AppKind` on the default registry."""
    return registry.register(
        AppKind(name=name, validate=validate, engine_factory=engine_factory,
                check_result=check_result, description=description),
        replace=replace)


def kind_of(spec: dict) -> str:
    """The kind name of ``spec`` under the default registry."""
    return registry.kind_of(spec)


@dataclass
class KindEngine:
    """A ComputeEngine that dispatches per-unit on the unit's kind.

    Clients hold one of these instead of a concrete engine, so the same
    process executes whichever kind the scheduler hands it: ``load``
    resolves the unit's kind to an engine (explicit ``engines`` map
    first — exact name, then ``family.*`` — falling back to the
    registry's ``engine_factory``) and every other engine call delegates
    to the engine of the unit in hand. Engines are cached per kind, so a
    client flip-flopping between kinds keeps both warm.
    """

    #: Pre-built engines by kind name (exact or ``family.*``); lets the
    #: deployment plane configure e.g. the Ramsey engine's step cap.
    engines: dict[str, Any] = field(default_factory=dict)
    kinds: KindRegistry = field(default_factory=lambda: registry)
    active: Optional[Any] = None
    active_kind: Optional[str] = None

    def engine_for(self, kind: str) -> Any:
        engine = self.engines.get(kind)
        if engine is None:
            head, sep, _ = kind.partition(".")
            if sep:
                engine = self.engines.get(f"{head}.*")
        if engine is None:
            app = self.kinds.get(kind)
            if app is not None and app.engine_factory is not None:
                engine = app.engine_factory()
        if engine is None:
            raise ValueError(f"no engine for app kind {kind!r}")
        self.engines[kind] = engine
        return engine

    # -- the ComputeEngine protocol, dispatched ------------------------------
    def load(self, unit: dict, rng) -> None:
        kind = self.kinds.kind_of(unit)
        engine = self.engine_for(kind)
        engine.load(unit, rng)
        self.active = engine
        self.active_kind = kind

    def advance(self, ops_budget: float):
        assert self.active is not None
        return self.active.advance(ops_budget)

    def progress(self) -> dict:
        return self.active.progress() if self.active is not None else {}

    def result(self) -> Optional[dict]:
        """The active engine's structured result, when it produces one
        (engines without a ``result()`` report progress instead)."""
        produce = getattr(self.active, "result", None)
        return produce() if callable(produce) else None

    def apply_params(self, params: dict) -> bool:
        apply = getattr(self.active, "apply_params", None)
        return bool(apply(params)) if callable(apply) else False
