"""Distributed logging servers (§3.1.3).

Scheduling servers base decisions on the performance information clients
report; before that information is discarded it is forwarded to a logging
server "so that it can be recorded". A separate service lets the
application "limit and control the storage load" it generates.

In this reproduction the logging servers double as the experiment's
measurement plane: the SC98 figures are computed from the performance
records accumulated here (exactly as the paper's figures came from its
"logging and report facilities").

Protocol: ``LOG_APPEND`` (fire-and-forget batches) and
``LOG_QUERY`` → ``LOG_RECORDS``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..component import Component, Effect, Send
from ..linguafranca.messages import Message

__all__ = ["LoggingServer", "LogRecord", "LOG_APPEND", "LOG_QUERY", "LOG_RECORDS"]

LOG_APPEND = "LOG_APPEND"
LOG_QUERY = "LOG_QUERY"
LOG_RECORDS = "LOG_RECORDS"


@dataclass(frozen=True)
class LogRecord:
    """One logged event."""

    stamp: float  # server-side receive time
    source: str  # reporting component contact
    kind: str  # record category, e.g. "perf"
    data: dict

    def to_body(self) -> dict:
        return {"ts": self.stamp, "src": self.source, "k": self.kind, "d": self.data}


class LoggingServer(Component):
    """An append-only, capacity-bounded record sink."""

    def __init__(self, name: str, max_records: int = 2_000_000) -> None:
        super().__init__(name)
        self.max_records = max_records
        self.records: list[LogRecord] = []
        #: Per-kind view of ``records`` (same objects, same order),
        #: maintained on append so the measurement plane's per-kind scans
        #: don't walk millions of records of other kinds.
        self._by_kind: dict[str, list[LogRecord]] = {}

    # Append/drop accounting now lives on the world metrics registry
    # (``log.appended{component=...}`` / ``log.dropped{...}``); these
    # properties keep the pre-telemetry attribute API working.
    @property
    def appended(self) -> int:
        return self.telemetry.metrics.counter(
            "log.appended", component=self.name).value

    @property
    def dropped(self) -> int:
        return self.telemetry.metrics.counter(
            "log.dropped", component=self.name).value

    def on_message(self, message: Message, now: float) -> list[Effect]:
        if message.mtype == LOG_APPEND:
            records = self.records
            by_kind = self._by_kind
            max_records = self.max_records
            sender = message.sender
            metrics = self.telemetry.metrics
            c_appended = metrics.counter("log.appended", component=self.name)
            c_dropped = metrics.counter("log.dropped", component=self.name)
            for item in message.body.get("records", []):
                if not isinstance(item, dict):
                    continue
                if len(records) >= max_records:
                    c_dropped.inc()
                    continue
                kind = str(item.get("k", "event"))
                data = item.get("d")
                rec = LogRecord(
                    stamp=now,
                    source=sender,
                    kind=kind,
                    data=data if isinstance(data, dict) else {},
                )
                records.append(rec)
                bucket = by_kind.get(kind)
                if bucket is None:
                    bucket = by_kind[kind] = []
                bucket.append(rec)
                c_appended.inc()
            metrics.gauge("log.records", component=self.name).set(len(records))
            return []
        if message.mtype == LOG_QUERY:
            since = float(message.body.get("since", 0.0))
            kind = message.body.get("kind")
            # Clamp: limit <= 0 means "no records", and the bound must be
            # checked *before* appending (the old post-append check let
            # limit=0 return one record).
            limit = max(int(message.body.get("limit", 1000)), 0)
            # Records are appended in stamp order, so the per-kind index
            # yields the same records in the same order as a full scan.
            source = (self.records if kind is None
                      else self._by_kind.get(kind, []))
            out = []
            if limit > 0:
                for rec in source:
                    if rec.stamp < since:
                        continue
                    out.append(rec.to_body())
                    if len(out) >= limit:
                        break
            return [Send(message.sender, message.reply(
                LOG_RECORDS, sender=self.contact, body={"records": out}))]
        return []

    # -- experiment-side accessors (not part of the wire protocol) -----------
    def by_kind(self, kind: str) -> list[LogRecord]:
        return list(self._by_kind.get(kind, ()))
