"""Scheduling servers (§3.1.1).

Clients periodically report computational progress; scheduling servers
issue control directives based on the algorithm the client runs, its
progress, and its most recent computational rate. Servers forecast
per-client rates with the NWS machinery and *migrate work* from clients
predicted to be slow toward faster ones ("if a scheduler predicts that a
client will be slow based on previous performance, it may choose to
migrate that client's current workload to a machine that it predicts will
be faster").

Protocol
--------
``SCH_HELLO``   client → scheduler: announce (infra, arch), ask for work.
``SCH_WORK``    scheduler → client: a work unit + reporting parameters.
``SCH_REPORT``  client → scheduler: ops done, rate, progress, done flag.
``SCH_DIRECTIVE`` scheduler → client: continue | new_work | migrate.
``SCH_ACK``     client → scheduler: acknowledges a unit-carrying
                assignment (see below).

Assignments that carry a work unit are *reliable* sends: the driver
retransmits them until the client acknowledges with ``SCH_ACK``, and if
the retry policy gives up (client crashed, site partitioned) the
scheduler requeues the unit immediately instead of waiting for the reap
timer — the unit's loss is observed, not inferred.

Schedulers are deliberately stateless with respect to application results
(the paper runs them inside Condor pools where they die freely): all
result state of value lives in the Gossip/persistent services. A lost
work unit is simply requeued and reissued.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Protocol

from ..component import Component, Effect, LogLine, Send, SetTimer
from ..forecasting.benchmarking import ForecastRegistry, event_tag
from ..linguafranca.messages import Message
from ..policy import RetryPolicy

__all__ = [
    "SchedulerServer",
    "SchedulerStats",
    "WorkSource",
    "QueueWorkSource",
    "SCH_HELLO",
    "SCH_WORK",
    "SCH_REPORT",
    "SCH_DIRECTIVE",
    "SCH_ACK",
]

SCH_HELLO = "SCH_HELLO"
SCH_WORK = "SCH_WORK"
SCH_REPORT = "SCH_REPORT"
SCH_DIRECTIVE = "SCH_DIRECTIVE"
SCH_ACK = "SCH_ACK"

T_REAP = "sch:reap"

RATE = "RATE"  # forecast stream name per client


class WorkSource(Protocol):
    """Supplies and recycles application work units (application-specific:
    the Ramsey search provides one over its search subspaces)."""

    def next_unit(self) -> Optional[dict]: ...

    def requeue(self, unit: dict) -> None: ...

    def complete(self, unit_id: str, result: dict) -> None: ...


class QueueWorkSource:
    """FIFO work source with priority requeue; never runs dry if a
    ``generator`` callable is given (it mints fresh units on demand)."""

    def __init__(self, units: Optional[list[dict]] = None, generator=None) -> None:
        self._queue: list[dict] = list(units or [])
        self._generator = generator
        self._minted = 0
        self.completed: dict[str, dict] = {}

    def next_unit(self) -> Optional[dict]:
        if self._queue:
            return self._queue.pop(0)
        if self._generator is not None:
            self._minted += 1
            unit = self._generator(self._minted)
            return unit
        return None

    def requeue(self, unit: dict) -> None:
        # Recycled units go to the front: they represent in-flight work.
        self._queue.insert(0, unit)

    def complete(self, unit_id: str, result: dict) -> None:
        self.completed[unit_id] = result

    def __len__(self) -> int:
        return len(self._queue)


@dataclass
class SchedulerStats:
    hellos: int = 0
    reports: int = 0
    units_assigned: int = 0
    units_completed: int = 0
    migrations: int = 0
    reaps: int = 0
    param_directives: int = 0
    units_requeued: int = 0


@dataclass
class _ClientState:
    contact: str
    infra: str
    unit: Optional[dict] = None
    last_seen: float = 0.0
    last_rate: float = 0.0
    last_best_energy: Optional[float] = None
    stalled_reports: int = 0


#: Control policy: inspects (client state, report body) and returns extra
#: engine parameters to push in the directive, or None. This is the
#: paper's "servers are programmed to issue different control directives
#: based on the type of algorithm the client is executing" (§3.1.1) as a
#: pluggable module.
ControlPolicy = "Callable[[_ClientState, dict], Optional[dict]]"


def stall_reheat_policy(client: "_ClientState", body: dict) -> Optional[dict]:
    """Default algorithm-aware policy: a stalled annealing client is told
    to reheat; tabu clients get no parameter nudges (their restart logic
    is internal)."""
    progress = body.get("progress")
    if not isinstance(progress, dict):
        return None
    unit = client.unit or {}
    if unit.get("heuristic") != "anneal":
        return None
    best = progress.get("best_energy")
    if best is None:
        return None
    if client.last_best_energy is not None and best >= client.last_best_energy:
        client.stalled_reports += 1
    else:
        client.stalled_reports = 0
    client.last_best_energy = float(best)
    if client.stalled_reports >= 3:
        client.stalled_reports = 0
        return {"reheat": True}
    return None


class SchedulerServer(Component):
    """One cooperating-but-independent scheduling server."""

    def __init__(
        self,
        name: str,
        work: WorkSource,
        report_period: float = 30.0,
        reap_period: float = 60.0,
        dead_factor: float = 4.0,
        migrate_fraction: float = 0.25,
        min_rate_samples: int = 3,
        control_policy=stall_reheat_policy,
        assign_retry: Optional[RetryPolicy] = RetryPolicy(max_attempts=3),
    ) -> None:
        super().__init__(name)
        self.work = work
        self.report_period = report_period
        self.reap_period = reap_period
        self.dead_factor = dead_factor
        #: Clients forecast below ``migrate_fraction`` x pool median rate
        #: have their unit migrated to a faster home.
        self.migrate_fraction = migrate_fraction
        self.min_rate_samples = min_rate_samples
        self.control_policy = control_policy
        #: Retry policy for unit-carrying assignments (``None`` restores
        #: the fire-and-forget behavior: lost units wait for the reaper).
        self.assign_retry = assign_retry
        self.clients: dict[str, _ClientState] = {}
        self.forecasts = ForecastRegistry()
        self.stats = SchedulerStats()

    # -- lifecycle ------------------------------------------------------------
    def on_start(self, now: float) -> list[Effect]:
        return [SetTimer(T_REAP, self.reap_period)]

    # -- messages ------------------------------------------------------------
    def on_message(self, message: Message, now: float) -> list[Effect]:
        if message.mtype == SCH_HELLO:
            return self._on_hello(message, now)
        if message.mtype == SCH_REPORT:
            return self._on_report(message, now)
        if message.mtype == SCH_ACK:
            client = self.clients.get(message.sender)
            if client is not None:
                client.last_seen = now
            return []  # the driver already resolved the reliable send
        return []

    def _assign(self, client: _ClientState, now: float) -> Optional[dict]:
        unit = self.work.next_unit()
        if unit is not None:
            client.unit = unit
            self.stats.units_assigned += 1
            self.telemetry.metrics.counter("sch.units_assigned").inc()
        try:
            depth = len(self.work)  # type: ignore[arg-type]
        except TypeError:
            depth = 0
        self.telemetry.metrics.gauge("sch.queue_depth",
                                     component=self.name).set(depth)
        return unit

    def _assignment_send(self, contact: str, reply: Message) -> Send:
        """Unit-carrying assignments go out reliably (ACKed, retried,
        requeued on give-up); unit-less ones stay fire-and-forget."""
        if self.assign_retry is not None and reply.body.get("unit") is not None:
            return Send(contact, reply, retry=self.assign_retry,
                        label=f"assign:{contact}")
        return Send(contact, reply)

    def _on_hello(self, message: Message, now: float) -> list[Effect]:
        contact = message.sender
        self.stats.hellos += 1
        client = self.clients.get(contact)
        if client is None:
            client = _ClientState(contact=contact, infra=message.body.get("infra", "unknown"))
            self.clients[contact] = client
        client.last_seen = now
        if client.unit is None:
            self._assign(client, now)
        body = {
            "unit": client.unit,
            "report_period": self.report_period,
        }
        return [self._assignment_send(
            contact, message.reply(SCH_WORK, sender=self.contact, body=body))]

    def _on_report(self, message: Message, now: float) -> list[Effect]:
        contact = message.sender
        self.stats.reports += 1
        client = self.clients.get(contact)
        if client is None:
            # Unknown reporter (e.g. we restarted): adopt it.
            client = _ClientState(contact=contact, infra=message.body.get("infra", "unknown"))
            self.clients[contact] = client
        client.last_seen = now
        rate = float(message.body.get("rate", 0.0))
        client.last_rate = rate
        self.forecasts.record(event_tag(contact, RATE), rate)

        done = bool(message.body.get("done", False))
        unit_id = message.body.get("unit_id")
        action = "continue"
        unit_payload = None
        if done:
            if unit_id is not None:
                self.work.complete(str(unit_id), message.body.get("result", {}))
                self.stats.units_completed += 1
            client.unit = None
            new_unit = self._assign(client, now)
            action, unit_payload = "new_work", new_unit
        elif self._should_migrate(contact, now):
            # Predicted slow: reclaim the unit for a faster home. Pull the
            # slow client's replacement *before* requeueing, so it cannot be
            # handed its own unit straight back.
            migrated = None
            if client.unit is not None:
                migrated = dict(client.unit)
                progress = message.body.get("progress")
                if isinstance(progress, dict):
                    migrated["resume"] = progress
            client.unit = None
            new_unit = self._assign(client, now)
            if migrated is not None:
                self.work.requeue(migrated)
                self.stats.units_requeued += 1
                self.telemetry.metrics.counter("sch.units_requeued").inc()
            self.stats.migrations += 1
            self.telemetry.metrics.counter("sch.migrations").inc()
            action, unit_payload = "migrate", new_unit
        body = {"action": action, "unit": unit_payload}
        if action == "continue" and self.control_policy is not None:
            params = self.control_policy(client, message.body)
            if params:
                body["params"] = params
                self.stats.param_directives += 1
        return [self._assignment_send(
            contact,
            message.reply(SCH_DIRECTIVE, sender=self.contact, body=body))]

    def on_send_failed(self, send: Send, now: float) -> list[Effect]:
        """A unit-carrying assignment was never acknowledged: the client
        is unreachable (crashed, partitioned, reclaimed). Requeue the
        unit right away rather than waiting for the reap timer."""
        label = send.label or ""
        if not label.startswith("assign:"):
            return []
        contact = label.partition(":")[2]
        unit = send.message.body.get("unit")
        if not isinstance(unit, dict):
            return []
        client = self.clients.get(contact)
        # Only requeue if the client still holds *this* unit — a late ACK
        # path where the client moved on must not clone work.
        if client is None or client.unit is None or \
                client.unit.get("id") != unit.get("id"):
            return []
        self.work.requeue(client.unit)
        client.unit = None
        self.stats.units_requeued += 1
        self.telemetry.metrics.counter("sch.units_requeued").inc()
        self.telemetry.event("requeue unit", now, component=self.name,
                             outcome="requeue",
                             unit_id=str(unit.get("id")), client=contact)
        return [LogLine(f"assignment to {contact} gave up; "
                        f"requeued unit {unit.get('id')!r}")]

    # -- migration policy ---------------------------------------------------------
    def _forecast_rate(self, contact: str) -> Optional[float]:
        fc = self.forecasts.forecast(event_tag(contact, RATE))
        if fc is None or fc.samples < self.min_rate_samples:
            return None
        return fc.value

    def _should_migrate(self, contact: str, now: float) -> bool:
        mine = self._forecast_rate(contact)
        if mine is None:
            return False
        pool = [
            r for c in self.clients.values()
            if (r := self._forecast_rate(c.contact)) is not None
        ]
        if len(pool) < 3:
            return False
        pool.sort()
        median = pool[len(pool) // 2]
        return mine < self.migrate_fraction * median

    # -- timers ------------------------------------------------------------
    def on_timer(self, key: str, now: float) -> list[Effect]:
        if key != T_REAP:
            return []
        effects: list[Effect] = [SetTimer(T_REAP, self.reap_period)]
        deadline = self.dead_factor * self.report_period
        for contact in sorted(self.clients):
            client = self.clients[contact]
            if now - client.last_seen > deadline:
                if client.unit is not None:
                    self.work.requeue(client.unit)
                    self.stats.units_requeued += 1
                    self.telemetry.metrics.counter("sch.units_requeued").inc()
                    self.telemetry.event(
                        "requeue unit", now, component=self.name,
                        outcome="requeue",
                        unit_id=str(client.unit.get("id")), client=contact)
                del self.clients[contact]
                self.forecasts.drop(event_tag(contact, RATE))
                self.stats.reaps += 1
                effects.append(LogLine(f"reaping silent client {contact}"))
        return effects

    # -- introspection -------------------------------------------------------
    def active_clients(self) -> list[str]:
        return sorted(self.clients)
