"""Application-level services: scheduling, persistent state, logging,
and the app-kind registry that keeps the work-unit contract agnostic."""

from .kinds import (
    DEFAULT_KIND,
    KIND_FIELD,
    AppKind,
    KindEngine,
    KindRegistry,
    ResultCheckError,
    kind_of,
    register_kind,
    registry,
)
from .logging import LOG_APPEND, LOG_QUERY, LOG_RECORDS, LoggingServer, LogRecord
from .persistent import (
    PST_DENIED,
    PST_FETCH,
    PST_KEYS,
    PST_LIST,
    PST_MISSING,
    PST_STORE,
    PST_STORE_OK,
    PST_VALUE,
    DirectoryBackend,
    MemoryBackend,
    PersistentStateServer,
    ValidationError,
)
from .scheduler import (
    SCH_DIRECTIVE,
    SCH_HELLO,
    SCH_REPORT,
    SCH_WORK,
    QueueWorkSource,
    SchedulerServer,
    SchedulerStats,
    WorkSource,
)

__all__ = [
    "DEFAULT_KIND", "KIND_FIELD", "AppKind", "KindEngine", "KindRegistry",
    "ResultCheckError", "kind_of", "register_kind", "registry",
    "LOG_APPEND", "LOG_QUERY", "LOG_RECORDS", "LoggingServer", "LogRecord",
    "PST_DENIED", "PST_FETCH", "PST_KEYS", "PST_LIST", "PST_MISSING",
    "PST_STORE", "PST_STORE_OK", "PST_VALUE",
    "DirectoryBackend", "MemoryBackend", "PersistentStateServer", "ValidationError",
    "SCH_DIRECTIVE", "SCH_HELLO", "SCH_REPORT", "SCH_WORK",
    "QueueWorkSource", "SchedulerServer", "SchedulerStats", "WorkSource",
]
