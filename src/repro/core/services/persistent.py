"""Persistent state managers (§3.1.2).

The paper separates persistent state into its own service for three
reasons, each of which this module implements:

1. **Footprint control** — a quota (object count and total bytes) caps
   the disk the application may consume at a site;
2. **Trusted placement** — storage is behind a backend abstraction so a
   deployment can put it on the "trusted" host (the paper used SDSC for
   its tape backups); we ship an in-memory backend and a directory-of-
   JSON-files backend;
3. **Run-time sanity checks** — every store passes through a validator
   hook; the Ramsey application installs "is this really a
   counter-example?" verification, so a buggy or malicious client cannot
   corrupt the checkpointed best result.

Protocol: ``PST_STORE`` → ``PST_STORE_OK`` | ``PST_DENIED``;
``PST_FETCH`` → ``PST_VALUE`` | ``PST_MISSING``; ``PST_LIST`` → ``PST_KEYS``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Callable, Optional, Protocol

from ..component import Component, Effect, LogLine, Send
from ..linguafranca.messages import Message

__all__ = [
    "PersistentStateServer",
    "PersistentStats",
    "MemoryBackend",
    "DirectoryBackend",
    "ValidationError",
    "PST_STORE",
    "PST_STORE_OK",
    "PST_DENIED",
    "PST_FETCH",
    "PST_VALUE",
    "PST_MISSING",
    "PST_LIST",
    "PST_KEYS",
]

PST_STORE = "PST_STORE"
PST_STORE_OK = "PST_STORE_OK"
PST_DENIED = "PST_DENIED"
PST_FETCH = "PST_FETCH"
PST_VALUE = "PST_VALUE"
PST_MISSING = "PST_MISSING"
PST_LIST = "PST_LIST"
PST_KEYS = "PST_KEYS"


class ValidationError(Exception):
    """Raised by validators to deny a store."""


#: A validator inspects (key, obj) and raises ValidationError to deny.
Validator = Callable[[str, dict], None]


class StorageBackend(Protocol):
    def put(self, key: str, obj: dict) -> None: ...

    def get(self, key: str) -> Optional[dict]: ...

    def keys(self) -> list[str]: ...

    def size_bytes(self) -> int: ...


class MemoryBackend:
    """Volatile backend for simulation and tests."""

    def __init__(self) -> None:
        self._data: dict[str, dict] = {}
        self._bytes = 0

    def put(self, key: str, obj: dict) -> None:
        encoded = len(json.dumps(obj, separators=(",", ":")))
        old = self._data.get(key)
        if old is not None:
            self._bytes -= len(json.dumps(old, separators=(",", ":")))
        self._data[key] = obj
        self._bytes += encoded

    def get(self, key: str) -> Optional[dict]:
        return self._data.get(key)

    def keys(self) -> list[str]:
        return sorted(self._data)

    def size_bytes(self) -> int:
        return self._bytes


class DirectoryBackend:
    """One JSON file per key under a root directory (real deployments).

    Keys are sanitized into file names; the backend never writes outside
    its root.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)

    def _path(self, key: str) -> str:
        safe = "".join(c if c.isalnum() or c in "-_." else "_" for c in key)
        if not safe:
            safe = "_"
        return os.path.join(self.root, safe + ".json")

    def put(self, key: str, obj: dict) -> None:
        tmp = self._path(key) + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(obj, fh)
        os.replace(tmp, self._path(key))  # atomic publish

    def get(self, key: str) -> Optional[dict]:
        try:
            with open(self._path(key), encoding="utf-8") as fh:
                return json.load(fh)
        except FileNotFoundError:
            return None

    def keys(self) -> list[str]:
        return sorted(
            name[: -len(".json")]
            for name in os.listdir(self.root)
            if name.endswith(".json")
        )

    def size_bytes(self) -> int:
        total = 0
        for name in os.listdir(self.root):
            if name.endswith(".json"):
                total += os.path.getsize(os.path.join(self.root, name))
        return total


@dataclass
class PersistentStats:
    stores: int = 0
    denials: int = 0
    fetches: int = 0
    misses: int = 0


class PersistentStateServer(Component):
    """A persistent state manager process."""

    def __init__(
        self,
        name: str,
        backend: Optional[StorageBackend] = None,
        max_objects: int = 10_000,
        max_bytes: int = 64 * 1024 * 1024,
    ) -> None:
        super().__init__(name)
        self.backend: StorageBackend = backend if backend is not None else MemoryBackend()
        self.max_objects = max_objects
        self.max_bytes = max_bytes
        self._validators: list[Validator] = []
        self.stats = PersistentStats()

    def add_validator(self, validator: Validator) -> None:
        """Install a run-time sanity check applied to every store."""
        self._validators.append(validator)

    # -- messages ------------------------------------------------------------
    def on_message(self, message: Message, now: float) -> list[Effect]:
        handler = {
            PST_STORE: self._on_store,
            PST_FETCH: self._on_fetch,
            PST_LIST: self._on_list,
        }.get(message.mtype)
        if handler is None:
            return []
        return handler(message, now)

    def _deny(self, message: Message, reason: str) -> list[Effect]:
        self.stats.denials += 1
        return [
            LogLine(f"denied store from {message.sender}: {reason}", level="warning"),
            Send(message.sender, message.reply(
                PST_DENIED, sender=self.contact, body={"reason": reason})),
        ]

    def _on_store(self, message: Message, now: float) -> list[Effect]:
        key = message.body.get("key")
        obj = message.body.get("object")
        if not isinstance(key, str) or not key or not isinstance(obj, dict):
            return self._deny(message, "malformed store request")
        is_update = self.backend.get(key) is not None
        if not is_update and len(self.backend.keys()) >= self.max_objects:
            return self._deny(message, "object quota exceeded")
        if self.backend.size_bytes() >= self.max_bytes:
            return self._deny(message, "byte quota exceeded")
        for validator in self._validators:
            try:
                validator(key, obj)
            except ValidationError as exc:
                return self._deny(message, str(exc))
        self.backend.put(key, obj)
        self.stats.stores += 1
        return [Send(message.sender, message.reply(
            PST_STORE_OK, sender=self.contact, body={"key": key}))]

    def _on_fetch(self, message: Message, now: float) -> list[Effect]:
        key = message.body.get("key")
        self.stats.fetches += 1
        obj = self.backend.get(key) if isinstance(key, str) else None
        if obj is None:
            self.stats.misses += 1
            return [Send(message.sender, message.reply(
                PST_MISSING, sender=self.contact, body={"key": key}))]
        return [Send(message.sender, message.reply(
            PST_VALUE, sender=self.contact, body={"key": key, "object": obj}))]

    def _on_list(self, message: Message, now: float) -> list[Effect]:
        prefix = message.body.get("prefix", "")
        keys = [k for k in self.backend.keys() if k.startswith(prefix)]
        return [Send(message.sender, message.reply(
            PST_KEYS, sender=self.contact, body={"keys": keys}))]
