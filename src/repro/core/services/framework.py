"""The application-specific service framework (§6, delivered).

The paper's future work: "we plan to exploit commonalities in the
various service designs to provide an application-specific service
framework or template. Programmers could then install control modules
within the framework that would be automatically invoked by each
server." This module is that template for the master/worker (coupled
master-slave + data parallelism) class the paper identifies as
Grid-suitable:

* :class:`TaskFarmMaster` — owns a task list, hands tasks to workers on
  request, collects results, reissues tasks lost to failures, and
  invokes the installed *control module* (``on_result``) per result;
* :class:`TaskFarmWorker` — pulls tasks, charges their cost against the
  host's delivered speed (communication and load fluctuations included,
  as with the Ramsey clients), computes via the installed ``execute``
  control module, and submits.

Both are ordinary sans-IO components: they run under
:class:`~repro.core.simdriver.SimDriver` on the simulated Grid or under
:class:`~repro.core.netdriver.NetDriver` on real sockets, unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..component import Component, Effect, LogLine, Send, SetTimer
from ..linguafranca.messages import Message
from ..policy import RetryPolicy

__all__ = ["TaskFarmMaster", "TaskFarmWorker", "FARM_GET", "FARM_TASK",
           "FARM_RESULT", "FARM_ACK"]

FARM_GET = "FARM_GET"
FARM_TASK = "FARM_TASK"
FARM_RESULT = "FARM_RESULT"
FARM_ACK = "FARM_ACK"

T_REISSUE = "farm:reissue"
T_IDLE = "farm:idle"
T_SUBMIT = "farm:submit"

# Labels on the worker's reliable sends (routed in on_send_failed).
L_GET = "farm:get"
L_RESULT = "farm:result"


@dataclass
class _InFlight:
    task: dict
    worker: str
    issued_at: float


class TaskFarmMaster(Component):
    """Generic master: task distribution, collection, reissue.

    ``tasks`` must each carry a unique ``"id"``. ``on_result(task, result)``
    is the control module invoked per collected result (deduplicated:
    reissued tasks that return twice are counted once).
    """

    def __init__(
        self,
        name: str,
        tasks: list[dict],
        on_result: Optional[Callable[[dict, dict], None]] = None,
        reissue_timeout: float = 300.0,
    ) -> None:
        super().__init__(name)
        ids = [t.get("id") for t in tasks]
        if len(set(ids)) != len(ids) or any(i is None for i in ids):
            raise ValueError("every task needs a unique 'id'")
        self.pending: list[dict] = list(tasks)
        self.in_flight: dict[str, _InFlight] = {}
        self.results: dict[str, dict] = {}
        self.on_result = on_result
        self.reissue_timeout = reissue_timeout
        self.total = len(tasks)
        self.reissues = 0
        self.duplicate_results = 0

    @property
    def done(self) -> bool:
        return len(self.results) == self.total

    def progress(self) -> tuple[int, int]:
        return len(self.results), self.total

    # -- protocol ------------------------------------------------------------
    def on_start(self, now: float) -> list[Effect]:
        return [SetTimer(T_REISSUE, self.reissue_timeout)]

    def on_message(self, message: Message, now: float) -> list[Effect]:
        if message.mtype == FARM_GET:
            return self._issue(message.sender, now, reply_to=message)
        if message.mtype == FARM_RESULT:
            return self._collect(message, now)
        return []

    def _issue(self, worker: str, now: float,
               reply_to: Optional[Message] = None) -> list[Effect]:
        task: Optional[dict] = None
        if self.pending:
            task = self.pending.pop(0)
            self.in_flight[task["id"]] = _InFlight(task, worker, now)
        body = {"task": task, "remaining": len(self.pending)}
        msg = (reply_to.reply(FARM_TASK, sender=self.contact, body=body)
               if reply_to is not None
               else Message(mtype=FARM_TASK, sender=self.contact, body=body))
        return [Send(worker, msg)]

    def _collect(self, message: Message, now: float) -> list[Effect]:
        task_id = message.body.get("task_id")
        result = message.body.get("result")
        effects: list[Effect] = [Send(message.sender, message.reply(
            FARM_ACK, sender=self.contact, body={"task_id": task_id}))]
        if not isinstance(task_id, str) or not isinstance(result, dict):
            return effects
        flight = self.in_flight.pop(task_id, None)
        if task_id in self.results:
            self.duplicate_results += 1
            return effects
        self.results[task_id] = result
        if self.on_result is not None:
            task = flight.task if flight is not None else {"id": task_id}
            self.on_result(task, result)
        if self.done:
            effects.append(LogLine(f"farm complete: {self.total} tasks"))
        return effects

    def on_timer(self, key: str, now: float) -> list[Effect]:
        if key != T_REISSUE:
            return []
        effects: list[Effect] = [SetTimer(T_REISSUE, self.reissue_timeout)]
        for task_id in sorted(self.in_flight):
            flight = self.in_flight[task_id]
            if now - flight.issued_at > self.reissue_timeout:
                # Worker presumed dead (reclaimed, failed): recycle.
                del self.in_flight[task_id]
                self.pending.insert(0, flight.task)
                self.reissues += 1
                effects.append(LogLine(
                    f"reissuing task {task_id} lost with {flight.worker}"))
        return effects


class TaskFarmWorker(Component):
    """Generic worker: pull, compute (installed control module), submit.

    ``execute(task) -> result`` does the actual computation; ``cost(task)
    -> ops`` prices it so simulated time is charged against the host's
    delivered speed. Task pulls and result submissions are reliable
    sends: the driver retransmits them under ``retry`` until the
    master's correlated FARM_TASK / FARM_ACK reply arrives, and the
    worker only hears about exhausted policies through
    :meth:`on_send_failed`. ``retry_period`` is the idle re-poll period
    once the farm reports itself drained.
    """

    def __init__(
        self,
        name: str,
        master: str,
        execute: Callable[[dict], dict],
        cost: Callable[[dict], float],
        retry_period: float = 30.0,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        super().__init__(name)
        self.master = master
        self.execute = execute
        self.cost = cost
        self.retry_period = retry_period
        self.retry = retry or RetryPolicy(max_attempts=4)
        self.current: Optional[dict] = None
        self._result: Optional[dict] = None
        self._awaiting_ack = False
        self.tasks_done = 0
        self.ops_charged = 0.0
        self.master_give_ups = 0

    # -- protocol ------------------------------------------------------------
    def _get(self) -> list[Effect]:
        return [Send(self.master, Message(
            mtype=FARM_GET, sender=self.contact),
            retry=self.retry, label=L_GET)]

    def on_start(self, now: float) -> list[Effect]:
        return self._get()

    def on_message(self, message: Message, now: float) -> list[Effect]:
        if message.mtype == FARM_TASK:
            task = message.body.get("task")
            if task is None:
                # Farm drained (or nothing yet): idle and re-ask later.
                self.current = None
                return [SetTimer(T_IDLE, self.retry_period)]
            self.current = task
            self._result = None
            self._awaiting_ack = False
            ops = max(float(self.cost(task)), 1.0)
            assert self.runtime is not None
            speed = max(self.runtime.speed(), 1e-9)
            self.ops_charged += ops
            # The compute phase: charge simulated time for the task's cost
            # at the host's *current* delivered speed.
            return [SetTimer(T_SUBMIT, ops / speed)]
        if message.mtype == FARM_ACK:
            if self._awaiting_ack:
                self._awaiting_ack = False
                self._result = None
                self.current = None
                self.tasks_done += 1
                return self._get()
            return []
        return []

    def on_timer(self, key: str, now: float) -> list[Effect]:
        if key == T_SUBMIT:
            if self.current is None:
                return []
            if self._result is None:
                self._result = self.execute(self.current)
            self._awaiting_ack = True
            return self._submit()
        if key == T_IDLE:
            if self.current is None and not self._awaiting_ack:
                return self._get()
            return []
        return []

    def on_send_failed(self, send: Send, now: float) -> list[Effect]:
        # The master stayed silent through the whole retry policy. Keep
        # trying at give-up cadence: the farm master reissues and
        # deduplicates, so re-pulling and re-submitting are both safe.
        self.master_give_ups += 1
        if send.label == L_RESULT and self._awaiting_ack and self._result is not None:
            return [LogLine(f"master {send.dst} silent; resubmitting result"),
                    *self._submit()]
        if send.label == L_GET and self.current is None:
            return [LogLine(f"master {send.dst} silent; re-requesting work"),
                    *self._get()]
        return []

    def _submit(self) -> list[Effect]:
        assert self.current is not None and self._result is not None
        return [Send(self.master, Message(
            mtype=FARM_RESULT, sender=self.contact,
            body={"task_id": self.current["id"], "result": self._result}),
            retry=self.retry, label=L_RESULT)]
