"""Driver running a sans-IO :class:`Component` on real TCP sockets.

The counterpart of :class:`~repro.core.simdriver.SimDriver` for actual
deployment: the same component code (Gossip server, scheduler, client)
binds to a real port, receives lingua-franca packets from the network,
and has its timers driven by the wall clock. Single-threaded, per the
paper's portability rules — the loop multiplexes socket readiness and
timer deadlines exactly the way the C prototype multiplexed ``select()``
time-outs.

Sends are *datagram-style and asynchronous*: every ``Send`` effect is
queued on a non-blocking per-peer connection (see
:class:`~repro.core.linguafranca.tcp.AsyncSender`) and flushed in
batched vectored writes as the socket becomes writable — the reactor
never blocks in ``connect()`` or ``send()``, so one driver sustains
thousands of concurrent peers. Failure semantics are unchanged from the
blocking driver: unreachable peers cost :attr:`send_errors`, never an
exception, and recovery is the component's time-out/retry ladder —
exactly how EveryWare survives transports that drop connections without
notice. The server, every accepted connection, and every outbound
connection share one :class:`~repro.core.linguafranca.tcp.EventLoop`,
i.e. one ``select()`` per reactor turn.
"""

from __future__ import annotations

import random
import signal
import time
from typing import Callable, Optional

from .component import CancelTimer, Component, Effect, LogLine, Send, SetTimer, Stop
from .forecasting.benchmarking import event_tag
from .linguafranca.messages import Message
from .linguafranca.tcp import (
    AsyncSender,
    EventLoop,
    TcpClient,
    TcpServer,
    TransportError,
)
from .policy import ReliableSendTracker, TimeoutPolicy
from .telemetry import Telemetry

__all__ = ["NetDriver"]


class _NetRuntime:
    def __init__(self, driver: "NetDriver") -> None:
        self._d = driver

    def now(self) -> float:
        return self._d.now()

    def contact(self) -> str:
        return self._d.contact

    def host_name(self) -> str:
        return self._d.contact.split(":")[0]

    def speed(self) -> float:
        # Real mode has no simulated host to meter a client against; the
        # driver-level budget (ops/second of wall time, default 0) lets
        # self-metering engines size their compute slices.
        return self._d.speed

    def random(self) -> float:
        return self._d._rng.random()


class NetDriver:
    """Runs one component on a real TCP endpoint."""

    def __init__(
        self,
        component: Component,
        host: str = "127.0.0.1",
        port: int = 0,
        log_sink=None,
        seed: Optional[int] = None,
        timeout_policy: Optional[TimeoutPolicy] = None,
        send_timeout: Optional[float] = None,
        telemetry: Optional[Telemetry] = None,
        speed: float = 0.0,
    ) -> None:
        if send_timeout is not None:
            raise TypeError(
                "NetDriver(send_timeout=...) was removed; pass "
                "timeout_policy=TimeoutPolicy.static(value) instead")
        self.component = component
        #: One selector shared by the listening socket, every accepted
        #: connection, and every outbound connection.
        self.loop = EventLoop()
        self.server = TcpServer(host, port, self._handle, loop=self.loop)
        self.contact = self.server.contact
        # Per-destination/message-tag connect+send budgets; dynamic
        # time-out discovery (§2.2) instead of the old hardcoded 2.0s.
        self.timeout_policy = timeout_policy or TimeoutPolicy.forecast(default=2.0)
        self.sender = AsyncSender(self.loop, sender=self.contact,
                                  observer=self._observe_send)
        #: Blocking client kept for request/response side channels
        #: (probes, tools); the driver's own sends never touch it.
        self.client = TcpClient(sender=self.contact)
        self.log_sink = log_sink
        self.tracker: Optional[ReliableSendTracker] = None
        self._rng = random.Random(seed)
        self._timers: dict[str, float] = {}
        self._t0 = time.monotonic()
        self._stopped = False
        self.stop_reason: Optional[str] = None
        #: Local (non-transport) send failures, e.g. malformed addresses;
        #: transport failures are metered by the async sender and the two
        #: are summed by :attr:`send_errors`.
        self._address_errors = 0
        self.handler_errors = 0
        self._started = False
        self.speed = float(speed)
        #: Set (from a signal handler or another thread) to ask the loop
        #: to stop at the next reactor turn; drained by :meth:`step`.
        self._stop_requested: Optional[str] = None
        #: Invoked once per reactor turn (telemetry shippers, supervisors
        #: piggybacking on the loop) — the wall-clock twin of the sim
        #: engine's ``drain_hook``.
        self.tick_hook: Optional[Callable[[], None]] = None
        #: Invoked (in order) during :meth:`shutdown` after timers are
        #: cancelled, before sockets close: flush pending telemetry/log
        #: lines here.
        self.drain_hooks: list[Callable[[], None]] = []
        self._shutdown_done = False
        # Same observability surface as SimDriver: a shared world handle
        # or a private tracing-off default. Span timestamps here are wall
        # seconds since driver start (there is no simulated clock).
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self._timer_ctx: dict[str, Optional[tuple[int, int]]] = {}
        component.bind_telemetry(self.telemetry)

    def now(self) -> float:
        return time.monotonic() - self._t0

    @property
    def send_errors(self) -> int:
        """Frames that could not be delivered (unreachable peer, stuck
        connection expired past its deadline, malformed address)."""
        return self._address_errors + self.sender.errors

    @property
    def reconnects(self) -> int:
        """Transparent outbound reconnects (async sender + blocking
        client side channel combined)."""
        return self.sender.reconnects + self.client.reconnects

    # -- effects ------------------------------------------------------------
    def _apply(self, effects: list[Effect]) -> None:
        tracer = self.telemetry.tracer
        for eff in effects:
            if isinstance(eff, Send):
                message = eff.message
                if eff.retry is not None:
                    pending = self._reliable().track(eff, self.now())
                    if tracer.enabled:
                        parent = (message.trace if message.trace is not None
                                  else tracer.current_ctx())
                        span = tracer.begin(f"call {message.mtype}",
                                            component=self.component.name,
                                            parent=parent, start=self.now(),
                                            mtype=message.mtype)
                        if eff.label:
                            span.args["label"] = eff.label
                        if message.trace is None:
                            message.trace = (span.trace_id, span.span_id)
                        pending.span = span
                elif tracer.enabled and message.trace is None:
                    span = tracer.instant(f"send {message.mtype}", self.now(),
                                          component=self.component.name,
                                          parent=tracer.current_ctx(),
                                          mtype=message.mtype)
                    message.trace = (span.trace_id, span.span_id)
                self.telemetry.metrics.counter(
                    "msg.sent", mtype=message.mtype).inc()
                self._transmit(eff)
            elif isinstance(eff, SetTimer):
                self._timers[eff.key] = self.now() + eff.delay
                if tracer.enabled:
                    self._timer_ctx[eff.key] = tracer.current_ctx()
            elif isinstance(eff, CancelTimer):
                self._timers.pop(eff.key, None)
                self._timer_ctx.pop(eff.key, None)
            elif isinstance(eff, LogLine):
                if self.log_sink is not None:
                    self.log_sink(self.now(), self.component.name,
                                  eff.level, eff.text)
            elif isinstance(eff, Stop):
                self._stopped = True
                self.stop_reason = eff.reason
            else:
                raise TypeError(f"unknown effect {eff!r}")

    def _observe_send(self, tag: Optional[str], elapsed: float) -> None:
        # Measured queue+connect+write time feeds the forecaster so
        # future budgets track observed behavior.
        self.timeout_policy.observe(tag, elapsed)

    def _transmit(self, eff: Send) -> None:
        host, _, port = eff.dst.rpartition(":")
        tag = event_tag(eff.dst, eff.message.mtype)
        if isinstance(eff.timeout, TimeoutPolicy):
            timeout = eff.timeout.timeout_for(tag)
        elif eff.timeout is not None:
            timeout = float(eff.timeout)
        else:
            timeout = self.timeout_policy.timeout_for(tag)
        try:
            port_no = int(port)
        except ValueError:
            self._address_errors += 1
            return
        # Queued, not sent: the frame leaves (in a batched vectored
        # write) once the peer connection is writable. Unreachable peers
        # surface asynchronously as sender errors.
        self.sender.post(host, port_no, eff.message,
                         timeout=timeout, tag=tag)

    def post(self, dst: str, message: Message,
             timeout: Optional[float] = None, tag: Optional[str] = None) -> None:
        """Fire-and-forget send outside the effect system (shippers,
        supervisors riding the driver loop). Same failure semantics as a
        ``Send`` effect: errors are metered, never raised."""
        host, _, port = dst.rpartition(":")
        if tag is None:
            tag = event_tag(dst, message.mtype)
        if timeout is None:
            timeout = self.timeout_policy.timeout_for(tag)
        try:
            port_no = int(port)
        except ValueError:
            self._address_errors += 1
            return
        self.sender.post(host, port_no, message, timeout=timeout, tag=tag)

    def _reliable(self) -> ReliableSendTracker:
        if self.tracker is None:
            self.tracker = ReliableSendTracker(
                self.timeout_policy, self._rng.random,
                metrics=self.telemetry.metrics)
        return self.tracker

    def _handle(self, message: Message) -> Optional[Message]:
        now = self.now()
        tracer = self.telemetry.tracer
        if self.tracker is not None:
            resolved = self.tracker.resolve(message.reply_to, now)
            if resolved is not None and resolved.span is not None:
                tracer.finish(resolved.span, now, "ok")
        self.telemetry.metrics.counter("msg.recv", mtype=message.mtype).inc()
        span = None
        if tracer.enabled:
            span = tracer.begin(f"recv {message.mtype}",
                                component=self.component.name,
                                parent=message.trace, start=now,
                                mtype=message.mtype)
            tracer.current = span
        outcome = "ok"
        try:
            effects = self.component.on_message(message, now)
        except Exception as exc:  # noqa: BLE001 — robustness boundary
            self.handler_errors += 1
            outcome = "error"
            if self.log_sink is not None:
                self.log_sink(self.now(), self.component.name, "error",
                              f"dropped {message.mtype}: {exc!r}")
            effects = []
        try:
            self._apply(effects)
        finally:
            if span is not None:
                tracer.finish(span, self.now(), outcome)
                tracer.current = None
        return None  # all replies travel as explicit Send effects

    def _service_reliable(self) -> None:
        if self.tracker is None or not len(self.tracker):
            return
        now = self.now()
        tracer = self.telemetry.tracer
        for action, pending in self.tracker.due(now):
            if self._stopped:
                return
            message = pending.eff.message
            if action == "resend":
                if tracer.enabled:
                    parent = (pending.span.ctx if pending.span is not None
                              else message.trace)
                    tracer.instant(f"retransmit {message.mtype}", now,
                                   component=self.component.name,
                                   parent=parent, outcome="retransmit",
                                   mtype=message.mtype,
                                   args={"attempt": pending.attempt})
                self._transmit(pending.eff)
            else:
                span = None
                if tracer.enabled:
                    if pending.span is not None:
                        tracer.finish(pending.span, now, "gave-up")
                    parent = (pending.span.ctx if pending.span is not None
                              else message.trace)
                    span = tracer.begin(
                        f"send-failed {pending.eff.label or message.mtype}",
                        component=self.component.name, parent=parent,
                        start=now, mtype=message.mtype)
                    tracer.current = span
                try:
                    self._apply(self.component.on_send_failed(pending.eff, now))
                finally:
                    if span is not None:
                        tracer.finish(span, self.now(), "gave-up")
                        tracer.current = None

    def _fire_due_timers(self) -> None:
        self._service_reliable()
        while not self._stopped:
            now = self.now()
            due = sorted(
                (t, k) for k, t in self._timers.items() if t <= now
            )
            if not due:
                return
            _, key = due[0]
            del self._timers[key]
            ctx = self._timer_ctx.pop(key, None)
            tracer = self.telemetry.tracer
            span = None
            if tracer.enabled:
                span = tracer.begin(f"timer {key}",
                                    component=self.component.name,
                                    parent=ctx, start=now)
                tracer.current = span
            try:
                self._apply(self.component.on_timer(key, self.now()))
            finally:
                if span is not None:
                    tracer.finish(span, self.now(), "ok")
                    tracer.current = None

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> None:
        """Bind the component and run its on_start effects. Idempotent."""
        if self._started:
            return
        self._started = True
        self.component.bind_runtime(_NetRuntime(self))
        self._apply(self.component.on_start(self.now()))

    def request_stop(self, reason: str = "stop") -> None:
        """Ask the reactor loop to stop at its next turn.

        Safe to call from a signal handler or another thread: it only
        sets a flag, which :meth:`step` drains on the loop's own thread.
        """
        if self._stop_requested is None:
            self._stop_requested = reason

    def install_signal_handlers(self, *signals_: int) -> None:
        """Route SIGTERM/SIGINT (or the given signals) to
        :meth:`request_stop`, so a supervisor's drain turns into a
        graceful stop instead of an abrupt exit (main thread only)."""
        for sig in signals_ or (signal.SIGTERM, signal.SIGINT):
            signal.signal(sig, lambda signum, frame: self.request_stop(
                f"signal:{signal.Signals(signum).name}"))

    def step(self, max_wait: float = 0.05) -> None:
        """One reactor turn: poll sockets until the next timer deadline."""
        if not self._started:
            self.start()
        if self._stop_requested is not None and not self._stopped:
            self._stopped = True
            self.stop_reason = self._stop_requested
            return
        deadline = min(self._timers.values()) if self._timers else None
        if self.tracker is not None:
            retry_deadline = self.tracker.next_deadline()
            if retry_deadline is not None and (
                deadline is None or retry_deadline < deadline
            ):
                deadline = retry_deadline
        wait = max_wait
        if deadline is not None:
            wait = min(max(deadline - self.now(), 0.0), max_wait)
        # One select() covers the listener, inbound connections, and
        # every outbound connection.
        self.server.step(wait)
        self.sender.service()
        self._fire_due_timers()
        if self.tick_hook is not None:
            self.tick_hook()

    def run(self, duration: float) -> str:
        """Pump the reactor for ``duration`` wall seconds (or until the
        component stops itself / :meth:`request_stop` fires); returns the
        stop reason."""
        end = self.now() + duration
        while not self._stopped and self.now() < end:
            self.step()
        self.component.on_stop(self.now(), self.stop_reason or "duration")
        return self.stop_reason or "duration"

    def shutdown(self) -> str:
        """Graceful drain (idempotent): cancel every pending timer and
        reliable send, run the registered :attr:`drain_hooks` so pending
        log lines/telemetry flush, then flush queued outbound frames
        (bounded) and close every socket. Returns the stop reason."""
        reason = self.stop_reason or self._stop_requested or "shutdown"
        if self._shutdown_done:
            return reason
        self._shutdown_done = True
        self._stopped = True
        self.stop_reason = reason
        self._timers.clear()
        self._timer_ctx.clear()
        if self.tracker is not None:
            # Outstanding reliable sends die with the process; their
            # give-up recovery is the restarted component's problem.
            self.tracker = None
        for hook in self.drain_hooks:
            try:
                hook()
            except Exception:  # noqa: BLE001 — drain must not mask drain
                pass
        self.close()
        return reason

    def _flush_outbound(self, budget: float = 0.5) -> None:
        """Pump the loop until queued frames are delivered or resolved as
        errors, bounded by ``budget`` wall seconds. Connect failures
        (refused peers) resolve here too — readiness is the only place
        non-blocking connect errors surface."""
        deadline = time.monotonic() + budget
        while self.sender.pending() and time.monotonic() < deadline:
            try:
                self.loop.step(0.02)
            except TransportError:
                break
            self.sender.service()

    def close(self) -> None:
        self._flush_outbound()
        self.sender.close()
        self.server.close()
        self.client.close()
        self.loop.close()
