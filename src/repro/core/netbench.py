"""Transport benchmarks for the live plane: echo storms and send fan-out.

Two benchmark families, both before/after the async rewrite:

**Echo storm** (``run_storm``) — sustained request/response throughput
(msgs/s) and tail latency against connection count, for two server
substrates:

* ``blocking-threads`` — the *before* baseline: a blocking
  thread-per-connection echo server issuing one ``send`` syscall per
  packet. This is the classic portable design the paper-era systems
  started from (and the only place in this codebase threads touch a
  socket — it exists purely as the measurement baseline).
* ``async-reactor`` — the *after*: the selectors-based
  :class:`~repro.core.linguafranca.tcp.TcpServer` the NetDriver rides —
  non-blocking accept-all, zero-copy in-place reads, per-connection
  write queues flushed with batched ``sendmsg``.

The server under test runs in a **forked child process**, so the load
generator does not share a GIL with it; the generator itself is a
single-threaded poll loop driving N concurrent connections with a small
pipeline of in-flight requests each — the same shape as a live node
fan-in. ``churn`` makes connections short-lived, folding the server's
accept path into the measured flow.

**Send fan-out** (``run_fanout``) — sustained outbound msgs/s from ONE
driver to N peer connections, which is the path the async rewrite
actually replaced. The *before* sender is a faithful replica of the old
``TcpClient.send`` hot loop (cached blocking socket per peer, a
``select``-based staleness probe + ``settimeout`` + ``sendall`` — three
to four syscalls — per message, fully serialized); the *after* is
:class:`~repro.core.linguafranca.tcp.AsyncSender` on the shared event
loop, which appends to per-peer write queues and flushes up to
``SENDMSG_BATCH`` frames per ``sendmsg`` call. The receiving end is a
forked byte-counting sink, identical for both modes.
"""

from __future__ import annotations

import os
import select
import signal
import socket
import struct
import threading
import time
from collections import deque
from typing import Optional

from .linguafranca.messages import Message
from .linguafranca.packets import HEADER, PacketDecoder, encode_packet
from .linguafranca.tcp import AsyncSender, EventLoop, TcpServer

__all__ = ["run_storm", "run_fanout", "run_netbench", "spawn_echo_server",
           "MODES", "LEVELS"]

MODES = ("blocking-threads", "async-reactor")

#: ``frame`` echoes at the packet layer (decode/validate the inbound
#: frame, queue a pre-encoded reply) so the *transport* is what's being
#: compared; ``message`` runs the full Message parse/reply path, which
#: adds identical JSON cost to both modes and measures the app ceiling.
LEVELS = ("frame", "message")

_REPLY_FRAME = encode_packet("PONG", b"{}")


def _frame_echo(mtype: str, payload: memoryview) -> bytes:
    return _REPLY_FRAME


def _raise_nofile(want: int) -> None:
    """Best-effort bump of RLIMIT_NOFILE (storms need ~2 fds/connection)."""
    try:
        import resource

        soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
        if soft < want:
            resource.setrlimit(resource.RLIMIT_NOFILE,
                               (min(want, hard), hard))
    except (ImportError, ValueError, OSError):  # pragma: no cover
        pass


def _echo_handler(message: Message) -> Message:
    return message.reply("PONG", sender="bench")


def _serve_blocking(listener: socket.socket, level: str) -> None:
    """The baseline: accept loop + thread per connection + send per packet."""

    def serve_conn(sock: socket.socket) -> None:
        decoder = PacketDecoder()
        try:
            while True:
                data = sock.recv(65536)
                if not data:
                    return
                decoder.feed(data)
                if level == "frame":
                    while True:
                        reply = decoder.next_record(_frame_echo)
                        if reply is None:
                            break
                        sock.sendall(reply)
                else:
                    while True:
                        message = decoder.next_record(Message.from_parts)
                        if message is None:
                            break
                        sock.sendall(_echo_handler(message).encode())
        except OSError:
            pass
        finally:
            try:
                sock.close()
            except OSError:
                pass

    # Note: no TCP_NODELAY — the before-stack never set it (that is one
    # of the things this PR fixed), so pipelined small replies can stall
    # on Nagle-vs-delayed-ACK exactly as the old live plane did.
    while True:
        sock, _addr = listener.accept()
        threading.Thread(target=serve_conn, args=(sock,), daemon=True).start()


def _serve_reactor(port_pipe: int, level: str) -> None:
    raw = _frame_echo if level == "frame" else None
    server = TcpServer("127.0.0.1", 0, _echo_handler, raw_handler=raw)
    os.write(port_pipe, struct.pack("!I", server.address[1]))
    os.close(port_pipe)
    while True:
        server.step(0.5)


def spawn_echo_server(mode: str, level: str = "frame",
                      max_fds: int = 16384) -> tuple[int, int]:
    """Fork an echo server child; returns ``(pid, port)``."""
    if mode not in MODES:
        raise ValueError(f"unknown mode {mode!r} (want one of {MODES})")
    if level not in LEVELS:
        raise ValueError(f"unknown level {level!r} (want one of {LEVELS})")
    _raise_nofile(max_fds)
    rd, wr = os.pipe()
    pid = os.fork()
    if pid == 0:  # child
        os.close(rd)
        try:
            if mode == "async-reactor":
                _serve_reactor(wr, level)
            else:
                listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
                listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
                listener.bind(("127.0.0.1", 0))
                listener.listen(4096)
                os.write(wr, struct.pack("!I", listener.getsockname()[1]))
                os.close(wr)
                _serve_blocking(listener, level)
        finally:
            os._exit(0)
    os.close(wr)
    data = b""
    while len(data) < 4:
        chunk = os.read(rd, 4 - len(data))
        if not chunk:
            raise RuntimeError("echo server child died before reporting port")
        data += chunk
    os.close(rd)
    return pid, struct.unpack("!I", data)[0]


def stop_echo_server(pid: int) -> None:
    try:
        os.kill(pid, signal.SIGKILL)
    except ProcessLookupError:
        pass
    try:
        os.waitpid(pid, 0)
    except ChildProcessError:
        pass


class _StormConn:
    __slots__ = ("sock", "buf", "inflight", "outbuf", "registered_w",
                 "received")

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.buf = bytearray()  # unconsumed reply bytes
        self.inflight: deque[float] = deque()  # send timestamps, FIFO
        self.outbuf = bytearray()
        self.registered_w = False
        self.received = 0  # replies on this connection (drives churn)

    def count_replies(self) -> int:
        """Count complete reply frames by header arithmetic alone — the
        client is the measurement instrument, not the system under test,
        so it skips CRC/JSON work to leave the (shared) CPU to the
        server processes being compared."""
        buf = self.buf
        n = 0
        offset = 0
        remaining = len(buf)
        while remaining >= HEADER.size:
            _magic, _version, tlen, plen = HEADER.unpack_from(buf, offset)
            total = HEADER.size + tlen + plen + 4  # + crc trailer
            if remaining < total:
                break
            offset += total
            remaining -= total
            n += 1
        if offset:
            del buf[:offset]
        return n


def run_storm(
    host: str,
    port: int,
    connections: int,
    duration: float = 4.0,
    pipeline: int = 4,
    payload: int = 32,
    warmup: float = 0.5,
    churn: int = 0,
) -> dict:
    """Drive ``connections`` concurrent pipelined echo exchanges for
    ``duration`` seconds (after ``warmup``); returns throughput and
    latency percentiles. Single-threaded selector loop.

    ``churn`` > 0 makes connections short-lived: after that many replies
    a connection closes and a fresh one takes its place, so connection
    setup cost (the server's accept path) is part of the measured flow —
    the live-plane shape, where nodes and collectors reconnect
    constantly. ``churn`` = 0 keeps the original long-lived flood."""
    _raise_nofile(connections * 2 + 64)
    frame = Message(mtype="PING", sender="storm",
                    body={"pad": "x" * max(payload - 16, 0)}).encode()
    # First burst per connection, pre-built (one send call at connect).
    first = frame * (min(pipeline, churn) if churn else pipeline)
    first_n = len(first) // len(frame)
    # The client instrument talks to the poll/epoll syscall interface
    # directly: at storm churn rates the selectors-module bookkeeping
    # (SelectorKey allocation per register) is measurable overhead the
    # instrument should not add on top of the servers being compared.
    use_epoll = hasattr(select, "epoll")
    poller = select.epoll() if use_epoll else select.poll()
    RD, WR = select.POLLIN, select.POLLOUT
    conns: dict[int, _StormConn] = {}
    samples: list[float] = []
    count = 0
    churned = 0
    measuring = False

    def connect() -> None:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setblocking(False)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        err = sock.connect_ex((host, port))
        if err not in (0, 115, 36, 10035):  # EINPROGRESS variants
            raise OSError(err, os.strerror(err))
        conn = _StormConn(sock)
        # Loopback takes the first burst straight away even while the
        # handshake is notionally in progress; fall back to the write
        # queue if the kernel disagrees.
        now = time.monotonic()
        try:
            sent = sock.send(first)
        except OSError:
            sent = 0
        if sent < len(first):
            conn.outbuf.extend(memoryview(first)[sent:])
            conn.registered_w = True
        for _ in range(first_n):
            conn.inflight.append(now)
        conns[sock.fileno()] = conn
        poller.register(sock.fileno(), RD | (WR if conn.registered_w else 0))

    def pump(fd: int, mask: int) -> None:
        nonlocal count, churned
        conn = conns.get(fd)
        if conn is None:
            return
        if mask & RD:
            try:
                data = conn.sock.recv(262144)
            except (BlockingIOError, InterruptedError):
                data = None
            else:
                if not data:
                    raise RuntimeError("echo server closed a storm connection")
                conn.buf.extend(data)
                now = time.monotonic()
                for _ in range(conn.count_replies()):
                    t0 = conn.inflight.popleft()
                    conn.received += 1
                    if measuring:
                        count += 1
                        samples.append(now - t0)
        if churn and conn.received >= churn and not conn.inflight:
            # This connection's quota is spent and drained: replace it.
            poller.unregister(fd)
            del conns[fd]
            try:
                conn.sock.close()
            except OSError:
                pass
            connect()
            churned += 1
            return
        # Top the pipeline back up (one fresh request per completed
        # exchange), then push bytes while the kernel takes them.
        now = time.monotonic()
        budget = (churn - conn.received - len(conn.inflight)
                  if churn else pipeline)
        while len(conn.inflight) < pipeline and (not churn or budget > 0):
            conn.outbuf.extend(frame)
            conn.inflight.append(now)
            budget -= 1
        if conn.outbuf:
            try:
                sent = conn.sock.send(conn.outbuf)
                del conn.outbuf[:sent]
            except (BlockingIOError, InterruptedError):
                pass
        want_w = bool(conn.outbuf)
        if want_w != conn.registered_w:
            conn.registered_w = want_w
            poller.modify(fd, RD | (WR if want_w else 0))

    # epoll takes seconds, poll takes milliseconds.
    timeout_scale = 1.0 if use_epoll else 1000.0
    try:
        for _ in range(connections):
            connect()

        t_start = time.monotonic()
        warm_end = t_start + warmup
        t_end = warm_end + duration
        t_measure_start = None
        while True:
            now = time.monotonic()
            if now >= t_end:
                break
            if not measuring and now >= warm_end:
                measuring = True
                t_measure_start = now
            for fd, mask in poller.poll(0.2 * timeout_scale):
                pump(fd, mask)
        elapsed = time.monotonic() - (t_measure_start or warm_end)
    finally:
        for conn in conns.values():
            try:
                conn.sock.close()
            except OSError:
                pass
        if use_epoll:
            poller.close()

    samples.sort()

    def pct(q: float) -> float:
        if not samples:
            return 0.0
        return samples[min(int(len(samples) * q), len(samples) - 1)] * 1e3

    return {
        "connections": connections,
        "pipeline": pipeline,
        "churn": churn,
        "reconnects": churned,
        "msgs": count,
        "msgs_per_s": count / elapsed if elapsed > 0 else 0.0,
        "p50_ms": pct(0.50),
        "p99_ms": pct(0.99),
    }


def bench_mode(
    mode: str,
    connections: int,
    duration: float = 4.0,
    pipeline: int = 4,
    payload: int = 32,
    warmup: float = 0.5,
    level: str = "frame",
    churn: int = 0,
) -> dict:
    """One (server mode, connection count) cell: fork, storm, reap."""
    pid, port = spawn_echo_server(mode, level=level)
    try:
        # Give the child a beat to enter its serve loop.
        time.sleep(0.05)
        row = run_storm("127.0.0.1", port, connections,
                        duration=duration, pipeline=pipeline,
                        payload=payload, warmup=warmup, churn=churn)
    finally:
        stop_echo_server(pid)
    row["mode"] = mode
    row["level"] = level
    return row


# -- send fan-out: the outbound path the async rewrite replaced --------------

FANOUT_MODES = ("blocking-send", "async-send")


def _peer_addrs(n: int) -> list[str]:
    """``n`` distinct loopback IPs (all of 127/8 is loopback on Linux),
    so one sender holds ``n`` distinct peer connections against a single
    sink listener."""
    return [f"127.0.{i // 200}.{1 + i % 200}" for i in range(n)]


def _serve_sink(port_pipe: int, ctl: socket.socket) -> None:
    """Byte-counting sink: accepts everything, drains everything, and
    answers count queries on the control socket. Frames in a fan-out run
    are uniform, so received messages = received bytes // frame size
    (the size is learned from the first complete header)."""
    lst = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    lst.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    lst.bind(("0.0.0.0", 0))
    lst.listen(4096)
    lst.setblocking(False)
    os.write(port_pipe, struct.pack("!I", lst.getsockname()[1]))
    os.close(port_pipe)

    ep = select.epoll() if hasattr(select, "epoll") else select.poll()
    RD = select.POLLIN
    ep.register(lst.fileno(), RD)
    ep.register(ctl.fileno(), RD)
    lst_fd, ctl_fd = lst.fileno(), ctl.fileno()
    conns: dict[int, socket.socket] = {}
    head = bytearray()  # first bytes seen, until one header is complete
    frame_size = 0
    received = 0  # whole frames; trailing partials under one frame/conn
    scale = 1.0 if hasattr(select, "epoll") else 1000.0
    while True:
        for fd, _ev in ep.poll(1.0 * scale):
            if fd == lst_fd:
                while True:
                    try:
                        sock, _addr = lst.accept()
                    except OSError:
                        break
                    sock.setblocking(False)
                    conns[sock.fileno()] = sock
                    ep.register(sock.fileno(), RD)
            elif fd == ctl_fd:
                if not ctl.recv(1):
                    os._exit(0)
                ctl.send(struct.pack("!Q", received))
            else:
                sock = conns.get(fd)
                if sock is None:
                    continue
                try:
                    data = sock.recv(262144)
                except (BlockingIOError, InterruptedError):
                    continue
                except OSError:
                    data = b""
                if not data:
                    ep.unregister(fd)
                    del conns[fd]
                    sock.close()
                    continue
                if not frame_size:
                    head.extend(data)
                    if len(head) >= HEADER.size:
                        _m, _v, tlen, plen = HEADER.unpack_from(head)
                        frame_size = HEADER.size + tlen + plen + 4
                        received += len(head) // frame_size
                        head.clear()
                else:
                    received += len(data) // frame_size


class _LegacyBlockingSender:
    """Faithful replica of the pre-async ``TcpClient.send`` hot path:
    one cached blocking socket per peer; every message pays the
    readable-at-idle staleness probe (``select`` + maybe ``recv``), a
    ``settimeout``, and a ``sendall`` — and the caller is blocked for
    all of it. No TCP_NODELAY (the old stack never set it)."""

    def __init__(self) -> None:
        self._conns: dict[tuple[str, int], socket.socket] = {}

    def send_bytes(self, host: str, port: int, data: bytes,
                   timeout: float = 5.0) -> None:
        key = (host, port)
        sock = self._conns.get(key)
        if sock is not None:
            try:
                ready, _, _ = select.select([sock], [], [], 0)
                if ready and not sock.recv(4096):
                    raise OSError("peer closed")
                sock.settimeout(timeout)
                sock.sendall(data)
                return
            except OSError:
                self._conns.pop(key, None)
                try:
                    sock.close()
                except OSError:
                    pass
        sock = socket.create_connection((host, port), timeout=timeout)
        self._conns[key] = sock
        sock.settimeout(timeout)
        sock.sendall(data)

    def close(self) -> None:
        for sock in self._conns.values():
            try:
                sock.close()
            except OSError:
                pass
        self._conns.clear()


def spawn_sink(max_fds: int = 16384) -> tuple[int, int, socket.socket]:
    """Fork the counting sink; returns ``(pid, port, control_socket)``."""
    _raise_nofile(max_fds)
    rd, wr = os.pipe()
    ctl_parent, ctl_child = socket.socketpair()
    pid = os.fork()
    if pid == 0:  # child
        os.close(rd)
        ctl_parent.close()
        try:
            _serve_sink(wr, ctl_child)
        finally:
            os._exit(0)
    os.close(wr)
    ctl_child.close()
    data = b""
    while len(data) < 4:
        chunk = os.read(rd, 4 - len(data))
        if not chunk:
            raise RuntimeError("sink child died before reporting port")
        data += chunk
    os.close(rd)
    return pid, struct.unpack("!I", data)[0], ctl_parent


def _sink_count(ctl: socket.socket) -> int:
    ctl.send(b"?")
    data = b""
    while len(data) < 8:
        chunk = ctl.recv(8 - len(data))
        if not chunk:
            raise RuntimeError("sink closed its control socket")
        data += chunk
    return struct.unpack("!Q", data)[0]


def run_fanout(
    mode: str,
    peers: int = 1000,
    duration: float = 4.0,
    payload: int = 32,
    warmup: float = 0.5,
    window: int = 8192,
    burst: int = 8,
) -> dict:
    """Sustained one-to-many send throughput: one sender, ``peers``
    connections, frames counted at the receiving sink. Each sweep ships
    a ``burst`` of frames to every peer — the live shipper shape (a node
    queues a batch of reports per driver turn). ``window`` caps the
    async sender's total queued-but-unflushed frames (the blocking
    sender needs no cap: it is its own throttle)."""
    if mode not in FANOUT_MODES:
        raise ValueError(f"unknown mode {mode!r} (want one of {FANOUT_MODES})")
    _raise_nofile(peers * 2 + 64)
    frame = Message(mtype="PING", sender="storm",
                    body={"pad": "x" * max(payload - 16, 0)}).encode()
    pid, port, ctl = spawn_sink()
    sent = 0
    try:
        time.sleep(0.05)
        addrs = _peer_addrs(peers)
        t_end = time.monotonic() + warmup + duration
        if mode == "blocking-send":
            legacy = _LegacyBlockingSender()
            try:
                # Warm the connection cache outside the measured window,
                # as the long-lived live plane would have it.
                for addr in addrs:
                    legacy.send_bytes(addr, port, frame)
                    sent += 1
                t0 = time.monotonic()
                c0 = _sink_count(ctl)
                while time.monotonic() < t_end:
                    for addr in addrs:
                        for _ in range(burst):
                            legacy.send_bytes(addr, port, frame)
                    sent += peers * burst
            finally:
                legacy.close()
        else:
            loop = EventLoop()
            sender = AsyncSender(loop, sender="storm")
            try:
                for addr in addrs:
                    sender.post_bytes(addr, port, frame, timeout=30.0)
                    sent += 1
                while sender.pending():
                    loop.step(0.05)
                t0 = time.monotonic()
                c0 = _sink_count(ctl)
                while time.monotonic() < t_end:
                    if sender.pending() < window:
                        for addr in addrs:
                            for _ in range(burst):
                                sender.post_bytes(addr, port, frame,
                                                  timeout=30.0)
                        sent += peers * burst
                    sender.service()  # batched flush: one sendmsg/peer
                    loop.step(0)
                # Drain what is queued so "sent" is honest before the
                # closing count.
                deadline = time.monotonic() + 2.0
                while sender.pending() and time.monotonic() < deadline:
                    loop.step(0.02)
            finally:
                errors = sender.errors
                sender.close()
                loop.close()
                if errors:
                    raise RuntimeError(f"async fan-out had {errors} errors")
        t1 = time.monotonic()
        c1 = _sink_count(ctl)
    finally:
        try:
            ctl.close()
        except OSError:
            pass
        stop_echo_server(pid)
    elapsed = t1 - t0
    received = c1 - c0
    return {
        "bench": "fanout",
        "mode": mode,
        "connections": peers,
        "msgs": received,
        "msgs_per_s": received / elapsed if elapsed > 0 else 0.0,
        "sent": sent,
    }


def run_netbench(
    connection_counts=(64, 256, 1000),
    duration: float = 4.0,
    pipeline: int = 4,
    payload: int = 32,
    warmup: float = 0.5,
    modes=MODES,
    levels=("frame",),
    burst: int = 32,
    fanout: bool = True,
) -> dict:
    """The full before/after grid: echo rows (throughput + latency, both
    server substrates) and fan-out rows (outbound path, blocking cached
    sender vs batched async sender). ``speedup_vs_blocking`` on each
    *after* row compares it against the *before* row of the same family
    at the same connection count."""
    rows = []
    for level in levels:
        for mode in modes:
            for connections in connection_counts:
                row = bench_mode(mode, connections, duration=duration,
                                 pipeline=pipeline, payload=payload,
                                 warmup=warmup, level=level)
                row["bench"] = "echo"
                rows.append(row)
    if fanout:
        for mode in FANOUT_MODES:
            for connections in connection_counts:
                rows.append(run_fanout(mode, peers=connections,
                                       duration=duration, payload=payload,
                                       warmup=warmup, burst=burst,
                                       window=burst * 2000))
    before = {}
    for r in rows:
        if r["mode"] in ("blocking-threads", "blocking-send"):
            before[(r["bench"], r.get("level"), r["connections"])] = (
                r["msgs_per_s"])
    for row in rows:
        if row["mode"] not in ("async-reactor", "async-send"):
            continue
        base = before.get((row["bench"], row.get("level"),
                           row["connections"]))
        if base is not None:
            row["speedup_vs_blocking"] = (
                row["msgs_per_s"] / base if base else 0.0)
    return {
        "schema": "repro-net/1",
        "host_cpus": os.cpu_count(),
        "config": {
            "duration": duration, "pipeline": pipeline,
            "payload": payload, "warmup": warmup,
            "connection_counts": list(connection_counts),
            "levels": list(levels), "burst": burst,
        },
        "rows": rows,
    }
