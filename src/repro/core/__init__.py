"""EveryWare toolkit: lingua franca, forecasting, gossip, services."""

from .component import (
    CancelTimer,
    Component,
    Effect,
    LogLine,
    NullRuntime,
    Send,
    SetTimer,
    Stop,
)
from .policy import RetryPolicy, TimeoutPolicy

__all__ = [
    "CancelTimer",
    "Component",
    "Effect",
    "LogLine",
    "NullRuntime",
    "RetryPolicy",
    "Send",
    "SetTimer",
    "Stop",
    "TimeoutPolicy",
]
