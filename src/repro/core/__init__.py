"""EveryWare toolkit: lingua franca, forecasting, gossip, services."""

from .component import (
    CancelTimer,
    Component,
    LogLine,
    NullRuntime,
    Send,
    SetTimer,
    Stop,
)

__all__ = [
    "CancelTimer",
    "Component",
    "LogLine",
    "NullRuntime",
    "Send",
    "SetTimer",
    "Stop",
]
