"""Sans-IO component model for EveryWare servers and clients.

Every EveryWare process — Gossip, scheduler, persistent state manager,
logging server, computational client — is written as a :class:`Component`:
a pure state machine that receives messages and timer expirations and
returns a list of *effects* (sends, timer updates, log lines). All I/O and
clock access lives in a *driver*:

* :class:`repro.core.simdriver.SimDriver` runs a component on a simulated
  host over the simulated network (the SC98-scale experiments), and
* a thin loop over :class:`repro.core.linguafranca.tcp.TcpServer` can run
  the same component on real sockets.

Keeping the protocol logic free of I/O is what makes the paper's
"embarrassingly portable" property concrete here: the same component code
runs under any transport.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional, Protocol, Union

from .linguafranca.messages import Message
from .telemetry import Telemetry

if TYPE_CHECKING:  # pragma: no cover - cycle guard (policy imports forecasting,
    # whose sensors are themselves components)
    from .policy import RetryPolicy, TimeoutPolicy

__all__ = [
    "Component",
    "Runtime",
    "Effect",
    "Send",
    "SetTimer",
    "CancelTimer",
    "LogLine",
    "Stop",
    "NullRuntime",
]


@dataclass
class Send:
    """Transmit ``message`` to the component at address ``dst``.

    All effect constructors accept positional or keyword arguments;
    the reliability knobs below are keyword-only.

    When ``retry`` is given the send becomes *reliable*: the driver
    assigns a ``req_id``, waits for a correlated reply for the time-out
    resolved by ``timeout`` (a :class:`TimeoutPolicy`, a plain number of
    seconds, or ``None`` for the driver's own policy), retransmits with
    the policy's backoff, and on give-up invokes
    :meth:`Component.on_send_failed` with this effect. ``label`` lets
    the component tell its outstanding requests apart in that hook.
    """

    dst: str
    message: Message
    retry: Optional[RetryPolicy] = field(default=None, kw_only=True)
    timeout: Optional[Union[TimeoutPolicy, float]] = field(default=None, kw_only=True)
    label: Optional[str] = field(default=None, kw_only=True)


@dataclass
class SetTimer:
    """(Re)arm the named timer to fire ``delay`` seconds from now."""

    key: str
    delay: float


@dataclass
class CancelTimer:
    """Disarm the named timer if armed."""

    key: str


@dataclass
class LogLine:
    """Emit a local diagnostic line (drivers route it to the log sink)."""

    text: str
    level: str = "info"


@dataclass
class Stop:
    """Terminate the component's driver loop."""

    reason: str = ""


Effect = Union[Send, SetTimer, CancelTimer, LogLine, Stop]


class Runtime(Protocol):
    """What a driver exposes to its component.

    ``speed()`` returns the host's current deliverable ops/second (zero for
    components that do no computation or in real mode where the work engine
    measures itself).
    """

    def now(self) -> float: ...

    def contact(self) -> str: ...

    def host_name(self) -> str: ...

    def speed(self) -> float: ...

    def random(self) -> float: ...


class NullRuntime:
    """Stand-in runtime for unit-testing components in isolation."""

    def __init__(self, contact: str = "test/host", t: float = 0.0, speed: float = 0.0) -> None:
        self._contact = contact
        self.t = t
        self._speed = speed
        self._rand = 0.5

    def now(self) -> float:
        return self.t

    def contact(self) -> str:
        return self._contact

    def host_name(self) -> str:
        return self._contact.split("/")[0]

    def speed(self) -> float:
        return self._speed

    def random(self) -> float:
        return self._rand


class Component:
    """Base class for sans-IO protocol cores.

    Subclasses override the ``on_*`` hooks. The driver calls
    :meth:`bind_runtime` exactly once before :meth:`on_start`.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.runtime: Optional[Runtime] = None
        #: World-shared observability handle; the driver rebinds it before
        #: ``on_start``. The private default keeps unbound components (unit
        #: tests, NullRuntime) working — metrics land in a throwaway
        #: registry and tracing stays off.
        self.telemetry: Telemetry = Telemetry()

    # -- wiring ------------------------------------------------------------
    def bind_runtime(self, runtime: Runtime) -> None:
        self.runtime = runtime

    def bind_telemetry(self, telemetry: Telemetry) -> None:
        """Attach the world's metrics registry + tracer. Components must
        fetch metric handles lazily (or in ``on_start``), never in
        ``__init__``, so they land in the bound registry."""
        self.telemetry = telemetry

    @property
    def contact(self) -> str:
        """This component's own address, once bound."""
        if self.runtime is None:
            raise RuntimeError(f"component {self.name!r} is not bound to a runtime")
        return self.runtime.contact()

    # -- hooks ------------------------------------------------------------
    def on_start(self, now: float) -> list[Effect]:
        """Called once when the driver starts the component."""
        return []

    def on_message(self, message: Message, now: float) -> list[Effect]:
        """Called for each received message."""
        return []

    def on_timer(self, key: str, now: float) -> list[Effect]:
        """Called when the named timer expires."""
        return []

    def on_send_failed(self, send: Send, now: float) -> list[Effect]:
        """Called when a reliable :class:`Send` exhausts its
        :class:`~repro.core.policy.RetryPolicy` without a correlated
        reply. Route on ``send.label`` to decide recovery (rotate to
        another server, requeue the work, log and move on)."""
        return []

    def on_stop(self, now: float, reason: str) -> None:
        """Called when the driver loop exits (host death included)."""
