"""Distributed state exchange: Gossip pool, clique protocol, state stores."""

from .agent import GossipAgent
from .clique import CLIQUE_MTYPES, CliqueState
from .server import (
    GOS_DELCOMP,
    GOS_NEWCOMP,
    GOS_POLL,
    GOS_REG,
    GOS_REG_OK,
    GOS_STATE,
    GOS_SYNC,
    GOS_UPDATE,
    GossipServer,
    GossipStats,
)
from .state import (
    Comparator,
    ComparatorRegistry,
    StateRecord,
    StateStore,
    default_comparator,
)

__all__ = [
    "GossipAgent",
    "CLIQUE_MTYPES",
    "CliqueState",
    "GossipServer",
    "GossipStats",
    "GOS_DELCOMP",
    "GOS_NEWCOMP",
    "GOS_POLL",
    "GOS_REG",
    "GOS_REG_OK",
    "GOS_STATE",
    "GOS_SYNC",
    "GOS_UPDATE",
    "Comparator",
    "ComparatorRegistry",
    "StateRecord",
    "StateStore",
    "default_comparator",
]
