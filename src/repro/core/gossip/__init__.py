"""Distributed state exchange: Gossip pool, clique protocol, state stores."""

from .agent import GossipAgent
from .clique import CLIQUE_MTYPES, CliqueState, plan_shards
from .digest import (
    DIGEST_BUCKETS,
    StateDigest,
    bucket_of,
    freshness_hash,
    plan_exchange,
)
from .server import (
    GOS_DELCOMP,
    GOS_DELTA,
    GOS_DIGEST,
    GOS_NEWCOMP,
    GOS_POLL,
    GOS_REG,
    GOS_REG_OK,
    GOS_STATE,
    GOS_SYNC,
    GOS_UPDATE,
    GossipServer,
    GossipStats,
)
from .state import (
    Comparator,
    ComparatorRegistry,
    StateRecord,
    StateStore,
    default_comparator,
)
from .swim import ALIVE, DEAD, SUSPECT, MemberView, SuspicionTable

__all__ = [
    "GossipAgent",
    "CLIQUE_MTYPES",
    "CliqueState",
    "plan_shards",
    "DIGEST_BUCKETS",
    "StateDigest",
    "bucket_of",
    "freshness_hash",
    "plan_exchange",
    "GossipServer",
    "GossipStats",
    "GOS_DELCOMP",
    "GOS_DELTA",
    "GOS_DIGEST",
    "GOS_NEWCOMP",
    "GOS_POLL",
    "GOS_REG",
    "GOS_REG_OK",
    "GOS_STATE",
    "GOS_SYNC",
    "GOS_UPDATE",
    "Comparator",
    "ComparatorRegistry",
    "StateRecord",
    "StateStore",
    "default_comparator",
    "ALIVE",
    "SUSPECT",
    "DEAD",
    "MemberView",
    "SuspicionTable",
]
