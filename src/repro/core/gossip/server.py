"""The Gossip server: EveryWare's distributed state exchange service.

Per the paper (§2.3):

* application components **register** a contact address and the message
  types they synchronize;
* each registered component is **assigned a responsible Gossip** out of
  the pool, which periodically asks it for a fresh copy of its state;
* the Gossip **compares** the received state against the freshest known
  record (using the registered per-type comparator) and, when a
  component's copy is out of date, **sends it a fresh update**;
* Gossips cooperate as a pool whose membership is managed by the clique
  protocol, **dynamically partitioning the synchronization workload**;
* response times per ``(component, message type)`` are *dynamically
  benchmarked* and forecast to derive the time-outs used for failure
  detection — the "dynamic time-out discovery" the paper credits for
  overall stability (§2.2).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Optional

from ..component import CancelTimer, Component, Effect, LogLine, Send, SetTimer, Stop
from ..forecasting.benchmarking import EventTimer, ForecastRegistry, event_tag
from ..policy import TimeoutPolicy
from ..linguafranca.messages import Message
from .clique import CLIQUE_MTYPES, CliqueState
from .state import ComparatorRegistry, StateRecord

__all__ = [
    "GossipServer",
    "GossipStats",
    "GOS_REG",
    "GOS_REG_OK",
    "GOS_POLL",
    "GOS_STATE",
    "GOS_UPDATE",
    "GOS_SYNC",
    "GOS_NEWCOMP",
    "GOS_DELCOMP",
]

GOS_REG = "GOS_REG"
GOS_REG_OK = "GOS_REG_OK"
GOS_POLL = "GOS_POLL"
GOS_STATE = "GOS_STATE"
GOS_UPDATE = "GOS_UPDATE"
GOS_SYNC = "GOS_SYNC"
GOS_NEWCOMP = "GOS_NEWCOMP"
GOS_DELCOMP = "GOS_DELCOMP"

T_POLL = "gos:poll"
T_SYNC = "gos:sync"


@dataclass
class GossipStats:
    polls_sent: int = 0
    states_received: int = 0
    updates_sent: int = 0
    records_adopted: int = 0
    comparisons: int = 0
    evictions: int = 0
    syncs_sent: int = 0


@dataclass
class _Registration:
    contact: str
    types: set[str]
    last_seen: float = 0.0


class GossipServer(Component):
    """One member of the Gossip pool."""

    def __init__(
        self,
        name: str,
        well_known: list[str],
        comparators: Optional[ComparatorRegistry] = None,
        poll_period: float = 15.0,
        sync_period: float = 20.0,
        dead_factor: float = 6.0,
        default_timeout: float = 10.0,
        dynamic_timeouts: bool = True,
        token_period: float = 10.0,
        token_timeout: float = 35.0,
        pairwise_compare: bool = False,
    ) -> None:
        super().__init__(name)
        self.well_known = list(well_known)
        self.comparators = comparators or ComparatorRegistry()
        self.poll_period = poll_period
        self.sync_period = sync_period
        self.dead_factor = dead_factor
        self.default_timeout = default_timeout
        #: Ablation A1 switch: False = fixed time-outs, True = forecast-driven.
        self.dynamic_timeouts = dynamic_timeouts
        self._token_period = token_period
        self._token_timeout = token_timeout
        #: Ablation A4 switch: True replays the SC98 prototype's O(N^2)
        #: pairwise state comparison (§2.3: "each Gossip does a pair-wise
        #: comparison of application component state"); False (default) is
        #: the optimized freshest-record design the paper anticipated.
        self.pairwise_compare = pairwise_compare
        self.registry: dict[str, _Registration] = {}
        self.freshest: dict[str, StateRecord] = {}
        #: Last state seen per component (pairwise mode only).
        self.component_state: dict[str, dict[str, StateRecord]] = {}
        self.forecasts = ForecastRegistry()
        self.timer = EventTimer(self.forecasts)
        # Both flavors prebuilt so the ablation A1 switch (the mutable
        # ``dynamic_timeouts`` flag, flipped post-construction by
        # scenario code) just picks between them per call.
        self._static_timeout = TimeoutPolicy.static(default_timeout)
        self._dynamic_timeout = TimeoutPolicy.forecast(
            registry=self.forecasts,
            multiplier=4.0,
            default=default_timeout,
            floor=0.25,
            ceiling=4.0 * poll_period,
        )
        self.stats = GossipStats()
        self.clique: Optional[CliqueState] = None
        #: Last observed clique membership, for reconfiguration detection
        #: (``gossip.clique_reconfigs`` counts regime changes this member
        #: witnessed — elections, joins, partitions shrinking the pool).
        self._members_view: tuple[str, ...] = ()

    # -- lifecycle ------------------------------------------------------------
    def on_start(self, now: float) -> list[Effect]:
        contact = self.contact
        self.clique = CliqueState(
            self_id=contact,
            universe=sorted(set(self.well_known) | {contact}),
            token_period=self._token_period,
            token_timeout=self._token_timeout,
        )
        effects: list[Effect] = []
        if contact not in self.well_known:
            effects.extend(self.clique.join_effects(self.well_known))
        effects.extend(self.clique.start(now))
        effects.append(SetTimer(T_POLL, self.poll_period))
        effects.append(SetTimer(T_SYNC, self.sync_period))
        self._members_view = tuple(self.pool_members())
        self.telemetry.metrics.gauge(
            "gossip.clique_size", component=self.name).set(
                len(self._members_view))
        return effects

    # -- responsibility partitioning ------------------------------------------
    def pool_members(self) -> list[str]:
        assert self.clique is not None
        return sorted(self.clique.members)

    def responsible_for(self, contact: str) -> bool:
        """Consistent assignment of components across the current clique."""
        members = self.pool_members()
        if not members:
            return True
        idx = zlib.crc32(contact.encode("utf-8")) % len(members)
        return members[idx] == self.contact

    # -- message handling -------------------------------------------------------
    def on_message(self, message: Message, now: float) -> list[Effect]:
        if message.mtype in CLIQUE_MTYPES:
            assert self.clique is not None
            effects = self.clique.on_message(message, now)
            self._note_membership(now)
            return effects
        handler = {
            GOS_REG: self._on_register,
            GOS_STATE: self._on_state,
            GOS_SYNC: self._on_sync,
            GOS_NEWCOMP: self._on_newcomp,
            GOS_DELCOMP: self._on_delcomp,
        }.get(message.mtype)
        if handler is None:
            return []
        return handler(message, now)

    def _note_membership(self, now: float) -> None:
        """Record a clique regime change, if the last event caused one."""
        members = tuple(self.pool_members())
        if members == self._members_view:
            return
        before, self._members_view = self._members_view, members
        metrics = self.telemetry.metrics
        metrics.counter("gossip.clique_reconfigs", component=self.name).inc()
        metrics.gauge("gossip.clique_size", component=self.name).set(
            len(members))
        self.telemetry.event(
            "clique reconfigure", now, component=self.name,
            outcome="reconfigure", size=len(members),
            joined=sorted(set(members) - set(before)),
            left=sorted(set(before) - set(members)))

    def _on_register(self, message: Message, now: float) -> list[Effect]:
        contact = message.sender
        types = set(message.body.get("types", []))
        self.registry[contact] = _Registration(contact, types, last_seen=now)
        effects: list[Effect] = [
            Send(contact, message.reply(GOS_REG_OK, sender=self.contact,
                                        body={"gossips": self.pool_members()}))
        ]
        # Spread the registration through the pool so any member can take
        # over responsibility when the clique reconfigures.
        announce = {"contact": contact, "types": sorted(types)}
        for peer in self.pool_members():
            if peer != self.contact:
                effects.append(Send(peer, Message(
                    mtype=GOS_NEWCOMP, sender=self.contact, body=announce)))
        return effects

    def _on_newcomp(self, message: Message, now: float) -> list[Effect]:
        contact = message.body["contact"]
        types = set(message.body.get("types", []))
        existing = self.registry.get(contact)
        if existing is None:
            self.registry[contact] = _Registration(contact, types, last_seen=now)
        else:
            existing.types |= types
            existing.last_seen = max(existing.last_seen, now)
        return []

    def _on_delcomp(self, message: Message, now: float) -> list[Effect]:
        self.registry.pop(message.body["contact"], None)
        return []

    def _on_state(self, message: Message, now: float) -> list[Effect]:
        contact = message.sender
        self.stats.states_received += 1
        reg = self.registry.get(contact)
        if reg is not None:
            reg.last_seen = now
        tag = event_tag(contact, GOS_POLL)
        self.timer.end(tag, now)
        remote = self._merge_records(message.body.get("records", []))
        if self.pairwise_compare:
            # SC98-prototype behavior: compare this component's records
            # against every other component's last-seen records, pairwise.
            mine = self.component_state.setdefault(contact, {})
            for mtype, rec in remote.items():
                for other, theirs in self.component_state.items():
                    if other == contact:
                        continue
                    other_rec = theirs.get(mtype)
                    if other_rec is not None:
                        self.stats.comparisons += 1
                        self.comparators.compare(rec, other_rec)
                mine[mtype] = rec
        # Push fresh state for every *registered* type the component holds a
        # stale copy of — or no copy at all (it may never have written one).
        stale_types: list[str] = []
        types = reg.types if reg is not None else set(remote)
        for mtype in types:
            current = self.freshest.get(mtype)
            if current is None:
                continue
            rec = remote.get(mtype)
            if rec is None:
                stale_types.append(mtype)
            else:
                self.stats.comparisons += 1
                if self.comparators.compare(current, rec) > 0:
                    stale_types.append(mtype)
        if stale_types:
            self.stats.updates_sent += 1
            payload = [self.freshest[t].to_body() for t in sorted(set(stale_types))]
            return [Send(contact, Message(
                mtype=GOS_UPDATE, sender=self.contact, body={"records": payload}))]
        return []

    def _on_sync(self, message: Message, now: float) -> list[Effect]:
        self._merge_records(message.body.get("records", []))
        return []

    def _merge_records(self, bodies: list[dict]) -> dict[str, StateRecord]:
        """Adopt fresher records; returns the parsed remote records by type."""
        remote: dict[str, StateRecord] = {}
        for body in bodies:
            try:
                rec = StateRecord.from_body(body)
            except (KeyError, TypeError, ValueError):
                continue  # malformed record: robustness over strictness
            remote[rec.mtype] = rec
            current = self.freshest.get(rec.mtype)
            if current is None:
                self.freshest[rec.mtype] = rec
                self.stats.records_adopted += 1
                continue
            self.stats.comparisons += 1
            if self.comparators.compare(rec, current) > 0:
                self.freshest[rec.mtype] = rec
                self.stats.records_adopted += 1
        return remote

    # -- timers ------------------------------------------------------------
    def on_timer(self, key: str, now: float) -> list[Effect]:
        if key.startswith("clq:"):
            assert self.clique is not None
            effects = self.clique.on_timer(key, now)
            self._note_membership(now)
            return effects
        if key == T_POLL:
            return self._poll_round(now) + [SetTimer(T_POLL, self.poll_period)]
        if key == T_SYNC:
            return self._sync_round(now) + [SetTimer(T_SYNC, self.sync_period)]
        return []

    def timeout_policy(self) -> TimeoutPolicy:
        """The reply time-out policy currently in force (A1 switch)."""
        return self._dynamic_timeout if self.dynamic_timeouts else self._static_timeout

    def _component_timeout(self, contact: str) -> float:
        return self.timeout_policy().timeout_for(event_tag(contact, GOS_POLL))

    def _poll_round(self, now: float) -> list[Effect]:
        effects: list[Effect] = []
        for contact in sorted(self.registry):
            if not self.responsible_for(contact):
                continue
            reg = self.registry[contact]
            # The state-message gap is one poll cycle plus the response
            # time, so the death deadline must budget for both — otherwise
            # a single lost poll on a quiet network looks like a death.
            deadline = self.dead_factor * (
                self.poll_period + self._component_timeout(contact))
            if reg.last_seen and now - reg.last_seen > deadline:
                # Presumed dead: evict and tell the pool.
                del self.registry[contact]
                self.forecasts.drop(event_tag(contact, GOS_POLL))
                self.stats.evictions += 1
                self.telemetry.metrics.counter(
                    "gossip.evictions", component=self.name).inc()
                effects.append(LogLine(f"evicting silent component {contact}"))
                for peer in self.pool_members():
                    if peer != self.contact:
                        effects.append(Send(peer, Message(
                            mtype=GOS_DELCOMP, sender=self.contact,
                            body={"contact": contact})))
                continue
            tag = event_tag(contact, GOS_POLL)
            self.timer.abandon(tag)  # a lost previous poll must not skew stats
            self.timer.begin(tag, now)
            self.stats.polls_sent += 1
            effects.append(Send(contact, Message(
                mtype=GOS_POLL, sender=self.contact, body={})))
        return effects

    def _sync_round(self, now: float) -> list[Effect]:
        if not self.freshest:
            return []
        peers = [p for p in self.pool_members() if p != self.contact]
        if not peers:
            return []
        assert self.runtime is not None
        peer = peers[int(self.runtime.random() * len(peers)) % len(peers)]
        self.stats.syncs_sent += 1
        records = [self.freshest[t].to_body() for t in sorted(self.freshest)]
        return [Send(peer, Message(
            mtype=GOS_SYNC, sender=self.contact, body={"records": records}))]
