"""The Gossip server: EveryWare's distributed state exchange service.

Per the paper (§2.3):

* application components **register** a contact address and the message
  types they synchronize;
* each registered component is **assigned a responsible Gossip** out of
  the pool, which periodically asks it for a fresh copy of its state;
* the Gossip **compares** the received state against the freshest known
  record (using the registered per-type comparator) and, when a
  component's copy is out of date, **sends it a fresh update**;
* Gossips cooperate as a pool whose membership is managed by the clique
  protocol, **dynamically partitioning the synchronization workload**;
* response times per ``(component, message type)`` are *dynamically
  benchmarked* and forecast to derive the time-outs used for failure
  detection — the "dynamic time-out discovery" the paper credits for
  overall stability (§2.2).

The paper flags its own weakest hot path: the SC98 prototype's
state-exchange protocol "can be substantially optimized" (§2.3). The
pool-side synchronization here is that optimization, a three-phase
**digest/delta anti-entropy** exchange (DESIGN §15):

1. each sync round a member sends a compact ``GOS_DIGEST`` — root hash,
   hot *rumor* records (recent adoptions, retransmitted for O(log pool)
   rounds), and piggybacked tombstones/suspicion claims — to a bounded
   fan-out of peers drawn from its clique *shard* (plus a slower-cadence
   inter-shard representative round);
2. a diverged receiver answers ``GOS_DELTA`` with its bucket hashes; the
   pair localizes disagreement to a few buckets, exchanges per-record
   digest entries for those buckets only, and the receiver nacks the
   records it wants while shipping the ones it has fresher;
3. the originator ships the requested records (``GOS_SYNC``).

Converged peers therefore exchange two tiny messages per round — bytes
are O(divergence), not O(registered state) — and evictions ride digests
as TTL'd tombstones instead of an O(pool) ``GOS_DELCOMP`` broadcast.
Failure detection is SWIM-style (:mod:`.swim`): missed digest-acks make a
peer *suspect* (never instantly dead), suspicion piggybacks on digests,
refutations with bumped incarnations clear it, and only an expired
suspicion evicts.
"""

from __future__ import annotations

import json
import math
import zlib
from dataclasses import dataclass, field
from typing import Optional

from ..component import CancelTimer, Component, Effect, LogLine, Send, SetTimer, Stop
from ..forecasting.benchmarking import EventTimer, ForecastRegistry, event_tag
from ..policy import TimeoutPolicy
from ..linguafranca.messages import Message
from .clique import CLIQUE_MTYPES, CliqueState
from .digest import StateDigest, plan_exchange
from .state import ComparatorRegistry, StateRecord
from .swim import ALIVE, DEAD, SUSPECT, SuspicionTable

__all__ = [
    "GossipServer",
    "GossipStats",
    "GOS_REG",
    "GOS_REG_OK",
    "GOS_POLL",
    "GOS_STATE",
    "GOS_UPDATE",
    "GOS_SYNC",
    "GOS_DIGEST",
    "GOS_DELTA",
    "GOS_NEWCOMP",
    "GOS_DELCOMP",
]

GOS_REG = "GOS_REG"
GOS_REG_OK = "GOS_REG_OK"
GOS_POLL = "GOS_POLL"
GOS_STATE = "GOS_STATE"
GOS_UPDATE = "GOS_UPDATE"
GOS_SYNC = "GOS_SYNC"
GOS_DIGEST = "GOS_DIGEST"
GOS_DELTA = "GOS_DELTA"
GOS_NEWCOMP = "GOS_NEWCOMP"
GOS_DELCOMP = "GOS_DELCOMP"

T_POLL = "gos:poll"
T_SYNC = "gos:sync"


@dataclass
class GossipStats:
    polls_sent: int = 0
    states_received: int = 0
    updates_sent: int = 0
    records_adopted: int = 0
    comparisons: int = 0
    evictions: int = 0
    syncs_sent: int = 0
    # -- digest/delta anti-entropy (DESIGN §15) -----------------------------
    digest_rounds: int = 0
    digests_sent: int = 0
    digest_acks: int = 0
    deltas_sent: int = 0
    delta_records: int = 0
    #: Comparator invocations spent on the sync plane (full-state syncs
    #: pay one per record per merge; digest rounds pay O(divergence)).
    sync_comparisons: int = 0
    #: Actual sync-plane bytes put on the wire by this member.
    bytes_sent: int = 0
    #: What the same sends would have cost had each carried the full
    #: freshest state (the SC98 path) — ``bytes_saved`` is the difference.
    bytes_full_equiv: int = 0
    tombstones_created: int = 0
    tombstones_applied: int = 0
    suspicions: int = 0
    refutations: int = 0
    deaths: int = 0

    @property
    def bytes_saved(self) -> int:
        return max(self.bytes_full_equiv - self.bytes_sent, 0)


@dataclass
class _Registration:
    contact: str
    types: set[str]
    last_seen: float = 0.0


def _body_size(body: dict) -> int:
    """Serialized size of a record body (byte accounting)."""
    return len(json.dumps(body, separators=(",", ":")))


class GossipServer(Component):
    """One member of the Gossip pool."""

    def __init__(
        self,
        name: str,
        well_known: list[str],
        comparators: Optional[ComparatorRegistry] = None,
        poll_period: float = 15.0,
        sync_period: float = 20.0,
        dead_factor: float = 6.0,
        default_timeout: float = 10.0,
        dynamic_timeouts: bool = True,
        token_period: float = 10.0,
        token_timeout: float = 35.0,
        pairwise_compare: bool = False,
        sync_mode: str = "digest",
        fanout: int = 2,
        shard_size: int = 32,
        intershard_period: int = 2,
        rumor_rounds: Optional[int] = None,
        suspicion_factor: float = 2.0,
        tombstone_ttl: Optional[float] = None,
    ) -> None:
        super().__init__(name)
        self.well_known = list(well_known)
        self.comparators = comparators or ComparatorRegistry()
        self.poll_period = poll_period
        self.sync_period = sync_period
        self.dead_factor = dead_factor
        self.default_timeout = default_timeout
        #: Ablation A1 switch: False = fixed time-outs, True = forecast-driven.
        self.dynamic_timeouts = dynamic_timeouts
        self._token_period = token_period
        self._token_timeout = token_timeout
        #: Ablation A4 switch: True replays the SC98 prototype's O(N^2)
        #: pairwise state comparison (§2.3: "each Gossip does a pair-wise
        #: comparison of application component state"); False (default) is
        #: the optimized freshest-record design the paper anticipated.
        self.pairwise_compare = pairwise_compare
        #: Pool sync flavor: "digest" = three-phase anti-entropy (DESIGN
        #: §15, the default); "full" = the pre-digest design that shipped
        #: every freshest record to one random peer per round (kept for
        #: the ablation curve).
        if sync_mode not in ("digest", "full"):
            raise ValueError(f"unknown sync_mode {sync_mode!r}")
        self.sync_mode = sync_mode
        self.fanout = max(int(fanout), 1)
        self.shard_size = max(int(shard_size), 2)
        self.intershard_period = max(int(intershard_period), 1)
        #: Rounds a freshly-adopted record stays hot (rumor-mongered on
        #: every digest). None = ceil(log2(pool)) + 4, derived per round.
        self.rumor_rounds = rumor_rounds
        self.suspicion_factor = suspicion_factor
        self._tombstone_ttl = tombstone_ttl
        self.registry: dict[str, _Registration] = {}
        self.freshest: dict[str, StateRecord] = {}
        #: Incremental digest over ``freshest`` (kept current by ``_adopt``).
        self.digest = StateDigest()
        #: Last state seen per component (pairwise mode only).
        self.component_state: dict[str, dict[str, StateRecord]] = {}
        self.forecasts = ForecastRegistry()
        self.timer = EventTimer(self.forecasts)
        # Both flavors prebuilt so the ablation A1 switch (the mutable
        # ``dynamic_timeouts`` flag, flipped post-construction by
        # scenario code) just picks between them per call.
        self._static_timeout = TimeoutPolicy.static(default_timeout)
        self._dynamic_timeout = TimeoutPolicy.forecast(
            registry=self.forecasts,
            multiplier=4.0,
            default=default_timeout,
            floor=0.25,
            ceiling=4.0 * poll_period,
        )
        #: Digest-ack dead-man policy: same forecast machinery, ceilinged
        #: by the sync cadence instead of the poll cadence.
        self._digest_timeout = TimeoutPolicy.forecast(
            registry=self.forecasts,
            multiplier=4.0,
            default=default_timeout,
            floor=0.25,
            ceiling=4.0 * sync_period,
        )
        self.stats = GossipStats()
        self.clique: Optional[CliqueState] = None
        #: SWIM-style liveness table covering pool members *and*
        #: registered components (contacts are unique across both).
        self.suspicion: Optional[SuspicionTable] = None
        #: Active tombstones: contact -> eviction stamp. Piggybacked on
        #: digests, GC'd after the TTL.
        self.tombstones: dict[str, float] = {}
        #: Registration announcements awaiting piggyback: contact -> budget.
        self._reg_queue: dict[str, int] = {}
        #: Hot records (rumors): tag -> remaining rounds.
        self._rumors: dict[str, int] = {}
        #: Digest sends awaiting their ack: peer -> send time.
        self._pending_acks: dict[str, float] = {}
        #: Our own pending SWIM refutation, piggybacked on the next round.
        self._refutation: Optional[list] = None
        self._round = 0
        self._bytes_counter = None
        self._saved_counter = None
        self._rounds_counter = None
        self._delta_counter = None
        #: Last observed clique membership, for reconfiguration detection
        #: (``gossip.clique_reconfigs`` counts regime changes this member
        #: witnessed — elections, joins, partitions shrinking the pool).
        self._members_view: tuple[str, ...] = ()

    # -- lifecycle ------------------------------------------------------------
    def on_start(self, now: float) -> list[Effect]:
        contact = self.contact
        self.clique = CliqueState(
            self_id=contact,
            universe=sorted(set(self.well_known) | {contact}),
            token_period=self._token_period,
            token_timeout=self._token_timeout,
        )
        self.suspicion = SuspicionTable(
            contact,
            suspicion_timeout=self._suspicion_window,
            on_transition=self._on_liveness_transition,
        )
        effects: list[Effect] = []
        if contact not in self.well_known:
            effects.extend(self.clique.join_effects(self.well_known))
        effects.extend(self.clique.start(now))
        effects.append(SetTimer(T_POLL, self.poll_period))
        effects.append(SetTimer(T_SYNC, self.sync_period))
        self._members_view = tuple(self.pool_members())
        self.telemetry.metrics.gauge(
            "gossip.clique_size", component=self.name).set(
                len(self._members_view))
        return effects

    def _suspicion_window(self) -> float:
        """How long a suspect lives before it is declared dead. The
        *entry* into suspicion is forecast-timed (missed digest-ack /
        poll deadline); the expiry window is a deterministic multiple of
        the detection cadence."""
        return self.suspicion_factor * (self.poll_period + self.default_timeout)

    def _on_liveness_transition(self, member: str, old: str, new: str) -> None:
        scope = "component" if member in self.registry else "member"
        if new == SUSPECT:
            self.stats.suspicions += 1
        elif new == ALIVE and old != ALIVE:
            self.stats.refutations += 1
        elif new == DEAD:
            self.stats.deaths += 1
        self.telemetry.metrics.counter(
            "gossip.suspicion", component=self.name, to=new, scope=scope).inc()

    # -- responsibility partitioning ------------------------------------------
    def pool_members(self) -> list[str]:
        assert self.clique is not None
        return sorted(self.clique.members)

    def alive_members(self) -> list[str]:
        """Pool members not currently declared dead by the failure
        detector (suspects stay in: suspicion is a hint, not a verdict)."""
        susp = self.suspicion
        return [m for m in self.pool_members()
                if m == (self.clique.self_id if self.clique else None)
                or susp is None or susp.is_usable(m)]

    def responsible_for(self, contact: str) -> bool:
        """Consistent assignment of components across the current clique."""
        members = self.alive_members()
        if not members:
            return True
        idx = zlib.crc32(contact.encode("utf-8")) % len(members)
        return members[idx] == self.contact

    # -- message handling -------------------------------------------------------
    def on_message(self, message: Message, now: float) -> list[Effect]:
        if message.mtype in CLIQUE_MTYPES:
            assert self.clique is not None
            effects = self.clique.on_message(message, now)
            self._note_membership(now)
            return effects
        handler = {
            GOS_REG: self._on_register,
            GOS_STATE: self._on_state,
            GOS_SYNC: self._on_sync,
            GOS_DIGEST: self._on_digest,
            GOS_DELTA: self._on_delta,
            GOS_NEWCOMP: self._on_newcomp,
            GOS_DELCOMP: self._on_delcomp,
        }.get(message.mtype)
        if handler is None:
            return []
        return handler(message, now)

    def _note_membership(self, now: float) -> None:
        """Record a clique regime change, if the last event caused one."""
        members = tuple(self.pool_members())
        if members == self._members_view:
            return
        before, self._members_view = self._members_view, members
        current = set(members)
        for peer in list(self._pending_acks):
            if peer not in current:
                self._pending_acks.pop(peer, None)
        metrics = self.telemetry.metrics
        metrics.counter("gossip.clique_reconfigs", component=self.name).inc()
        metrics.gauge("gossip.clique_size", component=self.name).set(
            len(members))
        self.telemetry.event(
            "clique reconfigure", now, component=self.name,
            outcome="reconfigure", size=len(members),
            joined=sorted(set(members) - set(before)),
            left=sorted(set(before) - set(members)))

    def _piggyback_budget(self) -> int:
        """Retransmission budget for piggybacked claims/tombstones/
        registrations: O(log pool) rounds spreads a claim epidemic-wide."""
        pool = max(len(self._members_view), 2)
        return int(math.ceil(math.log2(pool))) + 3

    def _rumor_budget(self) -> int:
        if self.rumor_rounds is not None:
            return max(int(self.rumor_rounds), 1)
        pool = max(len(self._members_view), 2)
        return int(math.ceil(math.log2(pool))) + 4

    # -- registration ---------------------------------------------------------
    def _on_register(self, message: Message, now: float) -> list[Effect]:
        contact = message.sender
        types = set(message.body.get("types", []))
        self.registry[contact] = _Registration(contact, types, last_seen=now)
        self.tombstones.pop(contact, None)
        if self.suspicion is not None:
            self.suspicion.confirm_alive(contact, now,
                                         budget=self._piggyback_budget())
        effects: list[Effect] = [
            Send(contact, message.reply(GOS_REG_OK, sender=self.contact,
                                        body={"gossips": self.alive_members()}))
        ]
        # Tell this member's shard directly; the rest of the pool learns
        # through the registration piggyback on digest rounds (O(shard)
        # sends instead of O(pool), with epidemic coverage behind it).
        announce = {"contact": contact, "types": sorted(types), "ts": now}
        for peer in self._shard_peers():
            effects.append(Send(peer, Message(
                mtype=GOS_NEWCOMP, sender=self.contact, body=announce)))
        self._reg_queue[contact] = self._piggyback_budget()
        return effects

    def _shard_peers(self) -> list[str]:
        """Usable members of this node's sync shard, excluding self."""
        assert self.clique is not None
        susp = self.suspicion
        me = self.clique.self_id
        return [p for p in self.clique.my_shard(self.shard_size)
                if p != me and (susp is None or susp.is_usable(p))]

    def _on_newcomp(self, message: Message, now: float) -> list[Effect]:
        contact = message.body["contact"]
        types = set(message.body.get("types", []))
        stamp = float(message.body.get("ts", now))
        self._note_registration(contact, types, stamp)
        return []

    def _note_registration(self, contact: str, types: set[str],
                           stamp: float) -> None:
        tomb = self.tombstones.get(contact)
        if tomb is not None:
            if stamp <= tomb:
                return  # the eviction post-dates this registration
            self.tombstones.pop(contact, None)
        existing = self.registry.get(contact)
        if existing is None:
            self.registry[contact] = _Registration(contact, types,
                                                   last_seen=stamp)
        else:
            existing.types |= types
            existing.last_seen = max(existing.last_seen, stamp)

    def _on_delcomp(self, message: Message, now: float) -> list[Effect]:
        # Legacy eviction broadcast (pre-§15 wire compat): treat as a
        # tombstone from the sender's clock.
        self._apply_tombstone(message.body.get("contact"),
                              float(message.body.get("ts", now)), now)
        return []

    # -- state plane (polls / component pushes) --------------------------------
    def _on_state(self, message: Message, now: float) -> list[Effect]:
        contact = message.sender
        self.stats.states_received += 1
        reg = self.registry.get(contact)
        if reg is not None:
            reg.last_seen = now
        if self.suspicion is not None:
            # First-hand contact refutes any suspicion: a suspected-then-
            # refuted component must never proceed to eviction.
            self.suspicion.confirm_alive(contact, now,
                                         budget=self._piggyback_budget())
        tag = event_tag(contact, GOS_POLL)
        self.timer.end(tag, now)
        remote = self._merge_records(message.body.get("records", []))
        if self.pairwise_compare:
            # SC98-prototype behavior: compare this component's records
            # against every other component's last-seen records, pairwise.
            mine = self.component_state.setdefault(contact, {})
            for mtype, rec in remote.items():
                for other, theirs in self.component_state.items():
                    if other == contact:
                        continue
                    other_rec = theirs.get(mtype)
                    if other_rec is not None:
                        self.stats.comparisons += 1
                        self.comparators.compare(rec, other_rec)
                mine[mtype] = rec
        # Push fresh state for every *registered* type the component holds a
        # stale copy of — or no copy at all (it may never have written one).
        stale_types: list[str] = []
        types = reg.types if reg is not None else set(remote)
        for mtype in types:
            current = self.freshest.get(mtype)
            if current is None:
                continue
            rec = remote.get(mtype)
            if rec is None:
                stale_types.append(mtype)
            else:
                self.stats.comparisons += 1
                if self.comparators.compare(current, rec) > 0:
                    stale_types.append(mtype)
        if stale_types:
            self.stats.updates_sent += 1
            payload = [self.freshest[t].to_body() for t in sorted(set(stale_types))]
            return [Send(contact, Message(
                mtype=GOS_UPDATE, sender=self.contact, body={"records": payload}))]
        return []

    def _on_sync(self, message: Message, now: float) -> list[Effect]:
        self._merge_records(message.body.get("records", []), sync_plane=True)
        self._note_peer_alive(message.sender, now)
        return []

    def _merge_records(self, bodies: list[dict],
                       sync_plane: bool = False) -> dict[str, StateRecord]:
        """Adopt fresher records; returns the parsed remote records by type."""
        remote: dict[str, StateRecord] = {}
        for body in bodies:
            try:
                rec = StateRecord.from_body(body)
            except (KeyError, TypeError, ValueError):
                continue  # malformed record: robustness over strictness
            remote[rec.mtype] = rec
            current = self.freshest.get(rec.mtype)
            if current is None:
                self._adopt(rec, body)
                continue
            if sync_plane:
                self.stats.sync_comparisons += 1
            else:
                self.stats.comparisons += 1
            if self.comparators.compare(rec, current) > 0:
                self._adopt(rec, body)
        return remote

    def _adopt(self, rec: StateRecord, body: Optional[dict] = None) -> None:
        """Single funnel for freshest-map writes: keeps the incremental
        digest current and queues the record for rumor-mongering."""
        self.freshest[rec.mtype] = rec
        self.stats.records_adopted += 1
        self.digest.adopt(
            rec, _body_size(body if body is not None else rec.to_body()))
        self._rumors[rec.mtype] = self._rumor_budget()

    def seed_records(self, records: list[StateRecord],
                     hot: bool = False) -> None:
        """World-builder hook: install records directly (pre-converged
        pools for scale experiments). ``hot=False`` skips the rumor queue
        so seeding N nodes with identical state does not trigger an
        O(N^2) gossip storm at t=0."""
        for rec in records:
            self.freshest[rec.mtype] = rec
            self.digest.adopt(rec, _body_size(rec.to_body()))
            if hot:
                self._rumors[rec.mtype] = self._rumor_budget()

    # -- timers ------------------------------------------------------------
    def on_timer(self, key: str, now: float) -> list[Effect]:
        if key.startswith("clq:"):
            assert self.clique is not None
            effects = self.clique.on_timer(key, now)
            self._note_membership(now)
            return effects
        if key == T_POLL:
            return self._poll_round(now) + [SetTimer(T_POLL, self.poll_period)]
        if key == T_SYNC:
            round_fn = (self._sync_round if self.sync_mode == "digest"
                        else self._sync_round_full)
            return round_fn(now) + [SetTimer(T_SYNC, self.sync_period)]
        return []

    def timeout_policy(self) -> TimeoutPolicy:
        """The reply time-out policy currently in force (A1 switch)."""
        return self._dynamic_timeout if self.dynamic_timeouts else self._static_timeout

    def _component_timeout(self, contact: str) -> float:
        return self.timeout_policy().timeout_for(event_tag(contact, GOS_POLL))

    def _ack_timeout(self, peer: str) -> float:
        if not self.dynamic_timeouts:
            return self.default_timeout
        return self._digest_timeout.timeout_for(event_tag(peer, GOS_DIGEST))

    # -- poll plane -----------------------------------------------------------
    def _poll_round(self, now: float) -> list[Effect]:
        effects: list[Effect] = []
        assert self.suspicion is not None
        budget = self._piggyback_budget()
        self.suspicion.tick(now)
        for contact in sorted(self.registry):
            if not self.responsible_for(contact):
                continue
            if self.suspicion.state_of(contact) == DEAD:
                # Suspicion expired (or a relayed death claim confirmed):
                # the responsible member performs the one pool-wide
                # eviction; everyone else learns via the tombstone.
                effects.extend(self._evict(contact, now))
                continue
            reg = self.registry[contact]
            # The state-message gap is one poll cycle plus the response
            # time, so the death deadline must budget for both — otherwise
            # a single lost poll on a quiet network looks like a death.
            deadline = self.dead_factor * (
                self.poll_period + self._component_timeout(contact))
            if reg.last_seen and now - reg.last_seen > deadline:
                # Missed the deadline: *suspect* — never evict outright.
                # The suspicion piggybacks on digests; contact from the
                # component refutes it, expiry (tick below) evicts it.
                # Keep polling meanwhile: a slow-but-live component's next
                # GOS_STATE is the first-hand refutation.
                self.suspicion.suspect(contact, now, budget=budget)
            tag = event_tag(contact, GOS_POLL)
            self.timer.abandon(tag)  # a lost previous poll must not skew stats
            self.timer.begin(tag, now)
            self.stats.polls_sent += 1
            effects.append(Send(contact, Message(
                mtype=GOS_POLL, sender=self.contact, body={})))
        return effects

    def _evict(self, contact: str, now: float) -> list[Effect]:
        del self.registry[contact]
        self.forecasts.drop(event_tag(contact, GOS_POLL))
        self.tombstones[contact] = now
        self.stats.evictions += 1
        self.stats.tombstones_created += 1
        metrics = self.telemetry.metrics
        metrics.counter("gossip.evictions", component=self.name).inc()
        metrics.counter("gossip.tombstones", component=self.name,
                        event="created").inc()
        return [LogLine(f"evicting silent component {contact}")]

    # -- sync plane: digest/delta anti-entropy (DESIGN §15) --------------------
    def _tombstone_ttl_value(self) -> float:
        if self._tombstone_ttl is not None:
            return self._tombstone_ttl
        return 30.0 * self.sync_period

    def _gc_tombstones(self, now: float) -> None:
        ttl = self._tombstone_ttl_value()
        for contact in [c for c, t in self.tombstones.items()
                        if now - t > ttl]:
            del self.tombstones[contact]
            if self.suspicion is not None:
                self.suspicion.forget(contact)

    def _pick_targets(self) -> list[str]:
        """Bounded fan-out: ``fanout`` peers from this member's shard,
        plus (on the slower inter-shard cadence, representatives only)
        one peer from a rotating foreign shard."""
        assert self.clique is not None and self.runtime is not None
        targets: list[str] = []
        shard_peers = self._shard_peers()
        pool = list(shard_peers)
        for _ in range(min(self.fanout, len(pool))):
            idx = int(self.runtime.random() * len(pool)) % len(pool)
            targets.append(pool.pop(idx))
        if (self._round % self.intershard_period == 0
                and self.clique.is_representative(self.shard_size)):
            shards = self.clique.shards(self.shard_size)
            me = self.clique.self_id
            foreign = [s for s in shards if me not in s]
            if foreign:
                turn = (self._round // self.intershard_period) % len(foreign)
                susp = self.suspicion
                for candidate in foreign[turn]:
                    if susp is None or susp.is_usable(candidate):
                        if candidate not in targets:
                            targets.append(candidate)
                        break
        return targets

    def _piggyback(self, body: dict) -> dict:
        """Attach tombstones, suspicion claims, and pending registration
        announcements to an outgoing sync-plane message."""
        if self.tombstones:
            body["tomb"] = [[c, self.tombstones[c]]
                            for c in sorted(self.tombstones)]
        if self.suspicion is not None:
            claims = self.suspicion.gossip_claims()
            if claims:
                body["susp"] = claims
        if self._reg_queue:
            regs = []
            for contact in sorted(self._reg_queue):
                reg = self.registry.get(contact)
                if reg is None:
                    continue
                regs.append([contact, sorted(reg.types), reg.last_seen])
                self._reg_queue[contact] -= 1
                if self._reg_queue[contact] <= 0:
                    del self._reg_queue[contact]
            if regs:
                body["reg"] = regs
        return body

    def _apply_piggyback(self, body: dict, now: float) -> None:
        for item in body.get("tomb", []):
            try:
                contact, stamp = str(item[0]), float(item[1])
            except (IndexError, TypeError, ValueError):
                continue
            self._apply_tombstone(contact, stamp, now)
        claims = body.get("susp")
        if claims and self.suspicion is not None:
            refutation = self.suspicion.apply_claims(
                claims, now, budget=self._piggyback_budget())
            if refutation is not None:
                # We are suspected somewhere: piggyback the refutation on
                # the next digest round (with its dominating incarnation).
                self._refutation = refutation
        for item in body.get("reg", []):
            try:
                contact, types, stamp = (
                    str(item[0]), set(map(str, item[1])), float(item[2]))
            except (IndexError, TypeError, ValueError):
                continue
            self._note_registration(contact, types, stamp)

    def _apply_tombstone(self, contact: Optional[str], stamp: float,
                         now: float) -> None:
        if not contact:
            return
        known = self.tombstones.get(contact)
        if known is not None and known >= stamp:
            return  # already applied this (or a newer) tombstone
        reg = self.registry.get(contact)
        if reg is not None and reg.last_seen > stamp:
            return  # we have seen the component alive since the eviction
        if reg is not None:
            del self.registry[contact]
        self.tombstones[contact] = stamp
        self.stats.tombstones_applied += 1
        self.telemetry.metrics.counter(
            "gossip.tombstones", component=self.name, event="applied").inc()

    def _note_peer_alive(self, peer: str, now: float) -> None:
        if self.suspicion is not None:
            self.suspicion.confirm_alive(peer, now,
                                         budget=self._piggyback_budget())

    def _hot_records(self) -> list[dict]:
        """Rumor payload for this round: hot records, budget-limited."""
        if not self._rumors:
            return []
        sent: list[dict] = []
        for tag in sorted(self._rumors)[:32]:
            rec = self.freshest.get(tag)
            if rec is None:
                self._rumors.pop(tag, None)
                continue
            sent.append(rec.to_body())
            self._rumors[tag] -= 1
            if self._rumors[tag] <= 0:
                del self._rumors[tag]
        return sent

    def _account_send(self, message: Message) -> None:
        size = len(message.encode())
        self.stats.bytes_sent += size
        # What the SC98-style path would have shipped for the same send:
        # the entire freshest state, plus framing.
        self.stats.bytes_full_equiv += self.digest.entry_bytes + 64
        if self._bytes_counter is None:
            self._bytes_counter = self.telemetry.metrics.counter(
                "gossip.sync_bytes", component=self.name)
            self._saved_counter = self.telemetry.metrics.counter(
                "gossip.bytes_saved", component=self.name)
        self._bytes_counter.inc(size)
        self._saved_counter.inc(max(self.digest.entry_bytes + 64 - size, 0))

    def _note_delta_records(self, shipped: int) -> None:
        if not shipped:
            return
        self.stats.delta_records += shipped
        if self._delta_counter is None:
            self._delta_counter = self.telemetry.metrics.counter(
                "gossip.delta_records", component=self.name)
        self._delta_counter.inc(shipped)

    def _sync_round(self, now: float) -> list[Effect]:
        assert self.suspicion is not None
        self._round += 1
        self.stats.digest_rounds += 1
        self._gc_tombstones(now)
        effects: list[Effect] = []
        # Overdue digest-acks: the forecast-informed dead-man switch that
        # feeds the SWIM alive -> suspect edge.
        budget = self._piggyback_budget()
        for peer in sorted(self._pending_acks):
            if now - self._pending_acks[peer] > self._ack_timeout(peer):
                del self._pending_acks[peer]
                self.timer.abandon(event_tag(peer, GOS_DIGEST))
                self.suspicion.suspect(peer, now, budget=budget)
        # Advance suspect -> dead; component evictions happen on the poll
        # plane (responsible member only), member deaths just leave the
        # sync rotation via alive_members().
        self.suspicion.tick(now)
        targets = self._pick_targets()
        if not targets:
            return effects
        hot = self._hot_records()
        refutation, self._refutation = self._refutation, None
        for peer in targets:
            body: dict = {"r": self._round,
                          "root": self.digest.root,
                          "n": self.digest.count}
            if hot:
                body["d"] = hot
            self._piggyback(body)
            if refutation is not None:
                body.setdefault("susp", []).append(refutation)
            message = Message(mtype=GOS_DIGEST, sender=self.contact, body=body)
            self._account_send(message)
            self.stats.digests_sent += 1
            tag = event_tag(peer, GOS_DIGEST)
            if peer not in self._pending_acks:
                self.timer.abandon(tag)
                self.timer.begin(tag, now)
                self._pending_acks[peer] = now
            effects.append(Send(peer, message))
        if self._rounds_counter is None:
            self._rounds_counter = self.telemetry.metrics.counter(
                "gossip.digest_rounds", component=self.name)
        self._rounds_counter.inc()
        return effects

    def _sync_round_full(self, now: float) -> list[Effect]:
        """Pre-§15 sync: every freshest record to one random peer."""
        self._round += 1
        if not self.freshest:
            return []
        peers = [p for p in self.pool_members() if p != self.contact]
        if not peers:
            return []
        assert self.runtime is not None
        peer = peers[int(self.runtime.random() * len(peers)) % len(peers)]
        self.stats.syncs_sent += 1
        records = [self.freshest[t].to_body() for t in sorted(self.freshest)]
        message = Message(mtype=GOS_SYNC, sender=self.contact,
                          body={"records": records})
        self._account_send(message)
        return [Send(peer, message)]

    def _on_digest(self, message: Message, now: float) -> list[Effect]:
        peer = message.sender
        body = message.body
        self._note_peer_alive(peer, now)
        self._apply_piggyback(body, now)
        if "d" in body:
            merged = self._merge_records(body.get("d", []), sync_plane=True)
            self._note_delta_records(len(merged))
        reply: dict = {"a": body.get("r", 0)}
        digest = self.digest
        if int(body.get("root", -1)) == digest.root and int(
                body.get("n", -1)) == digest.count:
            reply["ok"] = 1
        else:
            reply["bh"] = list(digest.buckets)
            reply["n"] = digest.count
        self._piggyback(reply)
        out = Message(mtype=GOS_DELTA, sender=self.contact, body=reply)
        self._account_send(out)
        return [Send(peer, out)]

    def _on_delta(self, message: Message, now: float) -> list[Effect]:
        peer = message.sender
        body = message.body
        self._note_peer_alive(peer, now)
        self._apply_piggyback(body, now)
        if "a" in body:
            # The ack closes the dead-man window and feeds the forecast
            # that sizes the next one.
            if peer in self._pending_acks:
                del self._pending_acks[peer]
                self.timer.end(event_tag(peer, GOS_DIGEST), now)
            self.stats.digest_acks += 1
        if "ok" in body:
            return []
        digest = self.digest
        effects: list[Effect] = []
        if "bh" in body:
            # Phase 2: localize the disagreement, ship per-record digest
            # entries for the diverged buckets only.
            try:
                remote_buckets = [int(h) for h in body["bh"]]
            except (TypeError, ValueError):
                return []
            buckets = digest.diverged_buckets(remote_buckets)
            if digest.count == 0 and int(body.get("n", 0)) == 0:
                buckets = []
            if not buckets:
                return []
            entries = digest.entries_for(self.freshest, buckets)
            out_body: dict = {"e": entries, "bk": buckets}
            self._piggyback(out_body)
            out = Message(mtype=GOS_DELTA, sender=self.contact, body=out_body)
            self._account_send(out)
            self.stats.deltas_sent += 1
            effects.append(Send(peer, out))
            return effects
        if "e" in body:
            # Phase 3: the peer's entries tell us exactly what to ship
            # and what to nack.
            ship, want, comparisons = plan_exchange(
                self.freshest, digest, self.comparators,
                body.get("e", []), buckets=body.get("bk"))
            self.stats.sync_comparisons += comparisons
            if ship or want:
                out_body = {"d": [r.to_body() for r in ship], "w": want}
                self._piggyback(out_body)
                out = Message(mtype=GOS_DELTA, sender=self.contact,
                              body=out_body)
                self._account_send(out)
                self.stats.deltas_sent += 1
                self._note_delta_records(len(ship))
                effects.append(Send(peer, out))
            return effects
        if "d" in body or "w" in body:
            # Phase 4 (ship): merge the peer's fresher records, answer its
            # nack list with ours.
            merged = self._merge_records(body.get("d", []), sync_plane=True)
            self._note_delta_records(len(merged))
            wanted = [t for t in body.get("w", []) if t in self.freshest]
            if wanted:
                out_body = {"records": [self.freshest[t].to_body()
                                        for t in sorted(set(wanted))]}
                out = Message(mtype=GOS_SYNC, sender=self.contact,
                              body=out_body)
                self._account_send(out)
                self._note_delta_records(len(wanted))
                effects.append(Send(peer, out))
            return effects
        return effects
