"""Client-side Gossip participation for application components.

:class:`GossipAgent` is composed into any component whose state must be
synchronized (computational clients, schedulers, persistent state
managers): it registers with a well-known Gossip, answers ``GOS_POLL``
with the component's current records, applies ``GOS_UPDATE`` pushes into
the component's :class:`~.state.StateStore`, and re-registers when the
pool seems to have forgotten it (e.g. after an eviction during a
partition).

The owning component routes messages with :meth:`handles` and forwards
matching messages/timers here, exactly as :class:`GossipServer` does for
its clique sub-machine.
"""

from __future__ import annotations

from typing import Optional

from ..component import Effect, LogLine, Send, SetTimer
from ..linguafranca.messages import Message
from ..policy import RetryPolicy
from .server import GOS_POLL, GOS_REG, GOS_REG_OK, GOS_STATE, GOS_UPDATE
from .state import StateStore

__all__ = ["GossipAgent"]

T_REREG = "gosagent:rereg"
#: Label on the reliable GOS_REG send; see :meth:`GossipAgent.handles_fail`.
L_REGISTER = "gosagent:register"

_AGENT_MTYPES = frozenset({GOS_POLL, GOS_UPDATE, GOS_REG_OK})


class GossipAgent:
    """Sans-IO gossip participation glue for one component."""

    def __init__(
        self,
        store: StateStore,
        well_known: list[str],
        register_period: float = 60.0,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        if not well_known:
            raise ValueError("GossipAgent needs at least one well-known gossip")
        self.store = store
        self.well_known = list(well_known)
        self.register_period = register_period
        #: Registration retransmission; the driver owns the actual retry
        #: loop, the agent only decides what give-up means (try the next
        #: well-known gossip).
        self.retry = retry or RetryPolicy(max_attempts=3)
        self.registered_with: Optional[str] = None
        self.known_gossips: list[str] = list(well_known)
        self.last_poll_seen: Optional[float] = None
        self.updates_applied = 0
        self._rr = 0  # round-robin cursor over well-known gossips

    # -- wiring ------------------------------------------------------------
    @staticmethod
    def handles(mtype: str) -> bool:
        return mtype in _AGENT_MTYPES

    @staticmethod
    def handles_timer(key: str) -> bool:
        return key == T_REREG

    @staticmethod
    def handles_fail(label: Optional[str]) -> bool:
        return label == L_REGISTER

    # -- protocol ------------------------------------------------------------
    def on_start(self, now: float, contact: str) -> list[Effect]:
        return [*self._register(contact), SetTimer(T_REREG, self.register_period)]

    def _register(self, contact: str) -> list[Effect]:
        target = self.well_known[self._rr % len(self.well_known)]
        self._rr += 1
        return [
            Send(target, Message(
                mtype=GOS_REG, sender=contact,
                body={"types": self.store.types()}),
                retry=self.retry, label=L_REGISTER),
        ]

    def on_send_failed(self, send: Send, now: float, contact: str) -> list[Effect]:
        """The gossip we tried to register with never confirmed: rotate
        to the next well-known member and re-announce (the round-robin
        cursor already advanced past the dead one)."""
        if send.label != L_REGISTER:
            return []
        return [LogLine(f"gossip {send.dst} unresponsive; rotating registration"),
                *self._register(contact)]

    def on_message(self, message: Message, now: float, contact: str) -> list[Effect]:
        if message.mtype == GOS_REG_OK:
            self.registered_with = message.sender
            gossips = message.body.get("gossips")
            if gossips:
                self.known_gossips = list(gossips)
            return []
        if message.mtype == GOS_POLL:
            self.last_poll_seen = now
            records = [r.to_body() for r in self.store.records()]
            return [Send(message.sender, Message(
                mtype=GOS_STATE, sender=contact, body={"records": records}))]
        if message.mtype == GOS_UPDATE:
            applied = 0
            from .state import StateRecord

            for body in message.body.get("records", []):
                try:
                    rec = StateRecord.from_body(body)
                except (KeyError, TypeError, ValueError):
                    continue
                if rec.mtype in self.store.types() and self.store.apply_remote(rec):
                    applied += 1
            self.updates_applied += applied
            return []
        return []

    def on_timer(self, key: str, now: float, contact: str) -> list[Effect]:
        if key != T_REREG:
            return []
        effects: list[Effect] = [SetTimer(T_REREG, self.register_period)]
        silent = (
            self.last_poll_seen is None
            or now - self.last_poll_seen > self.register_period
        )
        if self.registered_with is None or silent:
            # Never confirmed, or the pool has gone quiet on us: the paper's
            # components re-announce rather than assume liveness.
            effects.extend(self._register(contact))
            if silent and self.registered_with is not None:
                effects.append(LogLine("no recent gossip poll; re-registering"))
        return effects

    def push(self, contact: str) -> list[Effect]:
        """Unsolicited state push (e.g. a new counter-example must spread
        without waiting for the next poll)."""
        target = self.registered_with or self.well_known[0]
        records = [r.to_body() for r in self.store.records()]
        return [Send(target, Message(
            mtype=GOS_STATE, sender=contact, body={"records": records}))]
