"""The clique protocol: Gossip-pool membership under partition and failure.

The paper manages the Gossip pool with "the NWS clique protocol — a
token-passing protocol based on leader-election [12, 1]", which lets a
clique of processes "dynamically partition itself into subcliques (due to
network or host failure) and then merge when conditions permit" (§2.3).

This implementation realizes that specification as a leader-driven token
round with bully-style election (per the cited leader-election
literature):

* The **leader** periodically probes every member of the *universe* (the
  configured pool plus dynamic joiners), assembles the responders into
  the current *clique*, and circulates a versioned token carrying the
  membership view.
* **Members** keep a watchdog on token receipt; on expiry they run a
  bully election — challenge all higher-id members, stand down if any
  answers, otherwise assume leadership with a bumped version.
* **Partitions** therefore converge on one leader per reachable group,
  each leading its own subclique; when the partition heals, the leaders
  discover each other through probes: the smaller-id leader abdicates to
  the bigger live one, and the surviving leader's next token (with a
  version that dominates every version it has witnessed) merges the
  cliques.

Every protocol message carries the sender's ``(version, leader)`` claim.
Nodes track the highest version they have ever witnessed
(``_seen_version``); any new regime is created at ``seen + 1`` so its
tokens always dominate stale regimes — classic epoch management.

The class is sans-IO: the owning component routes ``CLQ_*`` messages and
``clq:*`` timers here and applies the returned effects.
"""

from __future__ import annotations

from typing import Optional

from ..component import CancelTimer, Effect, LogLine, Send, SetTimer
from ..linguafranca.messages import Message

__all__ = ["CliqueState", "plan_shards", "CLQ_PROBE", "CLQ_ALIVE", "CLQ_TOKEN",
           "CLQ_ELECT", "CLQ_ELECT_OK", "CLQ_JOIN", "CLIQUE_MTYPES"]


def plan_shards(members: list[str], shard_size: int) -> list[list[str]]:
    """Deterministically partition a membership list into sub-cliques.

    The paper's clique protocol partitions *by failure* ("dynamically
    partition itself into subcliques... then merge when conditions
    permit", §2.3); at a thousand nodes we additionally partition *by
    design*: synchronization responsibility is sharded so each member
    gossips mostly within its sub-clique and only shard representatives
    bridge between them — the sync traffic a member sees stays constant
    as the pool grows.

    Members are sorted, then cut into ``ceil(N / shard_size)`` contiguous
    near-equal chunks, so every node with the same membership view
    derives the same shards with no coordination. The first member of a
    shard is its *representative* for inter-shard rounds.
    """
    ordered = sorted(members)
    n = len(ordered)
    if n == 0:
        return []
    shard_size = max(int(shard_size), 1)
    n_shards = max((n + shard_size - 1) // shard_size, 1)
    base, extra = divmod(n, n_shards)
    shards: list[list[str]] = []
    start = 0
    for i in range(n_shards):
        width = base + (1 if i < extra else 0)
        shards.append(ordered[start:start + width])
        start += width
    return shards

CLQ_PROBE = "CLQ_PROBE"
CLQ_ALIVE = "CLQ_ALIVE"
CLQ_TOKEN = "CLQ_TOKEN"
CLQ_ELECT = "CLQ_ELECT"
CLQ_ELECT_OK = "CLQ_ELECT_OK"
CLQ_JOIN = "CLQ_JOIN"
CLIQUE_MTYPES = frozenset(
    {CLQ_PROBE, CLQ_ALIVE, CLQ_TOKEN, CLQ_ELECT, CLQ_ELECT_OK, CLQ_JOIN}
)

T_PROBE = "clq:probe"  # leader: start next probe round
T_ASSEMBLE = "clq:assemble"  # leader: close the probe round
T_WATCHDOG = "clq:watchdog"  # member: token freshness watchdog
T_ELECT = "clq:elect"  # candidate: election answer deadline


class CliqueState:
    """Sans-IO clique membership state machine for one pool member."""

    def __init__(
        self,
        self_id: str,
        universe: list[str],
        token_period: float = 10.0,
        assemble_wait: float = 3.0,
        token_timeout: float = 35.0,
        elect_timeout: float = 8.0,
    ) -> None:
        if self_id not in universe:
            universe = [*universe, self_id]
        self.self_id = self_id
        self.universe = sorted(set(universe))
        self.version = 0
        #: Presumptive initial leader: the bully winner of the full universe.
        self.leader = max(self.universe)
        self.members = list(self.universe)
        self.token_period = token_period
        self.assemble_wait = assemble_wait
        self.token_timeout = token_timeout
        self.elect_timeout = elect_timeout
        self._alive: set[str] = set()
        self._electing = False
        self._seen_version = 0
        #: Counters for tests/benchmarks.
        self.elections_started = 0
        self.tokens_seen = 0

    # -- helpers ------------------------------------------------------------
    @property
    def is_leader(self) -> bool:
        return self.leader == self.self_id

    # -- sharded sync ring ---------------------------------------------------
    def shards(self, shard_size: int = 32) -> list[list[str]]:
        """The current membership cut into sync sub-cliques; see
        :func:`plan_shards`."""
        return plan_shards(self.members, shard_size)

    def shard_index(self, shard_size: int = 32) -> int:
        """Index of the shard this member belongs to (0 when unknown,
        e.g. before the first token names us)."""
        for i, shard in enumerate(self.shards(shard_size)):
            if self.self_id in shard:
                return i
        return 0

    def my_shard(self, shard_size: int = 32) -> list[str]:
        shards = self.shards(shard_size)
        for shard in shards:
            if self.self_id in shard:
                return shard
        # Not yet in the membership view (joiner awaiting its first
        # token): gossip with whatever members we know about.
        return sorted(set(self.members) | {self.self_id})

    def is_representative(self, shard_size: int = 32) -> bool:
        """Whether this member speaks for its shard in inter-shard
        rounds (the shard's first member does)."""
        shard = self.my_shard(shard_size)
        return bool(shard) and shard[0] == self.self_id

    def _key(self) -> tuple[int, str]:
        return (self.version, self.leader)

    def _claim(self) -> dict:
        return {"v": self.version, "leader": self.leader}

    def _msg(self, mtype: str, body: dict) -> Message:
        full = dict(self._claim())
        full.update(body)
        return Message(mtype=mtype, sender=self.self_id, body=full)

    def _send_token_to(self, dst: str) -> Effect:
        return Send(dst, self._msg(CLQ_TOKEN, {
            "members": self.members,
            "universe": self.universe,
        }))

    def _abdicate_to(self, leader: str, version: int) -> list[Effect]:
        """Join a bigger live leader's regime."""
        was_leader = self.is_leader
        self.leader = leader
        self.version = version
        self._electing = False
        effects: list[Effect] = [SetTimer(T_WATCHDOG, self.token_timeout)]
        if was_leader:
            effects.append(LogLine(f"abdicating to {leader} (v{version})"))
            effects.append(CancelTimer(T_PROBE))
            effects.append(CancelTimer(T_ASSEMBLE))
            effects.append(CancelTimer(T_ELECT))
        return effects

    def _note_remote(self, message: Message) -> list[Effect]:
        """Epoch bookkeeping done for *every* clique message: track the
        version floor and yield to any bigger live leader."""
        body = message.body
        rv = int(body.get("v", 0))
        rl = str(body.get("leader", ""))
        self._seen_version = max(self._seen_version, rv)
        src = message.sender
        if rl == src and src > self.leader:
            # The sender itself claims leadership and outranks our leader:
            # it is live (it just sent this), so its regime wins.
            return self._abdicate_to(src, rv)
        return []

    # -- lifecycle ------------------------------------------------------------
    def start(self, now: float) -> list[Effect]:
        if self.is_leader:
            return self._begin_probe_round()
        return [SetTimer(T_WATCHDOG, self.token_timeout)]

    def _begin_probe_round(self) -> list[Effect]:
        self._alive = set()
        effects: list[Effect] = [
            Send(peer, self._msg(CLQ_PROBE, {}))
            for peer in self.universe
            if peer != self.self_id
        ]
        effects.append(SetTimer(T_ASSEMBLE, self.assemble_wait))
        return effects

    # -- message handling ------------------------------------------------------
    def on_message(self, message: Message, now: float) -> list[Effect]:
        handler = {
            CLQ_PROBE: self._on_probe,
            CLQ_ALIVE: self._on_alive,
            CLQ_TOKEN: self._on_token,
            CLQ_ELECT: self._on_elect,
            CLQ_ELECT_OK: self._on_elect_ok,
            CLQ_JOIN: self._on_join,
        }.get(message.mtype)
        if handler is None:
            return []
        effects = self._note_remote(message)
        effects.extend(handler(message, now))
        return effects

    def _on_probe(self, message: Message, now: float) -> list[Effect]:
        src = message.sender
        if src not in self.universe:
            self.universe = sorted({*self.universe, src})
        effects: list[Effect] = [Send(src, self._msg(CLQ_ALIVE, {}))]
        if self.is_leader and src < self.self_id:
            # A smaller node (possibly a partition-era leader) is probing:
            # push our token at it so it folds into our clique.
            effects.append(self._send_token_to(src))
        return effects

    def _on_alive(self, message: Message, now: float) -> list[Effect]:
        if self.is_leader:
            self._alive.add(message.sender)
        return []

    def _on_token(self, message: Message, now: float) -> list[Effect]:
        body = message.body
        key = (int(body["v"]), str(body["leader"]))
        if key < self._key():
            return []  # stale token from an old regime
        self.tokens_seen += 1
        was_leader = self.is_leader
        self.version, self.leader = key
        self.members = list(body["members"])
        self.universe = sorted(set(self.universe) | set(body.get("universe", [])))
        self._electing = False
        effects: list[Effect] = [SetTimer(T_WATCHDOG, self.token_timeout)]
        if was_leader and not self.is_leader:
            effects.append(LogLine(f"abdicating to {self.leader} (v{self.version})"))
            effects.append(CancelTimer(T_PROBE))
            effects.append(CancelTimer(T_ASSEMBLE))
        return effects

    def _on_elect(self, message: Message, now: float) -> list[Effect]:
        src = message.sender
        if src >= self.self_id:
            return []
        # Bully: answer the lower-id challenger, then assert ourselves.
        effects: list[Effect] = [Send(src, self._msg(CLQ_ELECT_OK, {}))]
        if self.is_leader:
            # Make our regime dominate whatever epoch the challenger saw,
            # so the token we push is accepted immediately.
            if self._seen_version >= self.version:
                self.version = self._seen_version + 1
                self._seen_version = self.version
            effects.append(self._send_token_to(src))
        elif not self._electing:
            effects.extend(self._start_election(now))
        return effects

    def _on_elect_ok(self, message: Message, now: float) -> list[Effect]:
        if not self._electing:
            return []
        # A higher-id member lives; it will take over. Stand down and wait.
        self._electing = False
        return [SetTimer(T_WATCHDOG, self.token_timeout), CancelTimer(T_ELECT)]

    def _on_join(self, message: Message, now: float) -> list[Effect]:
        joiner = message.body.get("joiner") or message.sender
        if joiner not in self.universe:
            self.universe = sorted({*self.universe, joiner})
        if self.is_leader:
            # Fold the joiner in on the next probe round; greet immediately.
            return [self._send_token_to(joiner)]
        # First-hand JOIN at a non-leader: forward so the leader learns.
        if joiner != self.leader and message.body.get("joiner") is None:
            return [Send(self.leader, self._msg(CLQ_JOIN, {"joiner": joiner}))]
        return []

    # -- timer handling -----------------------------------------------------------
    def on_timer(self, key: str, now: float) -> list[Effect]:
        if key == T_ASSEMBLE:
            return self._close_probe_round(now)
        if key == T_PROBE:
            if self.is_leader:
                return self._begin_probe_round()
            return []
        if key == T_WATCHDOG:
            if self.is_leader:
                return []
            return self._start_election(now)
        if key == T_ELECT:
            if self._electing:
                # No higher-id member answered: seize leadership.
                return self._become_leader(now)
            return []
        return []

    def _close_probe_round(self, now: float) -> list[Effect]:
        if not self.is_leader:
            return []
        new_members = sorted(self._alive | {self.self_id})
        changed = new_members != sorted(self.members)
        if changed or self._seen_version > self.version:
            # New epoch: dominate every version we have witnessed so that
            # members from stale regimes accept this token.
            self.version = max(self.version, self._seen_version) + 1
            self._seen_version = self.version
            self.members = new_members
        effects: list[Effect] = [
            self._send_token_to(peer) for peer in self.members if peer != self.self_id
        ]
        effects.append(SetTimer(T_PROBE, max(self.token_period - self.assemble_wait, 0.1)))
        return effects

    def _start_election(self, now: float) -> list[Effect]:
        self._electing = True
        self.elections_started += 1
        higher = [p for p in self.universe if p > self.self_id]
        if not higher:
            return self._become_leader(now)
        effects: list[Effect] = [
            Send(peer, self._msg(CLQ_ELECT, {})) for peer in higher
        ]
        effects.append(SetTimer(T_ELECT, self.elect_timeout))
        return effects

    def _become_leader(self, now: float) -> list[Effect]:
        self._electing = False
        self.version = max(self.version, self._seen_version) + 1
        self._seen_version = self.version
        self.leader = self.self_id
        self.members = [self.self_id]
        return [LogLine(f"assuming clique leadership (v{self.version})"),
                *self._begin_probe_round()]

    # -- joining --------------------------------------------------------------
    def join_effects(self, contact_points: list[str]) -> list[Effect]:
        """Effects for a *new* pool member announcing itself (§2.3: "new
        Gossip processes registered themselves with one of the well-known
        sites")."""
        return [
            Send(peer, self._msg(CLQ_JOIN, {}))
            for peer in contact_points
            if peer != self.self_id
        ]
