"""Synchronized state records and freshness comparison.

The paper's Gossip service (§2.3) synchronizes *typed* state: an
application component registers a contact address, a unique message type,
and a comparator that decides which of two records of that type is
fresher. This module holds the record representation, the comparator
machinery, and the client-side :class:`StateStore` that application
components keep their replicated state in.

The default comparator orders by ``(stamp, seq, origin)`` — wall-clock
freshness with deterministic tie-breaks — implementing the paper's
loosely-consistent, last-writer-wins model. Application-specific
comparators (e.g. "larger counter-example wins" for the Ramsey search)
are registered per message type.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

__all__ = [
    "StateRecord",
    "Comparator",
    "default_comparator",
    "ComparatorRegistry",
    "StateStore",
]

#: Returns >0 if ``a`` is fresher than ``b``, <0 if staler, 0 if equivalent.
Comparator = Callable[["StateRecord", "StateRecord"], int]


@dataclass(frozen=True)
class StateRecord:
    """One unit of synchronized application state."""

    mtype: str
    data: dict
    stamp: float  # origin-local time of last modification
    origin: str  # contact address of the writer
    seq: int  # per-origin monotonic write counter

    def to_body(self) -> dict:
        return {"t": self.mtype, "d": self.data, "ts": self.stamp,
                "o": self.origin, "n": self.seq}

    @classmethod
    def from_body(cls, body: dict) -> "StateRecord":
        return cls(
            mtype=body["t"],
            data=body["d"],
            stamp=float(body["ts"]),
            origin=body["o"],
            seq=int(body["n"]),
        )


def default_comparator(a: StateRecord, b: StateRecord) -> int:
    """Last-writer-wins by (stamp, seq, origin)."""
    ka = (a.stamp, a.seq, a.origin)
    kb = (b.stamp, b.seq, b.origin)
    return (ka > kb) - (ka < kb)


class ComparatorRegistry:
    """Per-message-type freshness comparators.

    Both Gossip servers and components hold one; registering a type at the
    Gossip is the code-level act the paper describes (§2.3). Unregistered
    types fall back to :func:`default_comparator`.
    """

    def __init__(self) -> None:
        self._comparators: dict[str, Comparator] = {}

    def register(self, mtype: str, comparator: Optional[Comparator] = None) -> None:
        self._comparators[mtype] = comparator or default_comparator

    def is_custom(self, mtype: str) -> bool:
        """True when the type's freshness is decided by an application
        comparator — i.e. version triples ``(stamp, seq, origin)`` alone
        cannot order two records, and anti-entropy must exchange full
        records for the comparator to arbitrate (see
        :func:`repro.core.gossip.digest.plan_exchange`)."""
        registered = self._comparators.get(mtype)
        return registered is not None and registered is not default_comparator

    def compare(self, a: StateRecord, b: StateRecord) -> int:
        if a.mtype != b.mtype:
            raise ValueError(f"comparing records of different types: {a.mtype} vs {b.mtype}")
        return self._comparators.get(a.mtype, default_comparator)(a, b)

    def fresher(self, a: StateRecord, b: StateRecord) -> StateRecord:
        return a if self.compare(a, b) >= 0 else b


class StateStore:
    """A component's local view of its synchronized state types."""

    def __init__(self, owner: str, comparators: Optional[ComparatorRegistry] = None) -> None:
        self.owner = owner
        self.comparators = comparators or ComparatorRegistry()
        self._records: dict[str, StateRecord] = {}
        self._seq: dict[str, int] = {}

    def register(
        self,
        mtype: str,
        comparator: Optional[Comparator] = None,
        initial: Optional[dict] = None,
        now: float = 0.0,
    ) -> None:
        """Declare a synchronized type, optionally seeding initial state."""
        if mtype in self._seq:
            raise ValueError(f"type {mtype!r} already registered with this store")
        self.comparators.register(mtype, comparator)
        self._seq[mtype] = 0
        if initial is not None:
            self.set_local(mtype, initial, now)

    def types(self) -> list[str]:
        return sorted(self._seq)

    def set_local(self, mtype: str, data: dict, now: float) -> StateRecord:
        """Record a local write; returns the new record."""
        if mtype not in self._seq:
            raise KeyError(f"type {mtype!r} not registered")
        self._seq[mtype] += 1
        rec = StateRecord(mtype=mtype, data=data, stamp=now,
                          origin=self.owner, seq=self._seq[mtype])
        self._records[mtype] = rec
        return rec

    def apply_remote(self, record: StateRecord) -> bool:
        """Adopt a remote record if fresher; returns True if adopted."""
        current = self._records.get(record.mtype)
        if current is None or self.comparators.compare(record, current) > 0:
            self._records[record.mtype] = record
            return True
        return False

    def get(self, mtype: str) -> Optional[StateRecord]:
        return self._records.get(mtype)

    def get_data(self, mtype: str) -> Optional[dict]:
        rec = self._records.get(mtype)
        return rec.data if rec is not None else None

    def records(self) -> list[StateRecord]:
        """All current records, deterministically ordered by type."""
        return [self._records[t] for t in sorted(self._records)]
