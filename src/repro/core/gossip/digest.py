"""Digest/delta anti-entropy: compact state summaries for the Gossip pool.

The paper concedes that the SC98 prototype's state exchange "can be
substantially optimized" (§2.3). This module is that optimization's data
plane: instead of serializing every freshest record into each sync
message, a Gossip summarizes its state as

* a **root hash** — one integer covering every record's version identity,
  compared first so converged peers exchange O(1) bytes per round; and
* **bucket hashes** — the record space split into :data:`DIGEST_BUCKETS`
  fixed buckets by record tag, so two diverged peers can localize their
  disagreement to a few buckets and exchange per-record digest *entries*
  ``(tag, stamp, seq, origin, hash)`` only for those, never the full
  state.

Hashes are XOR-accumulated CRC32s of each record's version triple
``(stamp, seq, origin)``, so adopting or replacing one record is an O(1)
incremental update (XOR out the old hash, XOR in the new) — building a
digest each round reads :data:`DIGEST_BUCKETS` integers regardless of how
much state is registered.

:func:`plan_exchange` computes the actual delta: given the local freshest
map and a peer's digest entries, it returns the records the peer lacks or
holds stale copies of (ship them) and the tags the local side wants (the
nack list). Types with a *custom* comparator cannot be ordered from
version triples alone, so both sides exchange full records and let the
registered comparator decide at each end — freshness authority stays with
the comparator, exactly as the paper specifies.
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from .state import ComparatorRegistry, StateRecord

__all__ = [
    "DIGEST_BUCKETS",
    "DigestEntry",
    "StateDigest",
    "freshness_hash",
    "bucket_of",
    "plan_exchange",
]

#: Fixed bucket count: the per-round digest cost when peers diverge.
#: 16 keeps the bucket vector smaller than two full records while still
#: cutting entry exchanges to ~1/16th of the registered state.
DIGEST_BUCKETS = 16

#: Wire shape of one per-record digest entry:
#: ``[tag, stamp, seq, origin, freshness-hash]``.
DigestEntry = list


def freshness_hash(mtype: str, stamp: float, seq: int, origin: str) -> int:
    """CRC32 of a record's version identity. Two records hash equal iff
    they are the same write (same tag, stamp, seq, origin)."""
    return zlib.crc32(f"{mtype}|{stamp!r}|{seq}|{origin}".encode("utf-8"))


def bucket_of(mtype: str) -> int:
    """Deterministic tag -> bucket assignment."""
    return zlib.crc32(mtype.encode("utf-8")) % DIGEST_BUCKETS


class StateDigest:
    """Incrementally-maintained digest over a freshest-record map.

    The owning :class:`~.server.GossipServer` routes every adoption
    through :meth:`adopt` (and evictions through :meth:`forget`), so the
    bucket vector is always current and a sync round never rescans state.
    ``entry_bytes`` tracks the serialized size of the current state — what
    a full-state sync would ship per round — for the ``bytes_saved``
    accounting.
    """

    __slots__ = ("buckets", "count", "entry_bytes", "_hashes", "_sizes")

    def __init__(self) -> None:
        self.buckets = [0] * DIGEST_BUCKETS
        self.count = 0
        self.entry_bytes = 0
        self._hashes: dict[str, int] = {}
        self._sizes: dict[str, int] = {}

    @property
    def root(self) -> int:
        """Order-independent root hash: XOR of bucket hashes mixed with
        the record count (so an empty bucket vector with different counts
        still differs)."""
        acc = self.count
        for h in self.buckets:
            acc ^= h
        return acc

    def adopt(self, record: "StateRecord", size: int) -> None:
        """Fold ``record`` in (replacing any prior record of its tag).
        ``size`` is the serialized body size used for byte accounting."""
        tag = record.mtype
        bucket = bucket_of(tag)
        old = self._hashes.get(tag)
        if old is not None:
            self.buckets[bucket] ^= old
            self.entry_bytes -= self._sizes[tag]
        else:
            self.count += 1
        h = freshness_hash(tag, record.stamp, record.seq, record.origin)
        self.buckets[bucket] ^= h
        self._hashes[tag] = h
        self._sizes[tag] = size
        self.entry_bytes += size

    def forget(self, mtype: str) -> None:
        """Remove a tag from the digest (state GC)."""
        old = self._hashes.pop(mtype, None)
        if old is None:
            return
        self.buckets[bucket_of(mtype)] ^= old
        self.entry_bytes -= self._sizes.pop(mtype)
        self.count -= 1

    def hash_of(self, mtype: str) -> Optional[int]:
        return self._hashes.get(mtype)

    def diverged_buckets(self, remote_buckets: list[int]) -> list[int]:
        """Bucket indices where the two digests disagree."""
        return [i for i in range(DIGEST_BUCKETS)
                if i >= len(remote_buckets) or self.buckets[i] != remote_buckets[i]]

    def entries_for(self, freshest: dict[str, "StateRecord"],
                    buckets: Iterable[int]) -> list[DigestEntry]:
        """Per-record digest entries for the given buckets, sorted by tag
        (deterministic wire order)."""
        wanted = set(buckets)
        out: list[DigestEntry] = []
        for tag in sorted(freshest):
            if bucket_of(tag) in wanted:
                rec = freshest[tag]
                out.append([tag, rec.stamp, rec.seq, rec.origin,
                            self._hashes.get(tag, 0)])
        return out


def plan_exchange(
    freshest: dict[str, "StateRecord"],
    digest: StateDigest,
    comparators: "ComparatorRegistry",
    remote_entries: Iterable[DigestEntry],
    buckets: Optional[Iterable[int]] = None,
) -> tuple[list["StateRecord"], list[str], int]:
    """Compute the delta against a peer's digest entries.

    Returns ``(ship, want, comparisons)``: records to send because the
    peer's copy is missing or stale, tags to request because the peer's
    copy looks fresher (the nack list), and the number of comparator
    invocations spent deciding. When ``buckets`` is given, local records
    in those buckets that the peer did not list at all are shipped too
    (the peer provably lacks them).
    """
    ship: list["StateRecord"] = []
    want: list[str] = []
    comparisons = 0
    listed: set[str] = set()
    for entry in remote_entries:
        try:
            tag, stamp, seq, origin, rhash = (
                str(entry[0]), float(entry[1]), int(entry[2]),
                str(entry[3]), int(entry[4]))
        except (IndexError, TypeError, ValueError):
            continue  # malformed entry: robustness over strictness
        listed.add(tag)
        mine = freshest.get(tag)
        if mine is None:
            want.append(tag)
            continue
        if digest.hash_of(tag) == rhash:
            continue  # identical write: nothing to exchange
        if comparators.is_custom(tag):
            # Version triples cannot order custom-compared types: exchange
            # full records and let each side's comparator arbitrate.
            ship.append(mine)
            want.append(tag)
            continue
        comparisons += 1
        mk = (mine.stamp, mine.seq, mine.origin)
        rk = (stamp, seq, origin)
        if mk > rk:
            ship.append(mine)
        elif rk > mk:
            want.append(tag)
    if buckets is not None:
        in_scope = set(buckets)
        for tag in sorted(freshest):
            if tag not in listed and bucket_of(tag) in in_scope:
                ship.append(freshest[tag])
    return ship, sorted(set(want)), comparisons
