"""SWIM-style suspicion: the Gossip pool's membership failure detector.

The SC98 prototype treated silence as death: a component that missed its
poll deadline was evicted and a ``GOS_DELCOMP`` was broadcast to the whole
pool. At a thousand nodes that is both too eager (one congested link
kills a healthy node pool-wide) and too chatty (O(pool) messages per
eviction). This module replaces it with the SWIM pattern the gossip
literature converged on (see SNIPPETS.md "Gossip Protocol"):

* **alive -> suspect** — a member that misses a digest-ack (or a
  component that misses its poll deadline) is *suspected*, not killed.
  The suspicion is piggybacked on subsequent digests instead of being
  polled for or broadcast.
* **suspect -> alive (refutation)** — any message from the suspect, or an
  alive claim carrying a *higher incarnation number*, clears the
  suspicion. A node that learns it is suspected bumps its own incarnation
  and piggybacks the refutation; incarnations totally order claims so a
  stale suspicion can never overrule a fresh refutation.
* **suspect -> dead** — only after the suspicion timeout (sized from the
  same forecast machinery that drives the paper's §2.2 dynamic time-outs)
  does the member become dead; death is then *tombstoned* and the
  tombstone rides digests with a TTL, so an eviction costs O(fan-out)
  piggyback bytes instead of an O(pool) broadcast.

The table is sans-IO and deterministic: transitions happen only in
response to explicit calls from the owning :class:`~.server.GossipServer`
with the simulation clock passed in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

__all__ = ["ALIVE", "SUSPECT", "DEAD", "MemberView", "SuspicionTable"]

ALIVE = "alive"
SUSPECT = "suspect"
DEAD = "dead"


@dataclass
class MemberView:
    """One peer's perceived liveness."""

    state: str = ALIVE
    incarnation: int = 0
    since: float = 0.0  # when the current state was entered


#: Piggyback wire shape: ``[member, state, incarnation]``.
Claim = list

#: ``(member, old_state, new_state)`` observer, called on every transition.
TransitionHook = Callable[[str, str, str], None]


class SuspicionTable:
    """Deterministic alive/suspect/dead bookkeeping for a set of peers.

    ``suspicion_timeout`` may be a float or a zero-arg callable (so the
    owner can plug a forecast-driven value in); it bounds how long a
    suspect lives before :meth:`tick` declares it dead.
    """

    def __init__(
        self,
        self_id: str,
        suspicion_timeout: float | Callable[[], float] = 30.0,
        on_transition: Optional[TransitionHook] = None,
    ) -> None:
        self.self_id = self_id
        self.suspicion_timeout = suspicion_timeout
        self.on_transition = on_transition
        self.self_incarnation = 0
        self.members: dict[str, MemberView] = {}
        #: Dirty claims awaiting dissemination: member -> remaining
        #: piggyback budget. Entries drain as :meth:`gossip_claims` is
        #: called, giving each transition O(log pool) transmissions.
        self._dirty: dict[str, int] = {}
        #: Transition counters by target state (telemetry mirrors these).
        self.transitions: dict[str, int] = {ALIVE: 0, SUSPECT: 0, DEAD: 0}

    # -- helpers -----------------------------------------------------------
    def _timeout(self) -> float:
        t = self.suspicion_timeout
        return float(t()) if callable(t) else float(t)

    def view(self, member: str) -> MemberView:
        mv = self.members.get(member)
        if mv is None:
            mv = self.members[member] = MemberView()
        return mv

    def state_of(self, member: str) -> str:
        mv = self.members.get(member)
        return mv.state if mv is not None else ALIVE

    def is_usable(self, member: str) -> bool:
        """Alive or merely suspected members stay in the sync rotation —
        only confirmed-dead ones are skipped."""
        return self.state_of(member) != DEAD

    def _move(self, member: str, mv: MemberView, state: str, now: float,
              budget: int) -> None:
        old = mv.state
        if old == state:
            return
        mv.state = state
        mv.since = now
        self.transitions[state] += 1
        self._dirty[member] = budget
        if self.on_transition is not None:
            self.on_transition(member, old, state)

    # -- transitions --------------------------------------------------------
    def suspect(self, member: str, now: float, budget: int = 4,
                incarnation: Optional[int] = None) -> bool:
        """Local evidence (missed ack/poll) or a piggybacked claim says
        ``member`` may be down. Returns True if a transition happened."""
        mv = self.view(member)
        if incarnation is not None:
            if incarnation < mv.incarnation:
                return False  # stale claim: a fresher refutation won
            mv.incarnation = incarnation
        if mv.state != ALIVE:
            return False
        self._move(member, mv, SUSPECT, now, budget)
        return True

    def confirm_alive(self, member: str, now: float, budget: int = 4,
                      incarnation: Optional[int] = None) -> bool:
        """Direct contact from the member, or a refutation claim. A plain
        message from the member always clears suspicion (it is first-hand
        evidence); a relayed alive-claim must carry an incarnation >= the
        one the suspicion was filed under."""
        mv = self.view(member)
        if incarnation is not None:
            if mv.state == SUSPECT and incarnation <= mv.incarnation:
                return False  # does not refute the current suspicion
            mv.incarnation = max(mv.incarnation, incarnation)
        if mv.state == ALIVE:
            return False
        if mv.state == DEAD and incarnation is None:
            # First-hand contact from a declared-dead member: resurrection
            # (reboot). Bump so stale death claims cannot re-kill it.
            mv.incarnation += 1
        self._move(member, mv, ALIVE, now, budget)
        return True

    def declare_dead(self, member: str, now: float, budget: int = 4,
                     incarnation: Optional[int] = None) -> bool:
        mv = self.view(member)
        if incarnation is not None:
            if incarnation < mv.incarnation:
                return False
            mv.incarnation = incarnation
        if mv.state == DEAD:
            return False
        self._move(member, mv, DEAD, now, budget)
        return True

    def forget(self, member: str) -> None:
        self.members.pop(member, None)
        self._dirty.pop(member, None)

    def tick(self, now: float) -> list[str]:
        """Expire suspicions: suspects older than the suspicion timeout
        become dead. Returns the newly-dead members, sorted."""
        deadline = self._timeout()
        newly_dead = [m for m in sorted(self.members)
                      if self.members[m].state == SUSPECT
                      and now - self.members[m].since > deadline]
        for member in newly_dead:
            self.declare_dead(member, now)
        return newly_dead

    # -- dissemination -------------------------------------------------------
    def gossip_claims(self, limit: int = 8) -> list[Claim]:
        """Claims to piggyback on the next digest, freshest budget first.
        Each call spends one unit of every emitted claim's budget."""
        if not self._dirty:
            return []
        order = sorted(self._dirty, key=lambda m: (-self._dirty[m], m))[:limit]
        claims: list[Claim] = []
        for member in order:
            mv = self.members[member]
            claims.append([member, mv.state, mv.incarnation])
            self._dirty[member] -= 1
            if self._dirty[member] <= 0:
                del self._dirty[member]
        return claims

    def apply_claims(self, claims: list[Claim], now: float,
                     budget: int = 4) -> Optional[Claim]:
        """Merge piggybacked claims. If one of them suspects or kills
        *this node*, returns the refutation claim to piggyback (with a
        freshly bumped incarnation); the caller must spread it."""
        refutation: Optional[Claim] = None
        for claim in claims:
            try:
                member, state, incarnation = (
                    str(claim[0]), str(claim[1]), int(claim[2]))
            except (IndexError, TypeError, ValueError):
                continue  # malformed claim: drop it
            if member == self.self_id:
                if state in (SUSPECT, DEAD) and incarnation >= self.self_incarnation:
                    # Someone thinks we are down. We are provably not:
                    # refute with a dominating incarnation.
                    self.self_incarnation = incarnation + 1
                    refutation = [self.self_id, ALIVE, self.self_incarnation]
                continue
            if state == SUSPECT:
                self.suspect(member, now, budget, incarnation=incarnation)
            elif state == DEAD:
                self.declare_dead(member, now, budget, incarnation=incarnation)
            elif state == ALIVE:
                self.confirm_alive(member, now, budget, incarnation=incarnation)
        return refutation
