"""Packet framing for the EveryWare lingua franca.

The paper (§2.1) implements "rudimentary packet semantics to enable message
typing and delineate record boundaries within each stream-oriented TCP
communication", inspired by netperf and taken from the NWS implementation.
This module is that wire format:

::

    +-------+---------+-------+----------+-------------+----------+
    | magic | version | tlen  | plen     | mtype bytes | payload  |
    | 4 B   | 1 B     | 2 B   | 4 B      | tlen B      | plen B   |
    +-------+---------+-------+----------+-------------+----------+
    | crc32 of everything above, 4 B                              |
    +-------------------------------------------------------------+

All integers are big-endian ("network order"). The format deliberately
avoids anything machine-specific — the paper's authors rejected XDR for
portability; we use explicit byte packing for the header and UTF-8 text
for the type name.

:class:`PacketDecoder` consumes a byte stream incrementally, which is what
the TCP transport needs: record boundaries do not align with ``recv``
boundaries.
"""

from __future__ import annotations

import struct
import zlib
from typing import Iterator, Optional

__all__ = [
    "MAGIC",
    "VERSION",
    "HEADER",
    "MAX_TYPE_LEN",
    "MAX_PAYLOAD_LEN",
    "PacketError",
    "encode_packet",
    "decode_packet",
    "decode_packet_view",
    "PacketDecoder",
]

MAGIC = b"EVRW"
VERSION = 1
HEADER = struct.Struct("!4sBHI")  # magic, version, type length, payload length
TRAILER = struct.Struct("!I")  # crc32
MAX_TYPE_LEN = 256
MAX_PAYLOAD_LEN = 16 * 1024 * 1024


class PacketError(Exception):
    """Malformed or oversized packet data."""


def encode_packet(mtype: str, payload: bytes) -> bytes:
    """Frame one typed record."""
    tbytes = mtype.encode("utf-8")
    if not tbytes:
        raise PacketError("empty message type")
    if len(tbytes) > MAX_TYPE_LEN:
        raise PacketError(f"message type too long ({len(tbytes)} bytes)")
    if len(payload) > MAX_PAYLOAD_LEN:
        raise PacketError(f"payload too large ({len(payload)} bytes)")
    head = HEADER.pack(MAGIC, VERSION, len(tbytes), len(payload))
    # Run the crc over the parts and join once, instead of materializing
    # the unframed body just to checksum it and then copying it again.
    crc = zlib.crc32(payload, zlib.crc32(tbytes, zlib.crc32(head)))
    return b"".join((head, tbytes, payload, TRAILER.pack(crc & 0xFFFFFFFF)))


def decode_packet_view(data: bytes) -> tuple[str, memoryview]:
    """Decode exactly one packet without copying the payload.

    Single-pass: validates and slices ``data`` directly instead of
    round-tripping it through a :class:`PacketDecoder` buffer (the stream
    decoder exists for the TCP transport, where record boundaries do not
    align with ``recv`` boundaries — here the frame is already exact).

    The returned payload is a :class:`memoryview` into ``data``; it stays
    valid for as long as ``data`` does. Callers that parse the payload
    immediately (:meth:`Message.decode`) never materialize a payload copy;
    callers that need to keep the bytes use :func:`decode_packet`.
    """
    if len(data) < HEADER.size:
        raise PacketError("truncated packet")
    magic, version, tlen, plen = HEADER.unpack_from(data, 0)
    if magic != MAGIC:
        raise PacketError(f"bad magic {bytes(magic)!r}")
    if version != VERSION:
        raise PacketError(f"unsupported version {version}")
    if tlen == 0 or tlen > MAX_TYPE_LEN:
        raise PacketError(f"bad type length {tlen}")
    if plen > MAX_PAYLOAD_LEN:
        raise PacketError(f"bad payload length {plen}")
    total = HEADER.size + tlen + plen + TRAILER.size
    if len(data) < total:
        raise PacketError("truncated packet")
    if len(data) > total:
        raise PacketError(f"{len(data) - total} trailing bytes after packet")
    body_end = total - TRAILER.size
    (crc,) = TRAILER.unpack_from(data, body_end)
    view = memoryview(data)
    actual = zlib.crc32(view[:body_end]) & 0xFFFFFFFF
    if crc != actual:
        raise PacketError(f"crc mismatch (got {crc:#x}, want {actual:#x})")
    try:
        mtype = str(view[HEADER.size : HEADER.size + tlen], "utf-8")
    except UnicodeDecodeError as exc:
        raise PacketError("message type is not valid UTF-8") from exc
    return mtype, view[HEADER.size + tlen : body_end]


def decode_packet(data: bytes) -> tuple[str, bytes]:
    """Decode exactly one packet; raises PacketError on any mismatch.

    Like :func:`decode_packet_view` but returns an owned payload copy."""
    mtype, payload = decode_packet_view(data)
    return mtype, bytes(payload)


def _owned_record(mtype: str, payload: memoryview) -> tuple[str, bytes]:
    return mtype, bytes(payload)


class PacketDecoder:
    """Incremental stream decoder.

    Feed arbitrary chunks with :meth:`feed`; pull complete packets with
    :meth:`next_packet` or iterate :meth:`packets`.
    """

    def __init__(self) -> None:
        self._buf = bytearray()

    @property
    def pending_bytes(self) -> int:
        return len(self._buf)

    def feed(self, data: bytes) -> None:
        self._buf.extend(data)

    def _frame(self) -> Optional[tuple[int, int]]:
        """Validate the header of the buffered frame; (tlen, total) when a
        complete frame is buffered, None when more data is needed."""
        buf = self._buf
        if len(buf) < HEADER.size:
            return None
        magic, version, tlen, plen = HEADER.unpack_from(buf, 0)
        if magic != MAGIC:
            raise PacketError(f"bad magic {bytes(magic)!r}")
        if version != VERSION:
            raise PacketError(f"unsupported version {version}")
        if tlen == 0 or tlen > MAX_TYPE_LEN:
            raise PacketError(f"bad type length {tlen}")
        if plen > MAX_PAYLOAD_LEN:
            raise PacketError(f"bad payload length {plen}")
        total = HEADER.size + tlen + plen + TRAILER.size
        if len(buf) < total:
            return None
        return tlen, total

    def next_record(self, build):
        """Parse the next complete packet in place: call
        ``build(mtype, payload_view)`` on a zero-copy view of the payload
        and return its result, or None if more data is needed.

        ``build`` must not retain the view — it only spans the frame's
        slot in the stream buffer. The frame is consumed even when
        ``build`` raises (a malformed *record* must not wedge the stream
        the way a malformed *frame* does), so consumers can count the
        error and keep reading. PacketError (corrupt frame) leaves the
        buffer untouched: the only safe recovery is dropping the stream.
        """
        frame = self._frame()
        if frame is None:
            return None
        tlen, total = frame
        buf = self._buf
        body_end = total - TRAILER.size
        (crc,) = TRAILER.unpack_from(buf, body_end)
        consume = False
        payload = None
        try:
            # Every view must be released before `del buf[:total]` resizes
            # the bytearray: the with-block covers the base view, and the
            # payload slice is released explicitly — when ``build`` raises,
            # the exception's traceback pins build's frame (and with it the
            # slice), so refcounting alone won't drop the buffer export.
            with memoryview(buf) as view:
                actual = zlib.crc32(view[:body_end]) & 0xFFFFFFFF
                if crc != actual:
                    raise PacketError(
                        f"crc mismatch (got {crc:#x}, want {actual:#x})"
                    )
                try:
                    mtype = str(view[HEADER.size : HEADER.size + tlen], "utf-8")
                except UnicodeDecodeError as exc:
                    raise PacketError("message type is not valid UTF-8") from exc
                payload = view[HEADER.size + tlen : body_end]
                consume = True
                return build(mtype, payload)
        finally:
            if payload is not None:
                payload.release()
            if consume:
                del buf[:total]

    def next_packet(self) -> Optional[tuple[str, bytes]]:
        """Return the next complete (mtype, payload), or None if more data
        is needed. Raises PacketError if the stream is corrupt."""
        return self.next_record(_owned_record)

    def packets(self) -> Iterator[tuple[str, bytes]]:
        """Yield all currently complete packets."""
        while True:
            pkt = self.next_packet()
            if pkt is None:
                return
            yield pkt
