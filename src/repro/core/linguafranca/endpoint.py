"""Simulated-network endpoint for the lingua franca.

The endpoint encodes every message through the real wire codec
(:mod:`.packets` / :mod:`.messages`) before handing the bytes to the
simulated network, so the simulation exercises the same framing path as
the TCP transport; transmission delay is computed from the true encoded
size.

Receive follows the paper's discipline (§2.1): blocking receive with a
time-out (their ``select()`` idiom); connection failure is never signalled,
only inferred from missing replies.
"""

from __future__ import annotations

from typing import Generator, Optional, Union

from ...simgrid.engine import Environment
from ...simgrid.network import Address, Network
from ...simgrid.resources import get_with_timeout
from .messages import Message, MessageError, fresh_req_id
from .packets import PacketError

__all__ = ["SimEndpoint"]

AddressLike = Union[Address, str]


def _as_address(addr: AddressLike) -> Address:
    return addr if isinstance(addr, Address) else Address.parse(addr)


class SimEndpoint:
    """A bound lingua-franca port on a simulated host."""

    def __init__(self, env: Environment, network: Network, address: Address) -> None:
        self.env = env
        self.network = network
        self.address = address
        self.mailbox = network.bind(address)
        self.decode_errors = 0
        self._backlog: list[Message] = []
        self._closed = False

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self.network.unbind(self.address)

    @property
    def contact(self) -> str:
        """The string address other components use to reach this endpoint."""
        return str(self.address)

    # -- sending ---------------------------------------------------------
    def send(self, dst: AddressLike, message: Message) -> None:
        """Encode and transmit; fire-and-forget."""
        if not message.sender:
            message.sender = self.contact
        # The trace context rides along out-of-band too, so the network
        # can attribute in-flight drops to the causing fault without
        # decoding payloads.
        self.network.send(self.address, _as_address(dst), message.encode(),
                          trace=message.trace)

    # -- receiving ---------------------------------------------------------
    def recv(self, timeout: Optional[float] = None) -> Generator:
        """Process helper: next message or None on time-out.

        Usage: ``msg = yield from endpoint.recv(5.0)``.
        """
        if self._backlog:
            # Make even the fast path yield once so callers are uniform.
            yield self.env.timeout(0)
            return self._backlog.pop(0)
        msg = yield from self._recv_fresh(timeout)
        return msg

    def _recv_fresh(self, timeout: Optional[float]) -> Generator:
        """Like recv() but never consults the backlog (used by request())."""
        deadline = None if timeout is None else self.env.now + timeout
        while True:
            remaining = None if deadline is None else max(deadline - self.env.now, 0.0)
            delivery = yield from get_with_timeout(self.env, self.mailbox, remaining)
            if delivery is None:
                return None
            try:
                return Message.decode(delivery.payload)
            except (MessageError, PacketError):
                self.decode_errors += 1
                # Corrupt data on the wire: drop and keep listening.
                continue

    def request(
        self,
        dst: AddressLike,
        message: Message,
        timeout: float,
    ) -> Generator:
        """Process helper: send a request and await its correlated reply.

        Returns ``(reply, rtt_seconds)`` or ``(None, None)`` on time-out.
        Uncorrelated messages arriving meanwhile are preserved in a backlog
        for later :meth:`recv` calls, not dropped.
        """
        message.req_id = fresh_req_id()
        started = self.env.now
        self.send(dst, message)
        deadline = started + timeout
        while True:
            remaining = deadline - self.env.now
            if remaining <= 0:
                return None, None
            reply = yield from self._recv_fresh(remaining)
            if reply is None:
                return None, None
            if reply.reply_to == message.req_id:
                return reply, self.env.now - started
            self._backlog.append(reply)
