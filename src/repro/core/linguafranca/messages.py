"""Typed messages carried by the lingua franca.

A :class:`Message` is a typed record with a JSON-safe payload dictionary.
The paper's prototype used ad-hoc C structs per message type; we keep the
type-tag-plus-record design but encode records as UTF-8 JSON (the paper
rejected XDR for availability reasons — any portable self-describing
encoding serves the same role).

``reply_to``/``req_id`` implement the request–response correlation the
EveryWare servers use: every request carries a fresh ``req_id``, the reply
echoes it in ``reply_to``, and the response-time forecaster keys its event
streams on ``(server address, message type)`` (§2.2 dynamic benchmarking).
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from .packets import PacketError, decode_packet_view, encode_packet

__all__ = ["Message", "MessageError", "TypeRegistry", "fresh_req_id"]

_req_counter = itertools.count(1)


def fresh_req_id() -> int:
    """Process-wide unique request id."""
    return next(_req_counter)


#: Encoded-bytes cache for repeated identical control messages (gossip
#: probes, scheduler polls, registry heartbeats re-sent unchanged every
#: period). Keyed on every field that feeds the wire bytes — including the
#: body's *insertion order*, since json.dumps preserves it — so a hit
#: returns exactly the bytes a fresh encode would produce. Messages whose
#: body holds unhashable values (nested dicts/lists) skip the cache, as
#: does anything carrying a ``req_id``/``reply_to``: correlated messages
#: are unique per conversation, so caching them would be pure miss
#: overhead. Trace contexts are likewise unique per send, so traced
#: messages skip the cache too.
_encode_cache: dict[tuple, bytes] = {}
_ENCODE_CACHE_MAX = 2048


class MessageError(Exception):
    """Malformed message content."""


@dataclass(slots=True)
class Message:
    """One lingua-franca record.

    ``sender`` is the string form of the sender's contact address
    ("host/port"); components use it to reply. ``body`` must be
    JSON-serializable.
    """

    mtype: str
    sender: str
    body: dict = field(default_factory=dict)
    req_id: Optional[int] = None
    reply_to: Optional[int] = None
    #: Causal trace context ``(trace_id, parent span_id)`` stamped by the
    #: sending driver when tracing is enabled (wire field ``"t"``). See
    #: :mod:`repro.core.telemetry`.
    trace: Optional[tuple[int, int]] = None

    def encode(self) -> bytes:
        """Serialize to a framed packet."""
        key = None
        if self.req_id is None and self.reply_to is None and self.trace is None:
            try:
                key = (self.mtype, self.sender, tuple(self.body.items()))
                cached = _encode_cache.get(key)
                if cached is not None:
                    return cached
            except TypeError:  # unhashable body value: encode uncached
                key = None
        record: dict[str, Any] = {"s": self.sender, "b": self.body}
        if self.req_id is not None:
            record["q"] = self.req_id
        if self.reply_to is not None:
            record["r"] = self.reply_to
        if self.trace is not None:
            record["t"] = [self.trace[0], self.trace[1]]
        try:
            payload = json.dumps(record, separators=(",", ":")).encode("utf-8")
        except (TypeError, ValueError) as exc:
            raise MessageError(f"unserializable message body: {exc}") from exc
        data = encode_packet(self.mtype, payload)
        if key is not None:
            if len(_encode_cache) >= _ENCODE_CACHE_MAX:
                _encode_cache.clear()
            _encode_cache[key] = data
        return data

    @classmethod
    def decode(cls, data: bytes) -> "Message":
        """Parse a single framed packet into a Message.

        Zero-copy: the payload is parsed through a memoryview into
        ``data`` (:func:`decode_packet_view`), never materialized as an
        intermediate ``bytes`` object."""
        mtype, payload = decode_packet_view(data)
        return cls.from_parts(mtype, payload)

    @classmethod
    def from_parts(cls, mtype: str, payload) -> "Message":
        """Build a Message from an already-deframed (mtype, payload).

        ``payload`` may be ``bytes``, ``bytearray``, or a ``memoryview``
        (the zero-copy decode paths pass views); it is consumed before
        this returns, never retained."""
        try:
            record = json.loads(str(payload, "utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise MessageError(f"bad message payload: {exc}") from exc
        if not isinstance(record, dict) or "s" not in record or "b" not in record:
            raise MessageError("message record missing required fields")
        body = record["b"]
        if not isinstance(body, dict):
            raise MessageError("message body must be an object")
        trace = None
        raw_trace = record.get("t")
        if raw_trace is not None:  # rare: only traced runs pay validation
            if (isinstance(raw_trace, (list, tuple)) and len(raw_trace) == 2
                    and all(isinstance(x, int) for x in raw_trace)):
                trace = (raw_trace[0], raw_trace[1])
        return cls(
            mtype=mtype,
            sender=record["s"],
            body=body,
            req_id=record.get("q"),
            reply_to=record.get("r"),
            trace=trace,
        )

    def reply(self, mtype: str, sender: str, body: Optional[dict] = None) -> "Message":
        """Construct the response correlated to this request."""
        return Message(
            mtype=mtype,
            sender=sender,
            body=body if body is not None else {},
            reply_to=self.req_id,
        )


class TypeRegistry:
    """Optional per-deployment registry of known message types.

    Components can register a validator per type; endpoints with a registry
    reject unknown or invalid messages at the edge instead of deep in
    handler code.
    """

    def __init__(self) -> None:
        self._validators: dict[str, Callable[[dict], None]] = {}

    def register(
        self, mtype: str, validator: Optional[Callable[[dict], None]] = None
    ) -> None:
        if mtype in self._validators:
            raise MessageError(f"message type {mtype!r} already registered")
        self._validators[mtype] = validator or (lambda body: None)

    def known(self, mtype: str) -> bool:
        return mtype in self._validators

    def validate(self, message: Message) -> None:
        """Raise MessageError if the message is unknown or invalid."""
        validator = self._validators.get(message.mtype)
        if validator is None:
            raise MessageError(f"unknown message type {message.mtype!r}")
        try:
            validator(message.body)
        except MessageError:
            raise
        except Exception as exc:
            raise MessageError(f"invalid {message.mtype!r} body: {exc}") from exc

    def types(self) -> list[str]:
        return sorted(self._validators)
