"""Portable lingua franca: packet framing, typed messages, transports."""

from .endpoint import SimEndpoint
from .messages import Message, MessageError, TypeRegistry, fresh_req_id
from .packets import PacketDecoder, PacketError, decode_packet, encode_packet
from .tcp import AsyncSender, EventLoop, TcpClient, TcpServer, TransportError

__all__ = [
    "SimEndpoint",
    "Message",
    "MessageError",
    "TypeRegistry",
    "fresh_req_id",
    "PacketDecoder",
    "PacketError",
    "decode_packet",
    "encode_packet",
    "AsyncSender",
    "EventLoop",
    "TcpClient",
    "TcpServer",
    "TransportError",
]
