"""Real TCP transport for the lingua franca.

This is the deployment-grade counterpart of :class:`SimEndpoint`: the same
packet framing (:mod:`.packets`) over actual sockets. Per the paper's
portability discipline (§2.1, §5.1) the implementation is single-threaded
and uses only the most vanilla socket facilities — ``socket``, ``select``
-style readiness via :mod:`selectors`, and receive time-outs; no threads,
no signals, no keep-alives.

:class:`TcpServer` is a reactor: callers pump it with :meth:`step` (or
:meth:`serve`), and a handler callback maps each inbound
:class:`~.messages.Message` to an optional reply sent on the same
connection. :class:`TcpClient` offers fire-and-forget sends and blocking
request/response with a deadline.
"""

from __future__ import annotations

import select
import selectors
import socket
import time
from typing import Callable, Optional

from .messages import Message, MessageError, fresh_req_id
from .packets import PacketDecoder, PacketError

__all__ = ["TcpServer", "TcpClient", "TransportError"]

Handler = Callable[[Message], Optional[Message]]


class TransportError(Exception):
    """Connection-level failure."""


class _Connection:
    """Server-side connection state: an incremental decoder per socket."""

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.decoder = PacketDecoder()
        self.outbuf = bytearray()


class TcpServer:
    """Single-threaded lingua-franca server over TCP."""

    def __init__(self, host: str, port: int, handler: Handler) -> None:
        self.handler = handler
        self._sel = selectors.DefaultSelector()
        self._listen = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listen.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listen.bind((host, port))
        self._listen.listen(16)
        self._listen.setblocking(False)
        self._sel.register(self._listen, selectors.EVENT_READ, None)
        self.address = self._listen.getsockname()
        self.messages_handled = 0
        self.decode_errors = 0
        self._closed = False

    @property
    def contact(self) -> str:
        return f"{self.address[0]}:{self.address[1]}"

    def step(self, timeout: float = 0.1) -> int:
        """Process ready I/O once; returns messages handled this step."""
        if self._closed:
            raise TransportError("server is closed")
        handled = 0
        for key, mask in self._sel.select(timeout):
            if key.data is None:
                self._accept()
            else:
                handled += self._service(key.data, mask)
        return handled

    def serve(self, duration: float, poll: float = 0.05) -> int:
        """Pump the reactor for ``duration`` wall seconds."""
        deadline = time.monotonic() + duration
        handled = 0
        while time.monotonic() < deadline:
            handled += self.step(poll)
        return handled

    def _accept(self) -> None:
        try:
            sock, _addr = self._listen.accept()
        except OSError:
            return
        sock.setblocking(False)
        conn = _Connection(sock)
        self._sel.register(sock, selectors.EVENT_READ, conn)

    def _service(self, conn: _Connection, mask: int) -> int:
        handled = 0
        if mask & selectors.EVENT_READ:
            try:
                data = conn.sock.recv(65536)
            except (BlockingIOError, InterruptedError):
                data = None
            except OSError:
                self._drop(conn)
                return handled
            if data == b"":
                # recv of 0 bytes on a readable socket: peer closed.
                self._drop(conn)
                return handled
            if data:
                conn.decoder.feed(data)
                while True:
                    try:
                        # Zero-copy: the record is parsed straight out of
                        # the stream buffer, no per-packet payload bytes.
                        message = conn.decoder.next_record(Message.from_parts)
                    except MessageError:
                        # Malformed record in a well-framed packet: count
                        # it, keep the connection.
                        self.decode_errors += 1
                        continue
                    except PacketError:
                        # Corrupt stream: the only safe recovery is to
                        # drop it.
                        self.decode_errors += 1
                        self._drop(conn)
                        return handled
                    if message is None:
                        break
                    handled += self._dispatch(conn, message)
        self._flush(conn)
        return handled

    def _dispatch(self, conn: _Connection, message: Message) -> int:
        self.messages_handled += 1
        reply = self.handler(message)
        if reply is not None:
            if reply.reply_to is None:
                reply.reply_to = message.req_id
            if not reply.sender:
                reply.sender = self.contact
            conn.outbuf.extend(reply.encode())
            self._flush(conn)
        return 1

    def _flush(self, conn: _Connection) -> None:
        while conn.outbuf:
            try:
                sent = conn.sock.send(bytes(conn.outbuf))
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                self._drop(conn)
                return
            del conn.outbuf[:sent]

    def _drop(self, conn: _Connection) -> None:
        try:
            self._sel.unregister(conn.sock)
        except (KeyError, ValueError):
            pass
        conn.sock.close()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for key in list(self._sel.get_map().values()):
            try:
                key.fileobj.close()  # type: ignore[union-attr]
            except OSError:
                pass
        self._sel.close()


class TcpClient:
    """Blocking lingua-franca client.

    Fire-and-forget sends (:meth:`send`) keep one cached connection per
    peer and reuse it across calls — chatty live nodes (heartbeats,
    reports, gossip polls) would otherwise pay a connect handshake per
    message. Reuse is *transparent*: a cached connection that has gone
    stale (the peer restarted, the socket was reset) is dropped and
    reopened once, and only a failure on the fresh connection surfaces
    as :class:`TransportError`. Components still assume no connection
    state survives failures — the cache is a driver-level optimization,
    never a protocol guarantee. ``request`` keeps the original
    one-connection-per-call behavior because it awaits the reply on the
    same socket.
    """

    def __init__(self, sender: str = "client", reuse: bool = True) -> None:
        self.sender = sender
        self.reuse = reuse
        self._conns: dict[tuple[str, int], socket.socket] = {}
        self.reconnects = 0

    def _connect(self, host: str, port: int, timeout: float) -> socket.socket:
        try:
            return socket.create_connection((host, port), timeout=timeout)
        except OSError as exc:
            raise TransportError(f"connect to {host}:{port} failed: {exc}") from exc

    def _cached(self, key: tuple[str, int]) -> Optional[socket.socket]:
        """The live cached connection for ``key``, dropping it if the
        peer has already closed its end (readable-at-idle means EOF/RST
        here: servers never write on a fire-and-forget connection)."""
        sock = self._conns.get(key)
        if sock is None:
            return None
        try:
            ready, _, _ = select.select([sock], [], [], 0)
            if ready and not sock.recv(4096):
                raise OSError("peer closed")
        except OSError:
            self._drop(key)
            self.reconnects += 1
            return None
        return sock

    def _drop(self, key: tuple[str, int]) -> None:
        sock = self._conns.pop(key, None)
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def send(self, host: str, port: int, message: Message, timeout: float = 5.0) -> None:
        """Fire-and-forget delivery (cached connection, see class docs)."""
        if not message.sender:
            message.sender = self.sender
        data = message.encode()
        if not self.reuse:
            with self._connect(host, port, timeout) as sock:
                sock.sendall(data)
            return
        key = (host, int(port))
        sock = self._cached(key)
        if sock is not None:
            try:
                sock.settimeout(timeout)
                sock.sendall(data)
                return
            except OSError:
                # Stale connection: reconnect transparently below.
                self._drop(key)
                self.reconnects += 1
        sock = self._connect(host, port, timeout)
        try:
            sock.sendall(data)
        except OSError as exc:
            try:
                sock.close()
            except OSError:
                pass
            raise TransportError(f"send to {host}:{port} failed: {exc}") from exc
        self._conns[key] = sock

    def close(self) -> None:
        """Close every cached connection."""
        for key in list(self._conns):
            self._drop(key)

    def request(
        self, host: str, port: int, message: Message, timeout: float = 5.0
    ) -> Optional[Message]:
        """Send a request, await the correlated reply; None on time-out."""
        if not message.sender:
            message.sender = self.sender
        if message.req_id is None:
            message.req_id = fresh_req_id()
        deadline = time.monotonic() + timeout
        with self._connect(host, port, timeout) as sock:
            sock.sendall(message.encode())
            decoder = PacketDecoder()
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return None
                sock.settimeout(remaining)
                try:
                    data = sock.recv(65536)
                except socket.timeout:
                    return None
                except OSError as exc:
                    raise TransportError(f"recv failed: {exc}") from exc
                if not data:
                    return None
                decoder.feed(data)
                try:
                    while True:
                        reply = decoder.next_record(Message.from_parts)
                        if reply is None:
                            break
                        if reply.reply_to == message.req_id:
                            return reply
                except (PacketError, MessageError) as exc:
                    raise TransportError(f"corrupt reply stream: {exc}") from exc
