"""Real TCP transport for the lingua franca.

This is the deployment-grade counterpart of :class:`SimEndpoint`: the same
packet framing (:mod:`.packets`) over actual sockets. Per the paper's
portability discipline (§2.1, §5.1) the implementation is single-threaded
and uses only the most vanilla socket facilities — ``socket``, ``select``
-style readiness via :mod:`selectors`, and receive time-outs; no threads,
no signals, no keep-alives.

The transport is built around one :class:`EventLoop` (a thin selector
wrapper) that several endpoints can share, so a live node multiplexes its
listening socket, every accepted connection, and every outbound
connection through a single ``select`` call per reactor turn:

* :class:`TcpServer` is a reactor: callers pump it with :meth:`step` (or
  :meth:`serve`), and a handler callback maps each inbound
  :class:`~.messages.Message` to an optional reply sent on the same
  connection. Reads are parsed in place (zero-copy
  ``PacketDecoder.next_record``); replies accumulate in a per-connection
  write queue and leave in one ``sendmsg`` (writev-style) batch per ready
  cycle instead of one ``send`` per packet.
* :class:`AsyncSender` is the non-blocking outbound half: fire-and-forget
  frames are queued per peer and flushed in ``sendmsg`` batches as the
  connection becomes writable, with transparent once-per-failure
  reconnects. Nothing in it ever blocks the reactor.
* :class:`TcpClient` offers the original blocking fire-and-forget sends
  and blocking request/response with a deadline (probes, tests, simple
  tools).

Every socket the module creates — listening-side accepts, blocking client
connects, async outbound connects — sets ``TCP_NODELAY``: the lingua
franca is small-record request/response traffic, exactly the shape
Nagle's algorithm stalls.
"""

from __future__ import annotations

import errno
import select
import selectors
import socket
import time
from collections import deque
from typing import Callable, Optional

from .messages import Message, MessageError, fresh_req_id
from .packets import PacketDecoder, PacketError

__all__ = [
    "EventLoop",
    "TcpServer",
    "TcpClient",
    "AsyncSender",
    "TransportError",
]

Handler = Callable[[Message], Optional[Message]]

#: Buffers handed to one ``sendmsg`` call. IOV_MAX is >= 1024 everywhere
#: we run; 64 keeps each syscall's copy bounded while still amortizing
#: syscall cost ~64x for bursty writers.
SENDMSG_BATCH = 64

#: ``connect_ex`` results that mean "in flight, readiness will tell".
_INPROGRESS = {errno.EINPROGRESS, errno.EWOULDBLOCK, errno.EALREADY}


class TransportError(Exception):
    """Connection-level failure."""


def _nodelay(sock: socket.socket) -> None:
    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    except OSError:  # pragma: no cover - non-TCP/odd platforms
        pass


class EventLoop:
    """A selector shared by every socket of one reactor.

    Callbacks are registered per socket and invoked with the ready mask.
    A callback may unregister *other* sockets (dropping a peer while
    servicing another); the dispatch loop revalidates each key against
    the live map before invoking it.
    """

    def __init__(self) -> None:
        self._sel = selectors.DefaultSelector()
        self._closed = False

    def register(self, sock, events: int, callback) -> None:
        self._sel.register(sock, events, callback)

    def modify(self, sock, events: int, callback) -> None:
        self._sel.modify(sock, events, callback)

    def unregister(self, sock) -> None:
        try:
            self._sel.unregister(sock)
        except (KeyError, ValueError):
            pass

    def step(self, timeout: float = 0.0) -> int:
        """Dispatch one readiness cycle; returns ready-key count."""
        if self._closed:
            raise TransportError("event loop is closed")
        ready = self._sel.select(timeout)
        live = self._sel.get_map()
        for key, mask in ready:
            if live.get(key.fd) is not key:
                continue  # unregistered by an earlier callback this cycle
            key.data(mask)
        return len(ready)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for key in list(self._sel.get_map().values()):
            try:
                key.fileobj.close()  # type: ignore[union-attr]
            except OSError:
                pass
        self._sel.close()


class _Connection:
    """Server-side connection state: an incremental decoder per socket
    plus a frame queue flushed in batched vectored writes."""

    __slots__ = ("sock", "decoder", "out", "want_write", "close_when_flushed")

    def __init__(self, sock: socket.socket, decoder=None) -> None:
        self.sock = sock
        self.decoder = decoder if decoder is not None else PacketDecoder()
        self.out: deque = deque()  # bytes/memoryview frames awaiting flush
        self.want_write = False
        #: Half-close discipline for protocols that end a conversation
        #: (HTTP ``Connection: close``, protocol errors): the reactor
        #: finishes flushing the queue, then drops the connection.
        self.close_when_flushed = False


class TcpServer:
    """Single-threaded lingua-franca server over TCP.

    Pass ``loop=`` to multiplex the listener and its connections on a
    shared :class:`EventLoop` (the NetDriver does); without it the server
    owns a private loop and :meth:`step` pumps it.
    """

    def __init__(
        self,
        host: str,
        port: int,
        handler: Handler,
        loop: Optional[EventLoop] = None,
        backlog: int = 1024,
        raw_handler: Optional[Callable[[str, memoryview], bytes]] = None,
        decoder_factory: Optional[Callable[[], object]] = None,
    ) -> None:
        self.handler = handler
        #: Transport-level fast path: when set, inbound records bypass
        #: Message parsing entirely — ``raw_handler(mtype, payload_view)``
        #: returns the reply *frame bytes* to queue (b"" for none). For
        #: relay-style services (and the transport benchmark) that don't
        #: need message semantics. The view is only valid for the call.
        self.raw_handler = raw_handler
        #: Per-connection wire parser. The default is the lingua franca's
        #: CRC-framed :class:`PacketDecoder`; subclasses serving another
        #: wire protocol on the same reactor (the HTTP gateway) install
        #: their own incremental decoder and override :meth:`_service`.
        self._decoder_factory = decoder_factory or PacketDecoder
        self._loop = loop if loop is not None else EventLoop()
        self._owns_loop = loop is None
        self._listen = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listen.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listen.bind((host, port))
        self._listen.listen(backlog)
        self._listen.setblocking(False)
        self._loop.register(self._listen, selectors.EVENT_READ,
                            self._on_accept)
        self.address = self._listen.getsockname()
        self._conns: set[_Connection] = set()
        self.messages_handled = 0
        self.decode_errors = 0
        #: Syscall-batching meters: frames queued vs vectored flushes.
        self.frames_sent = 0
        self.flush_batches = 0
        self._step_handled = 0
        self._closed = False

    @property
    def contact(self) -> str:
        return f"{self.address[0]}:{self.address[1]}"

    @property
    def connections(self) -> int:
        return len(self._conns)

    def step(self, timeout: float = 0.1) -> int:
        """Process ready I/O once; returns messages handled this step.

        Only meaningful for a server that owns its loop — with a shared
        loop the owner pumps, and this pumps the shared loop too.
        """
        if self._closed:
            raise TransportError("server is closed")
        self._step_handled = 0
        self._loop.step(timeout)
        return self._step_handled

    def serve(self, duration: float, poll: float = 0.05) -> int:
        """Pump the reactor for ``duration`` wall seconds."""
        deadline = time.monotonic() + duration
        handled = 0
        while time.monotonic() < deadline:
            handled += self.step(poll)
        return handled

    # -- accept/read/dispatch ----------------------------------------------
    def _on_accept(self, mask: int) -> None:
        # Accept everything pending: under a connection storm one ready
        # event may stand for hundreds of queued handshakes, and one
        # accept per select() turns the backlog into a latency cliff.
        # (``_accept`` stays a separate zero-arg method — tests wrap it
        # to count inbound connections.)
        while self._accept():
            pass

    def _accept(self) -> bool:
        """Accept one pending connection; False when none is pending."""
        try:
            sock, _addr = self._listen.accept()
        except (BlockingIOError, InterruptedError, OSError):
            return False
        sock.setblocking(False)
        _nodelay(sock)
        conn = _Connection(sock, self._decoder_factory())
        self._conns.add(conn)
        self._loop.register(
            sock, selectors.EVENT_READ,
            lambda mask, conn=conn: self._on_conn(conn, mask))
        return True

    def _on_conn(self, conn: _Connection, mask: int) -> None:
        if mask & selectors.EVENT_WRITE:
            if not self._flush(conn):
                return  # connection dropped mid-flush
        if not (mask & selectors.EVENT_READ):
            return
        try:
            data = conn.sock.recv(262144)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._drop(conn)
            return
        if not data:
            # recv of 0 bytes on a readable socket: peer closed.
            self._drop(conn)
            return
        conn.decoder.feed(data)
        self._service(conn)

    def _service(self, conn: _Connection) -> None:
        """Drain every complete buffered record and queue replies.

        Subclasses speaking another wire protocol (HTTP) override this
        together with ``decoder_factory``; the accept/read/flush/drop
        machinery is protocol-agnostic and shared.
        """
        if self.raw_handler is not None:
            self._service_raw(conn)
            return
        while True:
            try:
                # Zero-copy: the record is parsed straight out of the
                # stream buffer, no per-packet payload bytes.
                message = conn.decoder.next_record(Message.from_parts)
            except MessageError:
                # Malformed record in a well-framed packet: count it,
                # keep the connection.
                self.decode_errors += 1
                continue
            except PacketError:
                # Corrupt stream: the only safe recovery is to drop it.
                self.decode_errors += 1
                self._drop(conn)
                return
            if message is None:
                break
            self._dispatch(conn, message)
        # One batched flush for every reply this ready cycle produced.
        self._flush(conn)

    def _service_raw(self, conn: _Connection) -> None:
        raw = self.raw_handler
        decoder = conn.decoder
        out = conn.out
        while True:
            try:
                reply = decoder.next_record(raw)
            except PacketError:
                self.decode_errors += 1
                self._drop(conn)
                return
            if reply is None:
                break
            self.messages_handled += 1
            self._step_handled += 1
            if reply:
                out.append(reply)
        self._flush(conn)

    def _dispatch(self, conn: _Connection, message: Message) -> None:
        self.messages_handled += 1
        self._step_handled += 1
        reply = self.handler(message)
        if reply is not None:
            if reply.reply_to is None:
                reply.reply_to = message.req_id
            if not reply.sender:
                reply.sender = self.contact
            conn.out.append(reply.encode())

    def _flush(self, conn: _Connection) -> bool:
        """Vectored flush of the connection's frame queue; False if the
        connection died. Registers/unregisters write interest so an
        unwritable peer never busy-loops the reactor."""
        out = conn.out
        sock = conn.sock
        while out:
            batch = [out[i] for i in range(min(len(out), SENDMSG_BATCH))]
            try:
                sent = sock.sendmsg(batch)
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                self._drop(conn)
                return False
            self.flush_batches += 1
            while sent and out:
                head = out[0]
                if sent >= len(head):
                    sent -= len(head)
                    out.popleft()
                    self.frames_sent += 1
                else:
                    out[0] = memoryview(head)[sent:]
                    sent = 0
        want = bool(out)
        if not want and conn.close_when_flushed:
            self._drop(conn)
            return False
        if want and not conn.want_write:
            conn.want_write = True
            self._loop.modify(
                sock, selectors.EVENT_READ | selectors.EVENT_WRITE,
                lambda mask, conn=conn: self._on_conn(conn, mask))
        elif not want and conn.want_write:
            conn.want_write = False
            self._loop.modify(
                sock, selectors.EVENT_READ,
                lambda mask, conn=conn: self._on_conn(conn, mask))
        return True

    def _drop(self, conn: _Connection) -> None:
        self._conns.discard(conn)
        self._loop.unregister(conn.sock)
        try:
            conn.sock.close()
        except OSError:
            pass

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._owns_loop:
            self._loop.close()
            return
        # Shared loop: withdraw only this server's sockets.
        for conn in list(self._conns):
            self._drop(conn)
        self._loop.unregister(self._listen)
        try:
            self._listen.close()
        except OSError:
            pass


class _Frame:
    """One queued outbound frame with its forecasting bookkeeping."""

    __slots__ = ("data", "tag", "t0", "deadline")

    def __init__(self, data, tag: Optional[str], t0: float,
                 deadline: float) -> None:
        self.data = data
        self.tag = tag
        self.t0 = t0
        self.deadline = deadline


class _Peer:
    """Outbound connection state for one destination."""

    __slots__ = ("key", "sock", "out", "connected", "want_write",
                 "reconnected")

    def __init__(self, key: tuple[str, int]) -> None:
        self.key = key
        self.sock: Optional[socket.socket] = None
        self.out: deque[_Frame] = deque()
        self.connected = False
        self.want_write = False
        #: One transparent reconnect per connection incarnation: a stale
        #: cached connection is retried once on a fresh socket, and only
        #: a failure on the fresh connection surfaces as errors.
        self.reconnected = False


class AsyncSender:
    """Non-blocking fire-and-forget sends multiplexed on an event loop.

    One cached connection per peer, a per-peer outbound frame queue, and
    batched ``sendmsg`` flushes: a reactor that fans out to hundreds of
    peers (or pushes thousands of frames to one) spends one syscall per
    ready cycle per peer, not one per packet.

    Failure semantics match the fire-and-forget contract the drivers
    already rely on: unreachable peers cost ``errors`` (one per frame),
    never an exception; recovery is the caller's time-out/retry ladder.
    ``observer(tag, seconds)`` is called as each frame is handed to the
    kernel, feeding measured queue+connect+write time back into the
    forecast-driven time-out policy.
    """

    def __init__(
        self,
        loop: EventLoop,
        sender: str = "async",
        observer: Optional[Callable[[Optional[str], float], None]] = None,
    ) -> None:
        self._loop = loop
        self.sender = sender
        self.observer = observer
        self._peers: dict[tuple[str, int], _Peer] = {}
        self.sent = 0
        self.errors = 0
        self.reconnects = 0
        self.flush_batches = 0
        self._closed = False

    # -- public API ---------------------------------------------------------
    def pending(self) -> int:
        return sum(len(p.out) for p in self._peers.values())

    def post(self, host: str, port: int, message: Message,
             timeout: float = 5.0, tag: Optional[str] = None) -> None:
        """Queue one message for delivery; never blocks, never raises."""
        if not message.sender:
            message.sender = self.sender
        self.post_bytes(host, int(port), message.encode(), timeout, tag)

    def post_bytes(self, host: str, port: int, data: bytes,
                   timeout: float = 5.0, tag: Optional[str] = None) -> None:
        if self._closed:
            self.errors += 1
            return
        key = (host, int(port))
        now = time.monotonic()
        peer = self._peers.get(key)
        if peer is None:
            peer = self._peers[key] = _Peer(key)
        peer.out.append(_Frame(data, tag, now, now + timeout))
        if peer.sock is None:
            if not self._connect(peer):
                return
        # Coalescing: don't transmit per post. Arm write interest so the
        # next loop turn (or the next service() call) flushes everything
        # queued for this peer as one batched sendmsg — a burst of posts
        # between reactor turns costs one syscall, not one each.
        self._want_write(peer, True)

    def service(self, _now: Optional[float] = None) -> None:
        """Flush queued frames and expire frames stuck past their
        deadline (peer wedged or the connect never resolving). Call once
        per reactor turn."""
        now = time.monotonic()
        for peer in list(self._peers.values()):
            if peer.out and peer.out[0].deadline < now:
                self._fail_peer(peer, drop_frames=True)
            elif peer.out and peer.connected:
                self._flush(peer)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for peer in list(self._peers.values()):
            # Frames still queued at close were never delivered: count
            # them so fire-and-forget callers see deterministic error
            # accounting (flush first if delivery matters).
            self.errors += len(peer.out)
            self._teardown(peer)
        self._peers.clear()

    # -- connection management ----------------------------------------------
    def _connect(self, peer: _Peer) -> bool:
        """Start a non-blocking connect; False when it failed outright."""
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setblocking(False)
        _nodelay(sock)
        try:
            err = sock.connect_ex(peer.key)
        except OSError as exc:
            err = exc.errno or errno.EINVAL
        if err == 0:
            peer.sock = sock
            peer.connected = True
            self._register(peer)
            return True
        if err in _INPROGRESS:
            peer.sock = sock
            peer.connected = False
            self._register(peer, want_write=True)
            return True
        try:
            sock.close()
        except OSError:
            pass
        self._fail_peer(peer, drop_frames=True)
        return False

    def _register(self, peer: _Peer, want_write: bool = False) -> None:
        events = selectors.EVENT_READ
        if want_write or peer.out:
            events |= selectors.EVENT_WRITE
        peer.want_write = bool(events & selectors.EVENT_WRITE)
        self._loop.register(
            peer.sock, events,
            lambda mask, peer=peer: self._on_ready(peer, mask))

    def _want_write(self, peer: _Peer, want: bool) -> None:
        if peer.sock is None or peer.want_write == want:
            return
        peer.want_write = want
        events = selectors.EVENT_READ
        if want:
            events |= selectors.EVENT_WRITE
        self._loop.modify(
            peer.sock, events,
            lambda mask, peer=peer: self._on_ready(peer, mask))

    def _on_ready(self, peer: _Peer, mask: int) -> None:
        if peer.sock is None:
            return
        if not peer.connected and mask & selectors.EVENT_WRITE:
            err = peer.sock.getsockopt(socket.SOL_SOCKET, socket.SO_ERROR)
            if err:
                self._fail_peer(peer, drop_frames=True)
                return
            peer.connected = True
            peer.reconnected = False
        if mask & selectors.EVENT_READ and peer.connected:
            # Peers never talk back on a fire-and-forget connection:
            # readable means EOF/RST (the peer restarted or rebooted).
            try:
                data = peer.sock.recv(4096)
            except (BlockingIOError, InterruptedError):
                data = b"x"
            except OSError:
                data = b""
            if not data:
                self._stale(peer)
                return
        if peer.connected and peer.out:
            self._flush(peer)
        elif peer.connected:
            self._want_write(peer, False)

    def _stale(self, peer: _Peer) -> None:
        """An established connection died under us. Reconnect once with
        the queue intact; a second failure fails the frames."""
        had_frames = bool(peer.out)
        self._teardown(peer, keep_frames=True)
        if not had_frames:
            if not peer.reconnected:
                # Idle cache entry went stale: forget it; the next post
                # reconnects naturally.
                self._peers.pop(peer.key, None)
            return
        if peer.reconnected:
            self._fail_peer(peer, drop_frames=True)
            return
        peer.reconnected = True
        self.reconnects += 1
        self._connect(peer)

    def _fail_peer(self, peer: _Peer, drop_frames: bool) -> None:
        if drop_frames and peer.out:
            self.errors += len(peer.out)
            peer.out.clear()
        self._teardown(peer, keep_frames=not drop_frames)
        self._peers.pop(peer.key, None)

    def _teardown(self, peer: _Peer, keep_frames: bool = False) -> None:
        if peer.sock is not None:
            self._loop.unregister(peer.sock)
            try:
                peer.sock.close()
            except OSError:
                pass
            peer.sock = None
        peer.connected = False
        peer.want_write = False
        if not keep_frames:
            peer.out.clear()

    # -- flushing -------------------------------------------------------------
    def _flush(self, peer: _Peer) -> None:
        out = peer.out
        sock = peer.sock
        while out:
            batch = [out[i].data for i in range(min(len(out), SENDMSG_BATCH))]
            try:
                sent = sock.sendmsg(batch)
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                self._stale(peer)
                return
            self.flush_batches += 1
            now = None
            while sent and out:
                head = out[0]
                if sent >= len(head.data):
                    sent -= len(head.data)
                    out.popleft()
                    self.sent += 1
                    if self.observer is not None:
                        if now is None:
                            now = time.monotonic()
                        self.observer(head.tag, now - head.t0)
                else:
                    head.data = memoryview(head.data)[sent:]
                    sent = 0
        self._want_write(peer, bool(out))


class TcpClient:
    """Blocking lingua-franca client.

    Fire-and-forget sends (:meth:`send`) keep one cached connection per
    peer and reuse it across calls — chatty live nodes (heartbeats,
    reports, gossip polls) would otherwise pay a connect handshake per
    message. Reuse is *transparent*: a cached connection that has gone
    stale (the peer restarted, the socket was reset) is dropped and
    reopened once, and only a failure on the fresh connection surfaces
    as :class:`TransportError`. Components still assume no connection
    state survives failures — the cache is a driver-level optimization,
    never a protocol guarantee. ``request`` keeps the original
    one-connection-per-call behavior because it awaits the reply on the
    same socket.

    Every connection (fresh or reconnected) runs with ``TCP_NODELAY``:
    request/response records are small, and Nagle-vs-delayed-ACK would
    add an RTT-scale stall per exchange.
    """

    def __init__(self, sender: str = "client", reuse: bool = True) -> None:
        self.sender = sender
        self.reuse = reuse
        self._conns: dict[tuple[str, int], socket.socket] = {}
        self.reconnects = 0

    def _connect(self, host: str, port: int, timeout: float) -> socket.socket:
        try:
            sock = socket.create_connection((host, port), timeout=timeout)
        except OSError as exc:
            raise TransportError(f"connect to {host}:{port} failed: {exc}") from exc
        _nodelay(sock)
        return sock

    def _cached(self, key: tuple[str, int]) -> Optional[socket.socket]:
        """The live cached connection for ``key``, dropping it if the
        peer has already closed its end (readable-at-idle means EOF/RST
        here: servers never write on a fire-and-forget connection)."""
        sock = self._conns.get(key)
        if sock is None:
            return None
        try:
            ready, _, _ = select.select([sock], [], [], 0)
            if ready and not sock.recv(4096):
                raise OSError("peer closed")
        except OSError:
            self._drop(key)
            self.reconnects += 1
            return None
        return sock

    def _drop(self, key: tuple[str, int]) -> None:
        sock = self._conns.pop(key, None)
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def send(self, host: str, port: int, message: Message, timeout: float = 5.0) -> None:
        """Fire-and-forget delivery (cached connection, see class docs)."""
        if not message.sender:
            message.sender = self.sender
        data = message.encode()
        if not self.reuse:
            with self._connect(host, port, timeout) as sock:
                sock.sendall(data)
            return
        key = (host, int(port))
        sock = self._cached(key)
        if sock is not None:
            try:
                sock.settimeout(timeout)
                sock.sendall(data)
                return
            except OSError:
                # Stale connection: reconnect transparently below.
                self._drop(key)
                self.reconnects += 1
        sock = self._connect(host, port, timeout)
        try:
            sock.sendall(data)
        except OSError as exc:
            try:
                sock.close()
            except OSError:
                pass
            raise TransportError(f"send to {host}:{port} failed: {exc}") from exc
        self._conns[key] = sock

    def close(self) -> None:
        """Close every cached connection."""
        for key in list(self._conns):
            self._drop(key)

    def request(
        self, host: str, port: int, message: Message, timeout: float = 5.0
    ) -> Optional[Message]:
        """Send a request, await the correlated reply; None on time-out."""
        if not message.sender:
            message.sender = self.sender
        if message.req_id is None:
            message.req_id = fresh_req_id()
        deadline = time.monotonic() + timeout
        with self._connect(host, port, timeout) as sock:
            sock.sendall(message.encode())
            decoder = PacketDecoder()
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return None
                sock.settimeout(remaining)
                try:
                    data = sock.recv(65536)
                except socket.timeout:
                    return None
                except OSError as exc:
                    raise TransportError(f"recv failed: {exc}") from exc
                if not data:
                    return None
                decoder.feed(data)
                try:
                    while True:
                        reply = decoder.next_record(Message.from_parts)
                        if reply is None:
                            break
                        if reply.reply_to == message.req_id:
                            return reply
                except (PacketError, MessageError) as exc:
                    raise TransportError(f"corrupt reply stream: {exc}") from exc
