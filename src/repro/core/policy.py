"""Stack-wide retry/timeout/backoff policies (§2.2 applied uniformly).

The paper credits *dynamic time-out discovery* — forecast the response
time of each tagged program event, scale it by a safety multiplier — for
much of EveryWare's stability, and every SC98 service coped with loss by
retransmitting until an acknowledgement arrived. Before this module each
component re-implemented that recovery ad hoc (bare ``SetTimer`` retry
loops in the task farm, Gossip agent, Ramsey client). Now a
:class:`~repro.core.component.Send` effect may carry a
:class:`RetryPolicy`, and the *driver* (``SimDriver`` / ``NetDriver``)
owns the retransmission machinery:

* the per-attempt reply deadline comes from a :class:`TimeoutPolicy`
  (static, or forecast-driven through a
  :class:`~repro.core.forecasting.benchmarking.ForecastRegistry`);
* failed attempts back off exponentially with jitter drawn from the
  driver's deterministic RNG stream;
* when the policy gives up, the component hears about it exactly once
  through :meth:`Component.on_send_failed` and decides what to do
  (rotate to another server, requeue, log).

Both drivers share :class:`ReliableSendTracker`, the sans-IO bookkeeping
core: it never touches sockets or simulated mailboxes, it only tracks
deadlines and tells the driver *resend* or *give up*.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional, Union

from .forecasting.benchmarking import ForecastRegistry, event_tag
from .telemetry import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (component->policy)
    from .component import Send

__all__ = ["TimeoutPolicy", "RetryPolicy", "ReliableSendTracker", "PendingSend"]


@dataclass(frozen=True)
class TimeoutPolicy:
    """How long to wait for a reply to a tagged request.

    Two flavors, matching ablation A1:

    * :meth:`static` — a fixed value, the pre-EveryWare default;
    * :meth:`forecast` — the paper's dynamic time-out discovery:
      ``forecast(tag) x multiplier`` clamped to ``[floor, ceiling]``,
      falling back to ``default`` before any history exists.

    The policy is immutable; the mutable forecast history lives in the
    attached :class:`ForecastRegistry` (shared freely between policies).
    """

    default: float = 10.0
    multiplier: float = 4.0
    floor: float = 0.5
    ceiling: float = 120.0
    registry: Optional[ForecastRegistry] = None

    @classmethod
    def static(cls, value: float) -> "TimeoutPolicy":
        """A fixed time-out, regardless of history."""
        return cls(default=float(value), registry=None)

    @classmethod
    def forecast(
        cls,
        registry: Optional[ForecastRegistry] = None,
        multiplier: float = 4.0,
        default: float = 10.0,
        floor: float = 0.5,
        ceiling: float = 120.0,
    ) -> "TimeoutPolicy":
        """Forecast-driven time-outs over ``registry`` (fresh if omitted)."""
        return cls(
            default=default,
            multiplier=multiplier,
            floor=floor,
            ceiling=ceiling,
            registry=registry if registry is not None else ForecastRegistry(),
        )

    @property
    def dynamic(self) -> bool:
        return self.registry is not None

    def timeout_for(self, tag: Optional[str] = None) -> float:
        """The current time-out for ``tag`` (the static value when no
        registry is attached or no tag is given)."""
        if self.registry is None or tag is None:
            return self.default
        return self.registry.timeout(
            tag,
            multiplier=self.multiplier,
            default=self.default,
            floor=self.floor,
            ceiling=self.ceiling,
        )

    def observe(self, tag: str, value: float) -> None:
        """Feed one measured response time into the forecast history
        (no-op for static policies)."""
        if self.registry is not None:
            self.registry.record(tag, value)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retransmission with exponential backoff and jitter.

    ``interval(attempt, timeout, rand)`` is how long to wait for attempt
    number ``attempt`` (1-based): the reply time-out scaled by
    ``backoff**(attempt-1)``, clamped to ``max_interval``, then jittered
    by ±``jitter`` using ``rand`` drawn from the driver's deterministic
    stream. After ``max_attempts`` unanswered attempts the driver stops
    retransmitting and delivers the give-up to the component.
    """

    max_attempts: int = 4
    backoff: float = 2.0
    jitter: float = 0.25
    max_interval: float = 120.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")

    def should_retry(self, attempt: int) -> bool:
        """May another attempt follow attempt number ``attempt``?"""
        return attempt < self.max_attempts

    def interval(self, attempt: int, timeout: float, rand: float = 0.5) -> float:
        """Wait before declaring attempt ``attempt`` (1-based) lost."""
        base = min(timeout * self.backoff ** (attempt - 1), self.max_interval)
        if self.jitter > 0.0:
            base *= 1.0 + self.jitter * (2.0 * rand - 1.0)
        return max(base, 0.0)


class PendingSend:
    """One reliable send awaiting its correlated reply.

    ``span`` is the tracing driver's open "call" span for the request
    (``None`` when tracing is disabled): retransmits attach to it as
    children and the driver closes it on resolve/give-up.
    """

    __slots__ = ("eff", "tag", "attempt", "deadline", "last_sent", "span")

    def __init__(self, eff: "Send", tag: str, now: float) -> None:
        self.eff = eff
        self.tag = tag
        self.attempt = 1
        self.deadline = 0.0
        self.last_sent = now
        self.span = None


class ReliableSendTracker:
    """Driver-side bookkeeping for ``Send`` effects carrying a policy.

    The driver calls :meth:`track` when it transmits a reliable send,
    :meth:`resolve` when any message with a matching ``reply_to``
    arrives, and :meth:`due` from its timer machinery; :meth:`due` hands
    back ``("resend", pending)`` / ``("give_up", pending)`` actions and
    the driver does the I/O. Deadlines merge into the driver's existing
    timer wheel through :meth:`next_deadline`.
    """

    def __init__(
        self,
        timeout_policy: TimeoutPolicy,
        rand: Callable[[], float],
        metrics: Optional["MetricsRegistry"] = None,
    ) -> None:
        self.timeout_policy = timeout_policy
        self._rand = rand
        self._pending: dict[int, PendingSend] = {}
        # Correlation is per sender (replies come back to the driver that
        # issued the request), so req_ids only need to be unique within
        # one tracker. A per-instance counter — unlike the process-wide
        # ``fresh_req_id`` used by the real TCP transport — keeps wire
        # bytes, and hence simulated transfer times, identical across
        # repeated same-seed runs in one process.
        self._next_req = itertools.count(1)
        self.tracked = 0
        self.retries = 0
        self.resolved = 0
        self.give_ups = 0
        #: Optional world metrics registry: mirrors the counters above
        #: onto the scrapeable surface and records forecast error.
        self.metrics = metrics

    def __len__(self) -> int:
        return len(self._pending)

    def track(self, eff: "Send", now: float) -> PendingSend:
        """Start tracking a reliable send (assigns a ``req_id`` so the
        reply can be correlated; the caller transmits the message).
        Returns the new :class:`PendingSend` so a tracing driver can
        attach its call span."""
        message = eff.message
        if message.req_id is None:
            message.req_id = next(self._next_req)
        pending = PendingSend(eff, event_tag(eff.dst, message.mtype), now)
        pending.deadline = now + self._interval(pending)
        self._pending[message.req_id] = pending
        self.tracked += 1
        if self.metrics is not None:
            self.metrics.counter("reliable.tracked").inc()
        return pending

    def _interval(self, pending: PendingSend) -> float:
        timeout: Union[TimeoutPolicy, float, None] = pending.eff.timeout
        if timeout is None:
            base = self.timeout_policy.timeout_for(pending.tag)
        elif isinstance(timeout, TimeoutPolicy):
            base = timeout.timeout_for(pending.tag)
        else:
            base = float(timeout)
        assert pending.eff.retry is not None
        return pending.eff.retry.interval(pending.attempt, base, float(self._rand()))

    def resolve(self, reply_to: Optional[int], now: float) -> Optional[PendingSend]:
        """A reply correlated to ``reply_to`` arrived; stop retrying and
        feed the measured response time back into the timeout policy."""
        if reply_to is None or not self._pending:
            return None
        pending = self._pending.pop(reply_to, None)
        if pending is None:
            return None
        self.resolved += 1
        rtt = max(now - pending.last_sent, 0.0)
        if self.metrics is not None:
            self.metrics.counter("reliable.resolved").inc()
            # Forecast error: compare the measured response time against
            # what the dynamic-benchmark history predicted *before* this
            # observation is folded in (§2.2 time-out discovery quality).
            registry = self.timeout_policy.registry
            if registry is not None:
                fc = registry.forecast(pending.tag)
                if fc is not None:
                    self.metrics.histogram("forecast.abs_error").observe(
                        abs(rtt - fc.value))
        self.timeout_policy.observe(pending.tag, rtt)
        return pending

    def next_deadline(self) -> Optional[float]:
        if not self._pending:
            return None
        return min(p.deadline for p in self._pending.values())

    def due(self, now: float) -> list[tuple[str, PendingSend]]:
        """Expired attempts, in deterministic (req_id) order."""
        if not self._pending:
            return []
        actions: list[tuple[str, PendingSend]] = []
        for req_id in sorted(self._pending):
            pending = self._pending[req_id]
            if pending.deadline > now:
                continue
            assert pending.eff.retry is not None
            if pending.eff.retry.should_retry(pending.attempt):
                pending.attempt += 1
                pending.last_sent = now
                pending.deadline = now + self._interval(pending)
                self.retries += 1
                if self.metrics is not None:
                    self.metrics.counter("reliable.retries").inc()
                actions.append(("resend", pending))
            else:
                del self._pending[req_id]
                self.give_ups += 1
                if self.metrics is not None:
                    self.metrics.counter("reliable.give_ups").inc()
                actions.append(("give_up", pending))
        return actions
