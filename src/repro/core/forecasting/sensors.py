"""NWS-style network sensors (the "NWS" box in Figure 1).

The Network Weather Service the paper leans on [39, 38] runs sensor
processes that periodically measure network performance between Grid
sites and serve short-term forecasts of it. :class:`NWSSensor` is that
process as an EveryWare component: it probes its peers on a period,
feeds round-trip measurements into the forecaster bank, answers
``NWS_QUERY`` with the current forecast, and — true to the NWS clique
heritage — keeps measuring whatever subset of peers remains reachable.

Application components (e.g. schedulers choosing where to migrate work)
can either embed their own :class:`~.benchmarking.ForecastRegistry`
(EveryWare's *dynamic benchmarking*, used by the Gossip/scheduler code)
or query a sensor mesh like this one for resource-level forecasts.
"""

from __future__ import annotations

import itertools
from typing import Optional

from ..component import Component, Effect, Send, SetTimer
from ..linguafranca.messages import Message
from .benchmarking import EventTimer, ForecastRegistry, event_tag
from .selector import Forecast

__all__ = ["NWSSensor", "NWS_PING", "NWS_PONG", "NWS_QUERY", "NWS_FORECAST"]

NWS_PING = "NWS_PING"
NWS_PONG = "NWS_PONG"
NWS_QUERY = "NWS_QUERY"
NWS_FORECAST = "NWS_FORECAST"

T_PROBE = "nws:probe"


class NWSSensor(Component):
    """One sensor in a mesh measuring peer-to-peer response times."""

    def __init__(self, name: str, peers: list[str], probe_period: float = 30.0) -> None:
        super().__init__(name)
        self.peers = list(peers)
        self.probe_period = probe_period
        self.registry = ForecastRegistry()
        self.timer = EventTimer(self.registry)
        self._seq = itertools.count(1)
        self.probes_sent = 0
        self.pongs_received = 0
        self.queries_served = 0

    # -- measurement ------------------------------------------------------------
    def on_start(self, now: float) -> list[Effect]:
        return [SetTimer(T_PROBE, self.probe_period)]

    def on_timer(self, key: str, now: float) -> list[Effect]:
        if key != T_PROBE:
            return []
        effects: list[Effect] = [SetTimer(T_PROBE, self.probe_period)]
        for peer in self.peers:
            if peer == self.contact:
                continue
            seq = next(self._seq)
            tag = event_tag(peer, "RTT")
            # One outstanding probe per peer: a lost probe is abandoned,
            # never recorded (losses surface as missing samples, as in NWS).
            self.timer.abandon(tag)
            self.timer.begin(tag, now, token=None)
            self._pending_seq = seq
            self.probes_sent += 1
            effects.append(Send(peer, Message(
                mtype=NWS_PING, sender=self.contact, body={"seq": seq})))
        return effects

    def on_message(self, message: Message, now: float) -> list[Effect]:
        if message.mtype == NWS_PING:
            return [Send(message.sender, Message(
                mtype=NWS_PONG, sender=self.contact,
                body={"seq": message.body.get("seq")}))]
        if message.mtype == NWS_PONG:
            tag = event_tag(message.sender, "RTT")
            if self.timer.end(tag, now) is not None:
                self.pongs_received += 1
            return []
        if message.mtype == NWS_QUERY:
            return self._serve_query(message, now)
        return []

    # -- forecast service ------------------------------------------------------
    def forecast_for(self, peer: str) -> Optional[Forecast]:
        """Local accessor: current RTT forecast toward ``peer``."""
        return self.registry.forecast(event_tag(peer, "RTT"))

    def _serve_query(self, message: Message, now: float) -> list[Effect]:
        self.queries_served += 1
        peer = message.body.get("peer")
        fc = self.forecast_for(peer) if isinstance(peer, str) else None
        body: dict = {"peer": peer}
        if fc is None:
            body["value"] = None
        else:
            body.update(value=fc.value, method=fc.method,
                        mae=fc.mae, samples=fc.samples)
        return [Send(message.sender, message.reply(
            NWS_FORECAST, sender=self.contact, body=body))]
