"""Adaptive forecaster selection (the heart of the NWS methodology).

For every measurement stream, all forecasters in the bank predict the next
value; when it arrives, each method's error is accumulated, and forecasts
are served by the method with the lowest mean absolute error *so far*
(§2.2: the NWS "dynamically chooses the technique that yields the greatest
forecasting accuracy over time").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from .forecasters import Forecaster, default_bank

__all__ = ["Forecast", "ForecasterBank"]


@dataclass
class Forecast:
    """A served prediction plus provenance and error estimates."""

    value: float
    method: str
    mae: float  # mean absolute error of the winning method so far
    mse: float
    samples: int


class ForecasterBank:
    """A bank of competing forecasters over one measurement stream."""

    def __init__(self, forecasters: Optional[Sequence[Forecaster]] = None) -> None:
        self._forecasters = list(forecasters) if forecasters is not None else default_bank()
        if not self._forecasters:
            raise ValueError("bank needs at least one forecaster")
        names = [f.name for f in self._forecasters]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate forecaster names in bank: {names}")
        self._abs_err = {f.name: 0.0 for f in self._forecasters}
        self._sq_err = {f.name: 0.0 for f in self._forecasters}
        self._err_n = {f.name: 0 for f in self._forecasters}
        self._n = 0
        self._last_value: Optional[float] = None

    @property
    def samples(self) -> int:
        return self._n

    @property
    def last_value(self) -> Optional[float]:
        return self._last_value

    def update(self, value: float) -> None:
        """Observe a measurement: score every method's pending prediction
        against it, then let each method absorb it."""
        for f in self._forecasters:
            pred = f.forecast()
            if pred is not None:
                self._abs_err[f.name] += abs(pred - value)
                self._sq_err[f.name] += (pred - value) ** 2
                self._err_n[f.name] += 1
            f.update(value)
        self._n += 1
        self._last_value = value

    def _winner(self) -> Optional[Forecaster]:
        best: Optional[Forecaster] = None
        best_mae = float("inf")
        for f in self._forecasters:
            n = self._err_n[f.name]
            if f.forecast() is None:
                continue
            # Methods that have never been scored rank behind scored ones
            # but remain eligible (cold start).
            mae = self._abs_err[f.name] / n if n else float("inf")
            if mae < best_mae or best is None:
                best = f
                best_mae = mae
        return best

    def forecast(self) -> Optional[Forecast]:
        """Serve the current winner's prediction; None with no history."""
        f = self._winner()
        if f is None:
            return None
        value = f.forecast()
        assert value is not None
        n = self._err_n[f.name]
        return Forecast(
            value=value,
            method=f.name,
            mae=self._abs_err[f.name] / n if n else float("inf"),
            mse=self._sq_err[f.name] / n if n else float("inf"),
            samples=self._n,
        )

    def errors(self) -> dict[str, float]:
        """Per-method MAE so far (inf for never-scored methods)."""
        out = {}
        for f in self._forecasters:
            n = self._err_n[f.name]
            out[f.name] = self._abs_err[f.name] / n if n else float("inf")
        return out
