"""Dynamic benchmarking: tagged program events fed to forecaster banks.

The paper instruments "arbitrary but repetitive program events" with
timing primitives and passes the timings to the forecasting modules
(§2.2). Each event stream is identified by a *tag* — in EveryWare, the
pair ``(server address, message type)`` for request-response events — and
gets its own :class:`~.selector.ForecasterBank`.

:meth:`ForecastRegistry.timeout` is the *dynamic time-out discovery* the
paper credits with overall program stability: the message time-out is the
forecast response time scaled by a safety multiplier, clamped to sane
bounds, with a default before any history exists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Optional, Sequence

from .forecasters import Forecaster
from .selector import Forecast, ForecasterBank

__all__ = ["EventTimer", "ForecastRegistry", "event_tag"]


def event_tag(address: str, mtype: str) -> str:
    """The canonical tag for a request-response event stream."""
    return f"{address}#{mtype}"


class ForecastRegistry:
    """Keyed collection of forecaster banks."""

    def __init__(
        self, bank_factory: Optional[Callable[[], Sequence[Forecaster]]] = None
    ) -> None:
        self._bank_factory = bank_factory
        self._banks: dict[Hashable, ForecasterBank] = {}

    def bank(self, tag: Hashable) -> ForecasterBank:
        b = self._banks.get(tag)
        if b is None:
            forecasters = self._bank_factory() if self._bank_factory else None
            b = ForecasterBank(forecasters)
            self._banks[tag] = b
        return b

    def record(self, tag: Hashable, value: float) -> None:
        """Feed one measurement into the tag's bank."""
        self.bank(tag).update(value)

    def forecast(self, tag: Hashable) -> Optional[Forecast]:
        b = self._banks.get(tag)
        return b.forecast() if b is not None else None

    def timeout(
        self,
        tag: Hashable,
        multiplier: float = 4.0,
        default: float = 10.0,
        floor: float = 0.5,
        ceiling: float = 120.0,
    ) -> float:
        """Dynamic time-out for the tagged event (§2.2).

        forecast x multiplier, clamped to [floor, ceiling]; ``default``
        before any measurement exists.
        """
        fc = self.forecast(tag)
        if fc is None:
            return default
        return min(max(fc.value * multiplier, floor), ceiling)

    def drop(self, tag: Hashable) -> None:
        """Forget a stream (e.g. its component was evicted/reaped), so
        long-running servers do not accumulate banks for dead peers."""
        self._banks.pop(tag, None)

    def tags(self) -> list[Hashable]:
        return list(self._banks)

    def __len__(self) -> int:
        return len(self._banks)


@dataclass
class _OpenEvent:
    tag: Hashable
    started: float


class EventTimer:
    """Times begin/end-delimited program events and feeds a registry.

    Tokens distinguish concurrent events with the same tag (e.g. two
    outstanding requests to the same server).
    """

    def __init__(self, registry: ForecastRegistry) -> None:
        self.registry = registry
        self._open: dict[Hashable, _OpenEvent] = {}

    def begin(self, tag: Hashable, now: float, token: Hashable = None) -> None:
        self._open[(tag, token)] = _OpenEvent(tag, now)

    def end(self, tag: Hashable, now: float, token: Hashable = None) -> Optional[float]:
        """Close the event; returns its duration (None if never opened —
        e.g. the begin was lost to a failure, which is not an error)."""
        ev = self._open.pop((tag, token), None)
        if ev is None:
            return None
        duration = now - ev.started
        self.registry.record(tag, duration)
        return duration

    def abandon(self, tag: Hashable, token: Hashable = None) -> None:
        """Forget an open event without recording (request timed out)."""
        self._open.pop((tag, token), None)

    @property
    def open_count(self) -> int:
        return len(self._open)
