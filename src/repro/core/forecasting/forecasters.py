"""Lightweight time-series forecasters (the NWS forecaster bank).

The Network Weather Service makes short-term performance predictions by
running a family of cheap forecasting methods over each measurement stream
and dynamically choosing the one with the lowest accumulated error
(Wolski '98, cited as [38]). These are the constituent methods; the
adaptive chooser lives in :mod:`.selector`.

Every forecaster is O(1) or O(window) per update — they must be cheap
enough to run inside servers on every request-response event (§2.2
"light-weight time series forecasting methods").
"""

from __future__ import annotations

import bisect
from collections import deque
from typing import Optional

__all__ = [
    "Forecaster",
    "LastValue",
    "RunningMean",
    "SlidingMean",
    "SlidingMedian",
    "ExponentialSmoothing",
    "TrimmedMean",
    "AdaptiveMean",
    "default_bank",
]


class Forecaster:
    """Base class: observe values with :meth:`update`, predict the next
    value with :meth:`forecast` (None until enough history exists)."""

    name: str = "base"

    def update(self, value: float) -> None:
        raise NotImplementedError

    def forecast(self) -> Optional[float]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class LastValue(Forecaster):
    """Predicts the most recent measurement."""

    name = "last"

    def __init__(self) -> None:
        self._last: Optional[float] = None

    def update(self, value: float) -> None:
        self._last = value

    def forecast(self) -> Optional[float]:
        return self._last


class RunningMean(Forecaster):
    """Mean of the entire history."""

    name = "run_mean"

    def __init__(self) -> None:
        self._sum = 0.0
        self._n = 0

    def update(self, value: float) -> None:
        self._sum += value
        self._n += 1

    def forecast(self) -> Optional[float]:
        return self._sum / self._n if self._n else None


class SlidingMean(Forecaster):
    """Mean of the last ``window`` measurements."""

    def __init__(self, window: int) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.name = f"mean_{window}"
        self._window = window
        self._values: deque[float] = deque(maxlen=window)
        self._sum = 0.0

    def update(self, value: float) -> None:
        if len(self._values) == self._window:
            self._sum -= self._values[0]
        self._values.append(value)
        self._sum += value

    def forecast(self) -> Optional[float]:
        if not self._values:
            return None
        return self._sum / len(self._values)


class SlidingMedian(Forecaster):
    """Median of the last ``window`` measurements."""

    def __init__(self, window: int) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.name = f"median_{window}"
        self._window = window
        self._values: deque[float] = deque(maxlen=window)
        self._sorted: list[float] = []

    def update(self, value: float) -> None:
        if len(self._values) == self._window:
            old = self._values[0]
            idx = bisect.bisect_left(self._sorted, old)
            del self._sorted[idx]
        self._values.append(value)
        bisect.insort(self._sorted, value)

    def forecast(self) -> Optional[float]:
        n = len(self._sorted)
        if n == 0:
            return None
        mid = n // 2
        if n % 2:
            return self._sorted[mid]
        return 0.5 * (self._sorted[mid - 1] + self._sorted[mid])


class ExponentialSmoothing(Forecaster):
    """``s <- (1-gain)*s + gain*value``; low gains smooth heavily."""

    def __init__(self, gain: float) -> None:
        if not 0.0 < gain <= 1.0:
            raise ValueError("gain must be in (0, 1]")
        self.name = f"exp_{gain:g}"
        self._gain = gain
        self._state: Optional[float] = None

    def update(self, value: float) -> None:
        if self._state is None:
            self._state = value
        else:
            self._state += self._gain * (value - self._state)

    def forecast(self) -> Optional[float]:
        return self._state


class TrimmedMean(Forecaster):
    """Mean of the last ``window`` values after dropping the ``trim``
    smallest and largest — robust to measurement spikes."""

    def __init__(self, window: int, trim: int = 1) -> None:
        if window < 2 * trim + 1:
            raise ValueError("window too small for requested trim")
        self.name = f"trim_{window}_{trim}"
        self._window = window
        self._trim = trim
        self._values: deque[float] = deque(maxlen=window)

    def update(self, value: float) -> None:
        self._values.append(value)

    def forecast(self) -> Optional[float]:
        if not self._values:
            return None
        ordered = sorted(self._values)
        if len(ordered) > 2 * self._trim:
            ordered = ordered[self._trim : len(ordered) - self._trim]
        return sum(ordered) / len(ordered)


class AdaptiveMean(Forecaster):
    """Sliding mean whose window adapts to recent regime changes.

    After each update the forecaster compares the short-window and
    long-window means; when they diverge by more than ``threshold``
    (relative), the history is truncated to the short window — so the
    forecast tracks step changes quickly but averages noise when the
    series is stationary. This mirrors the NWS "adaptive window" methods.
    """

    def __init__(self, short: int = 5, long: int = 50, threshold: float = 0.25) -> None:
        if short < 1 or long <= short:
            raise ValueError("need 1 <= short < long")
        self.name = f"adapt_{short}_{long}"
        self._short = short
        self._long = long
        self._threshold = threshold
        self._values: deque[float] = deque(maxlen=long)

    def update(self, value: float) -> None:
        self._values.append(value)
        if len(self._values) > self._short:
            recent = list(self._values)[-self._short :]
            s_mean = sum(recent) / len(recent)
            l_mean = sum(self._values) / len(self._values)
            scale = max(abs(l_mean), 1e-12)
            if abs(s_mean - l_mean) / scale > self._threshold:
                self._values = deque(recent, maxlen=self._long)

    def forecast(self) -> Optional[float]:
        if not self._values:
            return None
        return sum(self._values) / len(self._values)


def default_bank() -> list[Forecaster]:
    """The forecaster family used throughout EveryWare, patterned on the
    NWS default method set."""
    bank: list[Forecaster] = [LastValue(), RunningMean()]
    for w in (5, 10, 20, 50):
        bank.append(SlidingMean(w))
        bank.append(SlidingMedian(w))
    for g in (0.05, 0.1, 0.25, 0.5):
        bank.append(ExponentialSmoothing(g))
    bank.append(TrimmedMean(10, 2))
    bank.append(AdaptiveMean())
    return bank
