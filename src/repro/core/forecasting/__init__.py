"""NWS-style performance forecasting and dynamic benchmarking."""

from .benchmarking import EventTimer, ForecastRegistry, event_tag
from .forecasters import (
    AdaptiveMean,
    ExponentialSmoothing,
    Forecaster,
    LastValue,
    RunningMean,
    SlidingMean,
    SlidingMedian,
    TrimmedMean,
    default_bank,
)
from .selector import Forecast, ForecasterBank
from .sensors import NWS_FORECAST, NWS_PING, NWS_PONG, NWS_QUERY, NWSSensor

__all__ = [
    "EventTimer",
    "ForecastRegistry",
    "event_tag",
    "AdaptiveMean",
    "ExponentialSmoothing",
    "Forecaster",
    "LastValue",
    "RunningMean",
    "SlidingMean",
    "SlidingMedian",
    "TrimmedMean",
    "default_bank",
    "Forecast",
    "ForecasterBank",
    "NWSSensor",
    "NWS_PING",
    "NWS_PONG",
    "NWS_QUERY",
    "NWS_FORECAST",
]
