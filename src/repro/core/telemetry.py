"""Observability plane: metrics registry + causal tracing.

The paper could explain the SC98 run only because EveryWare's logging
servers and dynamic-benchmark tags ``(address, message type)`` recorded
what every infrastructure was doing (§2.2, §3.1.3). This module is that
monitoring plane made first-class for the reproduction:

* :class:`MetricsRegistry` — counters, gauges, and fixed-bucket
  histograms that components and drivers register against, replacing the
  ad-hoc ``self.appended``-style attributes with one scrapeable surface
  whose :meth:`~MetricsRegistry.snapshot` is JSON- and diff-stable;
* :class:`Tracer` — causal spans carried through lingua-franca message
  headers and propagated by the drivers through effect emission, timer
  callbacks, retransmissions, and fault-injected drops, so every
  reply/retry/requeue links back to its root cause. Span ids come from a
  per-tracer counter and timestamps are *simulated* time, so same-seed
  runs export byte-identical traces;
* exporters — Chrome ``trace_event`` JSON (loadable in
  ``chrome://tracing`` / Perfetto), a text timeline, and a metrics
  snapshot.

A :class:`Telemetry` object bundles one registry and one tracer; a world
(scenario, chaos run, SC98 replay) creates a single instance and threads
it through its drivers, network, and fault plan. Tracing is off by
default — when disabled, the hot paths reduce to a single attribute
check.

Span outcomes form a small vocabulary shared with the experiment layer:
``ok``, ``error``, ``timeout``, ``retransmit``, ``gave-up``,
``dropped``, ``dropped-by-fault``, ``fault``, ``requeue``.
"""

from __future__ import annotations

import json
from typing import Any, Iterator, NamedTuple, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TraceContext",
    "Span",
    "Tracer",
    "Telemetry",
    "export_chrome_trace",
    "merge_snapshots",
    "render_timeline",
]


class TraceContext(NamedTuple):
    """What travels in a message header: ``(trace_id, parent span_id)``.

    A plain 2-tuple on the wire (the ``"t"`` field of the lingua-franca
    record); the receiving driver starts its handler span as a child of
    ``span_id`` within ``trace_id``.
    """

    trace_id: int
    span_id: int


# -- metrics -----------------------------------------------------------------


class Counter:
    """Monotonic event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """Last-write-wins instantaneous value (queue depth, pool size, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


#: Default histogram bucket upper bounds (seconds-ish scales; the last
#: implicit bucket is +inf).
DEFAULT_BUCKETS = (0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 120.0)


class Histogram:
    """Fixed-bucket histogram: ``bounds`` are upper edges, the final
    overflow bucket is implicit."""

    __slots__ = ("name", "bounds", "counts", "total", "count")

    def __init__(self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.total += value
        self.count += 1
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


def _metric_key(name: str, labels: dict[str, Any]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Get-or-create registry of named metrics.

    Labels become part of the metric key (``name{k=v,...}``), so
    components of the same kind can keep per-instance series while
    sharing one registry per world.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str, **labels: Any) -> Counter:
        key = _metric_key(name, labels)
        c = self._counters.get(key)
        if c is None:
            c = self._counters[key] = Counter(key)
        return c

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = _metric_key(name, labels)
        g = self._gauges.get(key)
        if g is None:
            g = self._gauges[key] = Gauge(key)
        return g

    def histogram(
        self,
        name: str,
        bounds: tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        key = _metric_key(name, labels)
        h = self._histograms.get(key)
        if h is None:
            h = self._histograms[key] = Histogram(key, bounds)
        return h

    def counters_matching(self, prefix: str) -> dict[str, int]:
        """All counter values whose key starts with ``prefix`` (scraping
        helper for reports)."""
        return {k: c.value for k, c in sorted(self._counters.items())
                if k.startswith(prefix)}

    def snapshot(self) -> dict:
        """A JSON- and diff-stable dump of every registered metric."""
        return {
            "counters": {k: self._counters[k].value
                         for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k].value for k in sorted(self._gauges)},
            "histograms": {
                k: {
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "count": h.count,
                    "total": round(h.total, 9),
                }
                for k, h in sorted(self._histograms.items())
            },
        }


# -- tracing -----------------------------------------------------------------


class Span:
    """One traced operation in simulated time."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "component",
                 "mtype", "start", "end", "outcome", "args")

    def __init__(
        self,
        trace_id: int,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        component: str,
        start: float,
        mtype: str = "",
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.component = component
        self.mtype = mtype
        self.start = start
        self.end: Optional[float] = None
        self.outcome: Optional[str] = None
        self.args: dict[str, Any] = {}

    @property
    def ctx(self) -> TraceContext:
        """The context children of this span inherit."""
        return TraceContext(self.trace_id, self.span_id)

    def to_dict(self) -> dict:
        d = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "component": self.component,
            "start": round(self.start, 9),
            "end": None if self.end is None else round(self.end, 9),
            "outcome": self.outcome,
        }
        if self.mtype:
            d["mtype"] = self.mtype
        if self.args:
            d["args"] = self.args
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "Span":
        """Rebuild a span from its :meth:`to_dict` form (the shape live
        nodes ship to the supervisor's collector)."""
        span = cls(
            trace_id=int(d["trace_id"]),
            span_id=int(d["span_id"]),
            parent_id=None if d.get("parent_id") is None else int(d["parent_id"]),
            name=str(d["name"]),
            component=str(d.get("component", "")),
            start=float(d["start"]),
            mtype=str(d.get("mtype", "")),
        )
        span.end = None if d.get("end") is None else float(d["end"])
        span.outcome = d.get("outcome")
        args = d.get("args")
        if isinstance(args, dict):
            span.args.update(args)
        return span

    def __repr__(self) -> str:
        return (f"<Span {self.span_id} {self.name!r} trace={self.trace_id} "
                f"parent={self.parent_id} outcome={self.outcome}>")


class Tracer:
    """Deterministic span recorder.

    ``enabled`` gates every hot-path hook: drivers check it once per
    message/timer/send and skip span construction entirely when off.
    ``current`` is the ambient span while a component handler executes —
    the simulation is single-threaded, so one slot suffices; effects
    emitted by the handler (sends, timers, requeues) parent to it.
    """

    def __init__(self, enabled: bool = False, id_base: int = 0) -> None:
        self.enabled = enabled
        self.spans: list[Span] = []
        self.current: Optional[Span] = None
        #: Spans discarded from the front of ``spans`` by :meth:`trim`.
        #: Consumers that walk the list with a cursor must treat their
        #: cursor as ``dropped + list position``.
        self.dropped = 0
        #: Id offset for distributed worlds: trace contexts travel between
        #: processes in message headers, so each live node gets a disjoint
        #: id block (``node_index * block``) and merged traces stay
        #: collision-free. Zero for single-process worlds.
        self.id_base = int(id_base)
        self._next_trace = self.id_base
        self._next_span = self.id_base

    # -- span construction -------------------------------------------------
    def begin(
        self,
        name: str,
        component: str = "",
        parent: Optional[tuple[int, int]] = None,
        start: float = 0.0,
        mtype: str = "",
    ) -> Span:
        """Open a span. With no ``parent`` context a fresh trace starts."""
        self._next_span += 1
        if parent is None:
            self._next_trace += 1
            trace_id, parent_id = self._next_trace, None
        else:
            trace_id, parent_id = int(parent[0]), int(parent[1])
        span = Span(trace_id, self._next_span, parent_id, name, component,
                    start, mtype)
        self.spans.append(span)
        return span

    def finish(self, span: Span, end: float, outcome: str = "ok") -> Span:
        span.end = end
        span.outcome = outcome
        return span

    def instant(
        self,
        name: str,
        t: float,
        component: str = "",
        parent: Optional[tuple[int, int]] = None,
        outcome: str = "ok",
        mtype: str = "",
        args: Optional[dict] = None,
    ) -> Span:
        """A zero-duration annotation span.

        Constructed inline rather than via :meth:`begin` — instants sit
        on the control plane's submit hot path and the extra call layer
        is measurable there.
        """
        self._next_span += 1
        if parent is None:
            self._next_trace += 1
            trace_id, parent_id = self._next_trace, None
        else:
            trace_id, parent_id = int(parent[0]), int(parent[1])
        span = Span(trace_id, self._next_span, parent_id, name, component,
                    t, mtype)
        span.end = t
        span.outcome = outcome
        if args:
            span.args.update(args)
        self.spans.append(span)
        return span

    def current_ctx(self) -> Optional[TraceContext]:
        return self.current.ctx if self.current is not None else None

    def trim(self, upto: int) -> int:
        """Discard spans every cursor-holder has already consumed.

        ``upto`` is an *absolute* span index (``dropped`` + position in
        ``spans``); spans before it leave memory. Long-lived traced
        nodes call this after the shipper/flight recorder have taken a
        span so the list — and with it gen-2 GC pressure — stays
        bounded; simulated runs never trim and keep the full record for
        export. Returns the number of spans dropped.
        """
        cut = min(upto - self.dropped, len(self.spans))
        if cut <= 0:
            return 0
        del self.spans[:cut]
        self.dropped += cut
        return cut

    # -- queries (tests, chain validation, reports) -------------------------
    def by_span_id(self) -> dict[int, Span]:
        return {s.span_id: s for s in self.spans}

    def named(self, name: str) -> list[Span]:
        return [s for s in self.spans if s.name == name]

    def with_outcome(self, outcome: str) -> list[Span]:
        return [s for s in self.spans if s.outcome == outcome]

    def children(self, span: Span) -> list[Span]:
        return [s for s in self.spans
                if s.parent_id == span.span_id and s.trace_id == span.trace_id]

    def ancestry(self, span: Span) -> Iterator[Span]:
        """The span followed by its parents up to the trace root."""
        index = self.by_span_id()
        seen: set[int] = set()
        cur: Optional[Span] = span
        while cur is not None and cur.span_id not in seen:
            seen.add(cur.span_id)
            yield cur
            cur = index.get(cur.parent_id) if cur.parent_id is not None else None

    def to_dicts(self) -> list[dict]:
        return [s.to_dict() for s in self.spans]


class Telemetry:
    """One world's observability handle: metrics + tracer."""

    def __init__(self, trace: bool = False, id_base: int = 0) -> None:
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(enabled=trace, id_base=id_base)

    def event(
        self,
        name: str,
        now: float,
        component: str = "",
        outcome: str = "ok",
        **args: Any,
    ) -> Optional[Span]:
        """Component-side convenience: an instant span under the ambient
        handler span. No-op (returns None) when tracing is disabled."""
        tracer = self.tracer
        if not tracer.enabled:
            return None
        return tracer.instant(name, now, component=component,
                              parent=tracer.current_ctx(), outcome=outcome,
                              args=args or None)

    def snapshot(self) -> dict:
        return self.metrics.snapshot()


# -- merging (live plane) ------------------------------------------------------


def merge_snapshots(snapshots: list[dict]) -> dict:
    """Merge per-node metrics snapshots into one snapshot-shaped dict.

    Counters and histogram buckets add; gauges are last-write-wins in
    list order (the caller orders nodes deterministically). The result
    has exactly the :meth:`MetricsRegistry.snapshot` shape, so the
    existing exporters and report scrapers work on merged live worlds
    unchanged.
    """
    counters: dict[str, int] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, dict] = {}
    for snap in snapshots:
        if not isinstance(snap, dict):
            continue
        for key, value in snap.get("counters", {}).items():
            counters[key] = counters.get(key, 0) + int(value)
        for key, value in snap.get("gauges", {}).items():
            gauges[key] = float(value)
        for key, h in snap.get("histograms", {}).items():
            merged = histograms.get(key)
            if merged is None or merged["bounds"] != list(h["bounds"]):
                # First sighting (or incompatible bounds: keep the newest).
                histograms[key] = {
                    "bounds": list(h["bounds"]),
                    "counts": list(h["counts"]),
                    "count": int(h["count"]),
                    "total": float(h["total"]),
                }
                continue
            merged["counts"] = [a + b for a, b in zip(merged["counts"], h["counts"])]
            merged["count"] += int(h["count"])
            merged["total"] = round(merged["total"] + float(h["total"]), 9)
    return {
        "counters": {k: counters[k] for k in sorted(counters)},
        "gauges": {k: gauges[k] for k in sorted(gauges)},
        "histograms": {k: histograms[k] for k in sorted(histograms)},
    }


# -- exporters ---------------------------------------------------------------


def export_chrome_trace(telemetry: "Telemetry | Tracer",
                        extra_events: "list[dict] | None" = None) -> dict:
    """Spans as Chrome ``trace_event`` JSON (``chrome://tracing`` and
    Perfetto both load it).

    Every event is a complete ("X") event with the keys the format
    requires — ``name``, ``ph``, ``ts`` (microseconds of *simulated*
    time), ``pid`` — plus ``tid``, ``dur``, and span linkage in
    ``args``. Components map to pids in first-seen order (deterministic
    under a fixed seed) with ``process_name`` metadata events.

    ``extra_events`` are appended verbatim — pre-built trace events from
    another producer (e.g. the engine profiler's per-handler latency
    lane, :meth:`repro.simgrid.profile.EngineProfiler.chrome_events`)
    that should land in the same export.
    """
    tracer = telemetry.tracer if isinstance(telemetry, Telemetry) else telemetry
    pids: dict[str, int] = {}
    events: list[dict] = []
    for span in tracer.spans:
        component = span.component or "?"
        pid = pids.get(component)
        if pid is None:
            pid = pids[component] = len(pids) + 1
            events.append({
                "name": "process_name",
                "ph": "M",
                "ts": 0,
                "pid": pid,
                "tid": pid,
                "args": {"name": component},
            })
        end = span.end if span.end is not None else span.start
        args: dict[str, Any] = {
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "outcome": span.outcome or "open",
        }
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if span.mtype:
            args["mtype"] = span.mtype
        if span.args:
            args.update(span.args)
        events.append({
            "name": span.name,
            "cat": span.outcome or "span",
            "ph": "X",
            "ts": round(span.start * 1e6, 3),
            "dur": round((end - span.start) * 1e6, 3),
            "pid": pid,
            "tid": pid,
            "args": args,
        })
    if extra_events:
        events.extend(extra_events)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def render_timeline(telemetry: "Telemetry | Tracer", limit: int = 0) -> str:
    """Spans as a human-readable text timeline (one line per span)."""
    tracer = telemetry.tracer if isinstance(telemetry, Telemetry) else telemetry
    spans = sorted(tracer.spans, key=lambda s: (s.start, s.span_id))
    if limit:
        spans = spans[:limit]
    lines = []
    for s in spans:
        dur = "" if s.end is None or s.end == s.start else f" +{s.end - s.start:.3f}s"
        parent = "root" if s.parent_id is None else f"<{s.parent_id}"
        lines.append(
            f"[{s.start:12.3f}] t{s.trace_id:<5d} s{s.span_id:<6d} {parent:<8} "
            f"{s.component:<16} {s.name:<28} {s.outcome or 'open'}{dur}")
    return "\n".join(lines)


def write_trace_json(telemetry: "Telemetry | Tracer", path: str,
                     extra_events: "list[dict] | None" = None) -> str:
    """Write the Chrome trace to ``path``; returns the path."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(export_chrome_trace(telemetry, extra_events=extra_events),
                  fh, indent=1, sort_keys=True)
        fh.write("\n")
    return path


def write_metrics_json(telemetry: Telemetry, path: str) -> str:
    """Write the metrics snapshot to ``path``; returns the path."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(telemetry.snapshot(), fh, indent=1, sort_keys=True)
        fh.write("\n")
    return path
