"""Driver running a sans-IO :class:`Component` on a simulated host.

The driver owns the endpoint, the timer wheel, and the main loop; the
component only ever sees messages, timer keys, and the current time. When
the host dies (Condor reclamation, failure, ...), the loop is interrupted
with :class:`~repro.simgrid.host.HostDown`; the driver unbinds the
endpoint and reports the death through ``on_stop`` — matching how SC98
guest processes were killed without warning.
"""

from __future__ import annotations

from time import perf_counter as _perf_counter
from typing import Callable, Generator, Optional

from ..simgrid.engine import Environment, Interrupt, Process
from ..simgrid.host import Host
from ..simgrid.network import Address, Network
from .component import CancelTimer, Component, Effect, LogLine, Send, SetTimer, Stop
from .linguafranca.endpoint import SimEndpoint
from .policy import ReliableSendTracker, TimeoutPolicy
from .telemetry import Counter, Telemetry

__all__ = ["SimDriver"]

LogSink = Callable[[float, str, str, str], None]  # (time, component, level, text)


class _SimRuntime:
    """Runtime facade handed to the component."""

    def __init__(self, driver: "SimDriver") -> None:
        self._d = driver
        self._rng = None

    def now(self) -> float:
        return self._d.env.now

    def contact(self) -> str:
        return self._d.endpoint.contact

    def host_name(self) -> str:
        return self._d.host.name

    def speed(self) -> float:
        return self._d.host.effective_speed()

    def random(self) -> float:
        if self._rng is None:
            # One stream per component address keeps runs reproducible.
            self._rng = self._d.streams.get(f"component:{self._d.endpoint.contact}")
        return float(self._rng.random())

    def compute_lane(self):
        """The driver's compute lane (``None`` unless a world attached
        one): where components may offload kernel tasks. Lane results
        are bit-identical to inline execution, so using it never changes
        simulation outcomes — only wall-clock speed."""
        return self._d.compute_lane


class SimDriver:
    """Runs one component on one host."""

    def __init__(
        self,
        env: Environment,
        network: Network,
        host: Host,
        port: str,
        component: Component,
        streams,
        log_sink: Optional[LogSink] = None,
        timeout_policy: Optional[TimeoutPolicy] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.env = env
        self.network = network
        self.host = host
        self.component = component
        self.streams = streams
        self.address = Address(host.name, port)
        self.endpoint = SimEndpoint(env, network, self.address)
        self.log_sink = log_sink
        # Reply time-outs for reliable sends: forecast-driven per event
        # tag by default (§2.2 dynamic time-out discovery), overridable
        # per driver or per Send effect.
        self.timeout_policy = timeout_policy or TimeoutPolicy.forecast(default=10.0)
        # Created on the first reliable Send; None keeps the common
        # fire-and-forget path allocation-free.
        self.tracker: Optional[ReliableSendTracker] = None
        self._timers: dict[str, float] = {}
        self._stopped = False
        self.handler_errors = 0
        self.stop_reason: Optional[str] = None
        self.process: Optional[Process] = None
        # Worlds thread one shared Telemetry through every driver —
        # explicitly, or implicitly via Network.attach_telemetry (so the
        # many driver construction sites inherit it without plumbing); a
        # private (tracing-off) instance keeps standalone drivers working.
        if telemetry is None:
            telemetry = network.telemetry
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        # Optional compute lane (repro.parallel): worlds attach one with
        # attach_compute_lane; None keeps kernel work inline and free.
        self.compute_lane = None
        # Ambient trace context captured at SetTimer time, consumed when
        # the timer fires; only populated while tracing is enabled.
        self._timer_ctx: dict[str, Optional[tuple[int, int]]] = {}
        # Per-driver mtype -> Counter caches so the per-message metric
        # cost is one dict hit, not a registry key build.
        self._sent_counters: dict[str, Counter] = {}
        self._recv_counters: dict[str, Counter] = {}
        component.bind_runtime(_SimRuntime(self))
        component.bind_telemetry(self.telemetry)

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> Process:
        """Spawn the driver loop as a guest process on the host."""
        self.process = self.host.spawn(self._run(), name=f"drv:{self.address.port}")
        return self.process

    def attach_compute_lane(self, lane) -> None:
        """Offer a compute lane to this driver's component (reachable
        through ``runtime.compute_lane()``)."""
        self.compute_lane = lane

    @property
    def running(self) -> bool:
        return self.process is not None and self.process.is_alive and not self._stopped

    # -- effect application --------------------------------------------------
    def _apply(self, effects: list[Effect]) -> None:
        tracer = self.telemetry.tracer
        for eff in effects:
            if isinstance(eff, Send):
                message = eff.message
                if eff.retry is not None:
                    pending = self._reliable().track(eff, self.env.now)
                    if tracer.enabled:
                        # One "call" span covers the whole reliable
                        # exchange; retransmits and the receiver's handler
                        # span hang off it. A re-issued message that
                        # already carries a trace keeps its root.
                        parent = (message.trace if message.trace is not None
                                  else tracer.current_ctx())
                        span = tracer.begin(
                            f"call {message.mtype}",
                            component=self.component.name,
                            parent=parent,
                            start=self.env.now,
                            mtype=message.mtype,
                        )
                        if eff.label:
                            span.args["label"] = eff.label
                        if message.trace is None:
                            message.trace = (span.trace_id, span.span_id)
                        pending.span = span
                elif tracer.enabled and message.trace is None:
                    span = tracer.instant(
                        f"send {message.mtype}",
                        self.env.now,
                        component=self.component.name,
                        parent=tracer.current_ctx(),
                        mtype=message.mtype,
                    )
                    message.trace = (span.trace_id, span.span_id)
                counter = self._sent_counters.get(message.mtype)
                if counter is None:
                    counter = self._sent_counters[message.mtype] = (
                        self.telemetry.metrics.counter("msg.sent",
                                                       mtype=message.mtype))
                counter.inc()
                self.endpoint.send(eff.dst, message)
            elif isinstance(eff, SetTimer):
                self._timers[eff.key] = self.env.now + eff.delay
                if tracer.enabled:
                    self._timer_ctx[eff.key] = tracer.current_ctx()
            elif isinstance(eff, CancelTimer):
                self._timers.pop(eff.key, None)
                self._timer_ctx.pop(eff.key, None)
            elif isinstance(eff, LogLine):
                if self.log_sink is not None:
                    self.log_sink(self.env.now, self.component.name, eff.level, eff.text)
            elif isinstance(eff, Stop):
                self._stopped = True
                self.stop_reason = eff.reason
            else:
                raise TypeError(f"unknown effect {eff!r}")

    def _reliable(self) -> ReliableSendTracker:
        if self.tracker is None:
            rng = self.streams.get(f"retry:{self.endpoint.contact}")
            self.tracker = ReliableSendTracker(
                self.timeout_policy, lambda: float(rng.random()),
                metrics=self.telemetry.metrics,
            )
        return self.tracker

    def _next_deadline(self) -> Optional[float]:
        deadline = min(self._timers.values()) if self._timers else None
        if self.tracker is not None:
            retry_deadline = self.tracker.next_deadline()
            if retry_deadline is not None and (
                deadline is None or retry_deadline < deadline
            ):
                deadline = retry_deadline
        return deadline

    def _service_reliable(self, now: float) -> None:
        if self.tracker is None or not len(self.tracker):
            return
        tracer = self.telemetry.tracer
        for action, pending in self.tracker.due(now):
            if self._stopped:
                return
            message = pending.eff.message
            if action == "resend":
                if tracer.enabled:
                    parent = (pending.span.ctx if pending.span is not None
                              else message.trace)
                    tracer.instant(
                        f"retransmit {message.mtype}",
                        now,
                        component=self.component.name,
                        parent=parent,
                        outcome="retransmit",
                        mtype=message.mtype,
                        args={"attempt": pending.attempt},
                    )
                self.endpoint.send(pending.eff.dst, message)
            else:  # give_up — the component decides how to recover.
                span = None
                if tracer.enabled:
                    if pending.span is not None:
                        tracer.finish(pending.span, now, "gave-up")
                    parent = (pending.span.ctx if pending.span is not None
                              else message.trace)
                    span = tracer.begin(
                        f"send-failed {pending.eff.label or message.mtype}",
                        component=self.component.name,
                        parent=parent,
                        start=now,
                        mtype=message.mtype,
                    )
                    tracer.current = span
                try:
                    self._apply(self.component.on_send_failed(pending.eff, now))
                finally:
                    if span is not None:
                        tracer.finish(span, self.env.now, "gave-up")
                        tracer.current = None

    def _fire_due_timers(self) -> None:
        now = self.env.now
        tracer = self.telemetry.tracer
        self._service_reliable(now)
        while not self._stopped:
            due = [k for k, t in self._timers.items() if t <= now]
            if not due:
                return
            # Deterministic order for same-deadline timers.
            due.sort(key=lambda k: (self._timers[k], k))
            key = due[0]
            del self._timers[key]
            ctx = self._timer_ctx.pop(key, None)
            span = None
            if tracer.enabled:
                # The timer's causal parent is whatever handler armed it.
                span = tracer.begin(f"timer {key}",
                                    component=self.component.name,
                                    parent=ctx, start=now)
                tracer.current = span
            try:
                self._apply(self.component.on_timer(key, now))
            finally:
                if span is not None:
                    tracer.finish(span, self.env.now, "ok")
                    tracer.current = None

    # -- main loop ------------------------------------------------------------
    def _run(self) -> Generator:
        reason = "stopped"
        tracer = self.telemetry.tracer
        try:
            if tracer.enabled:
                span = tracer.begin(f"start {self.component.name}",
                                    component=self.component.name,
                                    start=self.env.now)
                tracer.current = span
                try:
                    self._apply(self.component.on_start(self.env.now))
                finally:
                    tracer.finish(span, self.env.now, "ok")
                    tracer.current = None
            else:
                self._apply(self.component.on_start(self.env.now))
            while not self._stopped:
                deadline = self._next_deadline()
                if deadline is None:
                    timeout = None
                else:
                    timeout = max(deadline - self.env.now, 0.0)
                message = yield from self.endpoint.recv(timeout)
                if self._stopped:
                    break
                if message is not None:
                    now = self.env.now
                    if self.tracker is not None:
                        resolved = self.tracker.resolve(message.reply_to, now)
                        if resolved is not None and resolved.span is not None:
                            tracer.finish(resolved.span, now, "ok")
                    counter = self._recv_counters.get(message.mtype)
                    if counter is None:
                        counter = self._recv_counters[message.mtype] = (
                            self.telemetry.metrics.counter(
                                "msg.recv", mtype=message.mtype))
                    counter.inc()
                    span = None
                    if tracer.enabled:
                        span = tracer.begin(f"recv {message.mtype}",
                                            component=self.component.name,
                                            parent=message.trace,
                                            start=now, mtype=message.mtype)
                        tracer.current = span
                    outcome = "ok"
                    profiler = self.env.profiler
                    t0 = _perf_counter() if profiler is not None else 0.0
                    try:
                        effects = self.component.on_message(message, now)
                    except Exception as exc:  # noqa: BLE001 — robustness boundary
                        # A malformed or hostile message must never take a
                        # server down (§2.3 robustness): drop it, log, go on.
                        self.handler_errors += 1
                        outcome = "error"
                        if self.log_sink is not None:
                            self.log_sink(now, self.component.name,
                                          "error",
                                          f"dropped {message.mtype}: {exc!r}")
                        effects = []
                    if profiler is not None:
                        profiler.record_handler(self.component.name,
                                                message.mtype,
                                                _perf_counter() - t0)
                    try:
                        self._apply(effects)
                    finally:
                        if span is not None:
                            tracer.finish(span, self.env.now, outcome)
                            tracer.current = None
                self._fire_due_timers()
            reason = self.stop_reason or "stopped"
        except Interrupt as interrupt:
            reason = f"host_down:{getattr(interrupt.cause, 'reason', interrupt.cause)}"
        finally:
            self.endpoint.close()
            self._stopped = True
            self.component.on_stop(self.env.now, reason)
        return reason
