"""Driver running a sans-IO :class:`Component` on a simulated host.

The driver owns the endpoint, the timer wheel, and the main loop; the
component only ever sees messages, timer keys, and the current time. When
the host dies (Condor reclamation, failure, ...), the loop is interrupted
with :class:`~repro.simgrid.host.HostDown`; the driver unbinds the
endpoint and reports the death through ``on_stop`` — matching how SC98
guest processes were killed without warning.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from ..simgrid.engine import Environment, Interrupt, Process
from ..simgrid.host import Host
from ..simgrid.network import Address, Network
from .component import CancelTimer, Component, Effect, LogLine, Send, SetTimer, Stop
from .linguafranca.endpoint import SimEndpoint
from .policy import ReliableSendTracker, TimeoutPolicy

__all__ = ["SimDriver"]

LogSink = Callable[[float, str, str, str], None]  # (time, component, level, text)


class _SimRuntime:
    """Runtime facade handed to the component."""

    def __init__(self, driver: "SimDriver") -> None:
        self._d = driver
        self._rng = None

    def now(self) -> float:
        return self._d.env.now

    def contact(self) -> str:
        return self._d.endpoint.contact

    def host_name(self) -> str:
        return self._d.host.name

    def speed(self) -> float:
        return self._d.host.effective_speed()

    def random(self) -> float:
        if self._rng is None:
            # One stream per component address keeps runs reproducible.
            self._rng = self._d.streams.get(f"component:{self._d.endpoint.contact}")
        return float(self._rng.random())


class SimDriver:
    """Runs one component on one host."""

    def __init__(
        self,
        env: Environment,
        network: Network,
        host: Host,
        port: str,
        component: Component,
        streams,
        log_sink: Optional[LogSink] = None,
        timeout_policy: Optional[TimeoutPolicy] = None,
    ) -> None:
        self.env = env
        self.network = network
        self.host = host
        self.component = component
        self.streams = streams
        self.address = Address(host.name, port)
        self.endpoint = SimEndpoint(env, network, self.address)
        self.log_sink = log_sink
        # Reply time-outs for reliable sends: forecast-driven per event
        # tag by default (§2.2 dynamic time-out discovery), overridable
        # per driver or per Send effect.
        self.timeout_policy = timeout_policy or TimeoutPolicy.forecast(default=10.0)
        # Created on the first reliable Send; None keeps the common
        # fire-and-forget path allocation-free.
        self.tracker: Optional[ReliableSendTracker] = None
        self._timers: dict[str, float] = {}
        self._stopped = False
        self.handler_errors = 0
        self.stop_reason: Optional[str] = None
        self.process: Optional[Process] = None
        component.bind_runtime(_SimRuntime(self))

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> Process:
        """Spawn the driver loop as a guest process on the host."""
        self.process = self.host.spawn(self._run(), name=f"drv:{self.address.port}")
        return self.process

    @property
    def running(self) -> bool:
        return self.process is not None and self.process.is_alive and not self._stopped

    # -- effect application --------------------------------------------------
    def _apply(self, effects: list[Effect]) -> None:
        for eff in effects:
            if isinstance(eff, Send):
                if eff.retry is not None:
                    self._reliable().track(eff, self.env.now)
                self.endpoint.send(eff.dst, eff.message)
            elif isinstance(eff, SetTimer):
                self._timers[eff.key] = self.env.now + eff.delay
            elif isinstance(eff, CancelTimer):
                self._timers.pop(eff.key, None)
            elif isinstance(eff, LogLine):
                if self.log_sink is not None:
                    self.log_sink(self.env.now, self.component.name, eff.level, eff.text)
            elif isinstance(eff, Stop):
                self._stopped = True
                self.stop_reason = eff.reason
            else:
                raise TypeError(f"unknown effect {eff!r}")

    def _reliable(self) -> ReliableSendTracker:
        if self.tracker is None:
            rng = self.streams.get(f"retry:{self.endpoint.contact}")
            self.tracker = ReliableSendTracker(
                self.timeout_policy, lambda: float(rng.random())
            )
        return self.tracker

    def _next_deadline(self) -> Optional[float]:
        deadline = min(self._timers.values()) if self._timers else None
        if self.tracker is not None:
            retry_deadline = self.tracker.next_deadline()
            if retry_deadline is not None and (
                deadline is None or retry_deadline < deadline
            ):
                deadline = retry_deadline
        return deadline

    def _service_reliable(self, now: float) -> None:
        if self.tracker is None or not len(self.tracker):
            return
        for action, pending in self.tracker.due(now):
            if self._stopped:
                return
            if action == "resend":
                self.endpoint.send(pending.eff.dst, pending.eff.message)
            else:  # give_up — the component decides how to recover.
                self._apply(self.component.on_send_failed(pending.eff, now))

    def _fire_due_timers(self) -> None:
        now = self.env.now
        self._service_reliable(now)
        while not self._stopped:
            due = [k for k, t in self._timers.items() if t <= now]
            if not due:
                return
            # Deterministic order for same-deadline timers.
            due.sort(key=lambda k: (self._timers[k], k))
            key = due[0]
            del self._timers[key]
            self._apply(self.component.on_timer(key, now))

    # -- main loop ------------------------------------------------------------
    def _run(self) -> Generator:
        reason = "stopped"
        try:
            self._apply(self.component.on_start(self.env.now))
            while not self._stopped:
                deadline = self._next_deadline()
                if deadline is None:
                    timeout = None
                else:
                    timeout = max(deadline - self.env.now, 0.0)
                message = yield from self.endpoint.recv(timeout)
                if self._stopped:
                    break
                if message is not None:
                    if self.tracker is not None:
                        self.tracker.resolve(message.reply_to, self.env.now)
                    try:
                        effects = self.component.on_message(message, self.env.now)
                    except Exception as exc:  # noqa: BLE001 — robustness boundary
                        # A malformed or hostile message must never take a
                        # server down (§2.3 robustness): drop it, log, go on.
                        self.handler_errors += 1
                        if self.log_sink is not None:
                            self.log_sink(self.env.now, self.component.name,
                                          "error",
                                          f"dropped {message.mtype}: {exc!r}")
                        effects = []
                    self._apply(effects)
                self._fire_due_timers()
            reason = self.stop_reason or "stopped"
        except Interrupt as interrupt:
            reason = f"host_down:{getattr(interrupt.cause, 'reason', interrupt.cause)}"
        finally:
            self.endpoint.close()
            self._stopped = True
            self.component.on_stop(self.env.now, reason)
        return reason
