"""The gateway's task-queue core: an app-agnostic, durable job store.

:class:`WorkQueue` is the hinge of the control plane. Upward it is a job
lifecycle store (``submit`` / ``get`` / ``cancel`` — what the HTTP
routers expose); downward it implements the scheduler's
:class:`~repro.core.services.scheduler.WorkSource` protocol
(``next_unit`` / ``requeue`` / ``complete``), so an unmodified
:class:`~repro.core.services.scheduler.SchedulerServer` can hand
externally-submitted jobs to computational clients exactly the way it
hands out internally-minted units. The queue is application-agnostic: a
job spec is any JSON object the executing client understands (the Ramsey
clients take their usual unit dicts; see
:func:`repro.control.serve.ramsey_job_spec`).

Durability is an append-only JSONL journal, flushed per accepted
operation: a SIGKILLed gateway process loses its sockets and its
scheduler state, never an accepted job — the journal bytes are already
in the kernel when the 201 leaves. On restart :meth:`replay` rebuilds
the store; jobs that were queued *or assigned* at the crash come back
queued (requeued, not dropped — the in-flight assignment died with the
scheduler's client table), finished and cancelled jobs stay finished and
cancelled.

Job lifecycle::

    submit -> queued -> assigned -> done
                 \\         |
                  +--------+--> cancelled   (cancel is idempotent)
"""

from __future__ import annotations

import json
import os
from collections import deque
from typing import Optional

from ..core.services.kinds import ResultCheckError
from ..core.services.kinds import registry as kind_registry

__all__ = ["Job", "WorkQueue", "MemoryJournal", "FileJournal",
           "JOB_STATES"]

JOB_STATES = ("queued", "assigned", "done", "cancelled")


class Job:
    """One submitted job and its lifecycle bookkeeping."""

    __slots__ = ("id", "spec", "state", "submitted_at", "finished_at",
                 "result", "requeues", "trace")

    def __init__(self, job_id: str, spec: dict, submitted_at: float) -> None:
        self.id = job_id
        self.spec = spec
        self.state = "queued"
        self.submitted_at = submitted_at
        self.finished_at: Optional[float] = None
        self.result: Optional[dict] = None
        self.requeues = 0
        #: (trace_id, span_id) of the gateway ingress span that accepted
        #: this job — the root every downstream span parents on. Journaled
        #: with the submit record so the causal chain survives a restart.
        self.trace: Optional[tuple[int, int]] = None

    def to_dict(self) -> dict:
        return {
            "id": self.id,
            "state": self.state,
            "spec": self.spec,
            "submitted_at": self.submitted_at,
            "finished_at": self.finished_at,
            "result": self.result,
            "requeues": self.requeues,
        }


class MemoryJournal:
    """In-process journal for the simulated twin: same record stream as
    :class:`FileJournal`, surviving a *simulated* gateway restart (the
    deterministic analogue of kernel page cache surviving a SIGKILL)."""

    def __init__(self) -> None:
        self._records: list[dict] = []

    def append(self, record: dict) -> None:
        self._records.append(record)

    def append_many(self, records: list[dict]) -> None:
        self._records.extend(records)

    def records(self) -> list[dict]:
        return list(self._records)

    def close(self) -> None:
        pass


class FileJournal:
    """Append-only JSONL journal, flushed per record.

    ``flush()`` (no fsync) is the deliberate durability point: the
    threat model is the gateway *process* dying (chaos SIGKILL,
    supervisor restart), and flushed bytes live in the kernel regardless
    of what happens to the process. Machine-crash durability would add
    an fsync per accept and is not what the live plane simulates.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._fh = None

    def records(self) -> list[dict]:
        out: list[dict] = []
        if not os.path.exists(self.path):
            return out
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue  # torn tail write from a crash mid-append
                if isinstance(record, dict):
                    out.append(record)
        return out

    def append(self, record: dict) -> None:
        if self._fh is None:
            self._fh = open(self.path, "a", encoding="utf-8")
        self._fh.write(json.dumps(record, sort_keys=True,
                                  separators=(",", ":")) + "\n")
        self._fh.flush()

    def append_many(self, records: list[dict]) -> None:
        """Append N records with ONE flush — the batch-submit durability
        point. All-or-nothing to the same degree as ``append``: every
        line is in the userspace buffer before the single flush."""
        if not records:
            return
        if self._fh is None:
            self._fh = open(self.path, "a", encoding="utf-8")
        self._fh.write("".join(
            json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
            for record in records))
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class WorkQueue:
    """Durable job store + scheduler-facing work source (see module doc)."""

    def __init__(self, journal=None, prefix: str = "job") -> None:
        self.journal = journal
        self.prefix = prefix
        self.jobs: dict[str, Job] = {}
        self._queue: deque[str] = deque()
        self._seq = 0
        #: Clock for callers that can't pass ``now`` (the scheduler's
        #: ``complete(unit_id, result)`` two-arg protocol call). The
        #: owning driver installs its own clock — wall seconds live,
        #: simulated seconds in the twin.
        self.clock = None
        #: Observability hooks, both optional and off by default so the
        #: queue costs nothing when untelemetered: ``telemetry`` emits
        #: per-job lifecycle spans parented on the job's ingress trace,
        #: ``events`` feeds the gateway's /events long-poll ring.
        self.telemetry = None
        self.events = None
        self.component = "workqueue"
        #: Lifecycle meters (JSON-safe; shipped in node stats).
        self.submitted = 0
        self.completed = 0
        self.cancelled = 0
        self.requeued = 0
        self.results_dropped = 0
        self.results_rejected = 0
        if journal is not None:
            self.replay()

    # -- journal --------------------------------------------------------------
    def _log(self, record: dict) -> None:
        if self.journal is not None:
            self.journal.append(record)

    # -- observability hooks --------------------------------------------------
    def _now(self) -> float:
        return self.clock() if self.clock is not None else 0.0

    def _span(self, name: str, now: float, parent, outcome: str = "ok",
              **args) -> None:
        tel = self.telemetry
        if tel is None or not tel.tracer.enabled or parent is None:
            return
        tel.tracer.instant(name, now, component=self.component,
                           parent=tuple(parent), outcome=outcome,
                           args=args or None)

    def _event(self, event: str, job_id: str, now: float, **extra) -> None:
        if self.events is not None:
            self.events.append({"event": event, "job": job_id,
                                "t": round(now, 6), **extra})

    def replay(self) -> int:
        """Rebuild the store from the journal; returns the number of
        jobs that came back *queued* (i.e. requeued-not-dropped)."""
        self.jobs.clear()
        self._queue.clear()
        top = 0
        for record in self.journal.records():
            op = record.get("op")
            job_id = record.get("id")
            if op == "submit" and isinstance(job_id, str):
                spec = record.get("spec")
                job = Job(job_id, spec if isinstance(spec, dict) else {},
                          float(record.get("t", 0.0)))
                trace = record.get("trace")
                if (isinstance(trace, (list, tuple)) and len(trace) == 2):
                    # The causal chain survives the restart: the reborn
                    # gateway keeps parenting on the original ingress.
                    job.trace = (int(trace[0]), int(trace[1]))
                self.jobs[job_id] = job
                self._queue.append(job_id)
                tail = job_id.rpartition("-")[2]
                if tail.isdigit():
                    top = max(top, int(tail))
            elif job_id in self.jobs:
                job = self.jobs[job_id]
                if job.state in ("done", "cancelled"):
                    # Terminal states are final on replay exactly as they
                    # are live: a stray "done" record landing after a
                    # cancel (torn journal, hostile edit) must not
                    # resurrect the job, and vice versa.
                    continue
                if op == "done":
                    job.state = "done"
                    job.result = record.get("result")
                    job.finished_at = record.get("t")
                elif op == "cancel":
                    job.state = "cancelled"
                    job.finished_at = record.get("t")
        self._seq = top
        # Everything not terminal goes back in the queue, submit order.
        self._queue = deque(
            job_id for job_id in self._queue
            if self.jobs[job_id].state not in ("done", "cancelled"))
        for job_id in self._queue:
            self.jobs[job_id].state = "queued"
        return len(self._queue)

    # -- job lifecycle (the HTTP routers' side) ------------------------------
    def submit(self, spec: dict, now: float,
               trace: Optional[tuple[int, int]] = None) -> Job:
        """Accept one job; the journal record is flushed before return.

        ``trace`` is the (trace_id, span_id) of the gateway's ingress
        span; it is journaled with the record and stamped into the unit
        handed out by :meth:`next_unit`, so every downstream span —
        scheduler assignment, client work slices across incarnations,
        requeues, completion — joins one causal chain.
        """
        self._seq += 1
        job = Job(f"{self.prefix}-{self._seq}", dict(spec), now)
        record = {"op": "submit", "id": job.id, "spec": job.spec, "t": now}
        if trace is not None:
            job.trace = (int(trace[0]), int(trace[1]))
            record["trace"] = job.trace  # json renders the tuple as a list
        self._log(record)
        # Inlined _span: submits are the hot path, and the parent ingress
        # span already names the job, so no args either.
        tel = self.telemetry
        if tel is not None and job.trace is not None and tel.tracer.enabled:
            tel.tracer.instant("journal flush", now,
                               component=self.component, parent=job.trace)
        self.jobs[job.id] = job
        self._queue.append(job.id)
        self.submitted += 1
        self._event("submitted", job.id, now)
        return job

    def submit_batch(self, specs: list[dict], now: float,
                     trace: Optional[tuple[int, int]] = None) -> list[Job]:
        """Accept N jobs with ONE journal flush (``POST /jobs/batch``).

        An ME algorithm pushing a generation of evaluations should not
        pay a flush per task: all submit records are written together
        and flushed once, then the jobs enter the queue in list order.
        Callers validate specs *before* calling — by the time we are
        here the whole batch is accepted.
        """
        jobs: list[Job] = []
        records: list[dict] = []
        for spec in specs:
            self._seq += 1
            job = Job(f"{self.prefix}-{self._seq}", dict(spec), now)
            record = {"op": "submit", "id": job.id, "spec": job.spec,
                      "t": now}
            if trace is not None:
                job.trace = (int(trace[0]), int(trace[1]))
                record["trace"] = job.trace
            jobs.append(job)
            records.append(record)
        if self.journal is not None:
            append_many = getattr(self.journal, "append_many", None)
            if append_many is not None:
                append_many(records)
            else:
                for record in records:
                    self.journal.append(record)
        tel = self.telemetry
        if (jobs and tel is not None and jobs[0].trace is not None
                and tel.tracer.enabled):
            tel.tracer.instant("journal flush", now,
                               component=self.component,
                               parent=jobs[0].trace,
                               args={"jobs": len(jobs)})
        for job in jobs:
            self.jobs[job.id] = job
            self._queue.append(job.id)
            self.submitted += 1
            self._event("submitted", job.id, now)
        return jobs

    def get(self, job_id: str) -> Optional[Job]:
        return self.jobs.get(job_id)

    def cancel(self, job_id: str, now: float) -> Optional[Job]:
        """Cancel a job; idempotent (a second cancel is a no-op, not an
        error). Returns None for unknown ids. Cancelling a *done* job is
        also a no-op — the result already exists. An assigned job is
        marked cancelled here and its eventual completion is dropped."""
        job = self.jobs.get(job_id)
        if job is None:
            return None
        if job.state in ("done", "cancelled"):
            return job
        self._log({"op": "cancel", "id": job_id, "t": now})
        if job.state == "queued":
            try:
                self._queue.remove(job_id)
            except ValueError:
                pass
        job.state = "cancelled"
        job.finished_at = now
        self.cancelled += 1
        self._span("job cancel", now, job.trace, id=job.id)
        self._event("cancelled", job.id, now)
        return job

    def counts(self) -> dict:
        out = {state: 0 for state in JOB_STATES}
        for job in self.jobs.values():
            out[job.state] += 1
        out["total"] = len(self.jobs)
        return out

    # -- WorkSource protocol (the scheduler's side) --------------------------
    def next_unit(self) -> Optional[dict]:
        while self._queue:
            job_id = self._queue.popleft()
            job = self.jobs.get(job_id)
            if job is None or job.state != "queued":
                continue
            job.state = "assigned"
            now = self._now()
            self._span("job assign", now, job.trace, id=job.id)
            self._event("assigned", job.id, now)
            # The unit handed to clients is the spec plus the job id —
            # SCH_REPORT's unit_id is how completion finds its way back.
            unit = {**job.spec, "id": job.id}
            if job.trace is not None:
                # The trace context rides inside the unit dict itself, so
                # it crosses the SCH_WORK wire frame (and any journal or
                # checkpoint that round-trips the unit) with no protocol
                # change; `validate_unit` tolerates extra keys.
                unit["trace"] = list(job.trace)
            return unit
        return None

    def requeue(self, unit: dict) -> None:
        job = self.jobs.get(str(unit.get("id")))
        if job is None or job.state in ("done", "cancelled"):
            return  # a cancelled in-flight unit dies here, silently
        job.state = "queued"
        job.requeues += 1
        self.requeued += 1
        now = self._now()
        self._span("job requeue", now, job.trace, outcome="requeue",
                   id=job.id, requeues=job.requeues)
        self._event("requeued", job.id, now, requeues=job.requeues)
        # Front of the queue: requeued units represent in-flight work.
        self._queue.appendleft(job.id)

    def complete(self, unit_id: str, result: dict,
                 now: Optional[float] = None) -> None:
        if now is None:
            now = self.clock() if self.clock is not None else 0.0
        job = self.jobs.get(str(unit_id))
        if job is None:
            return
        if job.state == "cancelled":
            # Raced a cancel: the user said stop; drop the result.
            self.results_dropped += 1
            return
        if job.state == "done":
            return  # duplicate completion report
        check = kind_registry.checker_for(job.spec)
        if check is not None:
            try:
                check(job.spec, result)
            except ResultCheckError:
                # §3.1: distrust remote results. A completion that fails
                # its kind's sanity check is requeued for honest re-
                # execution, and nothing reaches the journal — as if the
                # report never arrived.
                self.results_rejected += 1
                if job.state == "assigned":
                    job.state = "queued"
                    self._queue.appendleft(job.id)
                # (state "queued" means a reaper already requeued it —
                # just count the rejection.)
                self._span("job result rejected", now, job.trace,
                           outcome="rejected", id=job.id)
                self._event("rejected", job.id, now)
                return
        self._log({"op": "done", "id": job.id, "result": result, "t": now})
        job.state = "done"
        job.result = result
        job.finished_at = now
        self.completed += 1
        self._span("job done", now, job.trace, id=job.id)
        self._event("done", job.id, now)

    def __len__(self) -> int:
        return len(self._queue)

    def close(self) -> None:
        if self.journal is not None:
            self.journal.close()

    def stats(self) -> dict:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "cancelled": self.cancelled,
            "requeued": self.requeued,
            "results_dropped": self.results_dropped,
            "results_rejected": self.results_rejected,
            "depth": len(self._queue),
            **{f"state_{k}": v for k, v in self.counts().items()},
        }
