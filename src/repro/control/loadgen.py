"""Synthetic gateway users: a single-threaded HTTP storm driver.

Drives hundreds to thousands of concurrent keep-alive connections
against one gateway from a single poll loop — the load-generator
counterpart of the transport benchmark's echo storm, speaking HTTP
instead of CRC packets. Each logical client runs an independent
submit/query/cancel loop (per-client RNG, so mixes are reproducible),
one request in flight per connection; dead connections (a SIGKILLed
gateway, injected churn) reconnect with a short backoff, exactly like
external users hammering refresh while a service restarts.

Used by ``benchmarks/bench_gateway.py`` (floors on submissions/s and
query p99 at 1,000+ connections) and by the ``repro serve`` harness
(the 200-client storm in the ``gateway-smoke`` CI job). Accepted job
ids — submissions the gateway answered 201 — are recorded so the
harness can sweep them afterwards and prove none was lost across a
kill/restart.
"""

from __future__ import annotations

import errno
import random
import selectors
import socket
import time
from typing import Callable, Optional

from .http import HttpResponseDecoder, HttpError

__all__ = ["GatewayStorm", "StormStats"]

_INPROGRESS = {errno.EINPROGRESS, errno.EWOULDBLOCK, errno.EALREADY}

#: Reconnect backoff after a refused/reset connection (seconds). Short:
#: the supervisor's restart backoff dominates an outage, and clients
#: knocking politely is what "no accepted job lost" is measured under.
RECONNECT_DELAY = 0.1


def _default_spec(rng: random.Random) -> dict:
    return {"kind": "noop", "payload": rng.randrange(1 << 16)}


class StormStats:
    """Aggregate meters across every logical client."""

    __slots__ = ("submitted", "queried", "cancelled", "errors",
                 "reconnects", "rejected", "query_latencies",
                 "submit_latencies")

    def __init__(self) -> None:
        self.submitted = 0
        self.queried = 0
        self.cancelled = 0
        self.errors = 0
        self.reconnects = 0
        self.rejected = 0
        self.query_latencies: list[float] = []
        self.submit_latencies: list[float] = []

    def to_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "queried": self.queried,
            "cancelled": self.cancelled,
            "errors": self.errors,
            "reconnects": self.reconnects,
            "rejected": self.rejected,
        }


class _Client:
    """One logical user: a connection, a decoder, one in-flight request."""

    __slots__ = ("idx", "rng", "sock", "decoder", "connected", "outbuf",
                 "inflight", "ids", "served", "retry_at", "want_write")

    def __init__(self, idx: int, rng: random.Random) -> None:
        self.idx = idx
        self.rng = rng
        self.sock: Optional[socket.socket] = None
        self.decoder = HttpResponseDecoder()
        self.connected = False
        self.outbuf = b""
        #: (kind, job_id, t0) of the request awaiting its response.
        self.inflight: Optional[tuple[str, Optional[str], float]] = None
        self.ids: list[str] = []
        self.served = 0  # requests completed on this connection (churn)
        self.retry_at = 0.0
        self.want_write = False


class GatewayStorm:
    """Pumpable storm of ``clients`` concurrent gateway users.

    Call :meth:`step` from the harness loop (or :meth:`run_for` to pump
    flat out); stats accumulate in :attr:`stats` and every accepted job
    id lands in :attr:`accepted`.
    """

    def __init__(
        self,
        host: str,
        port: int,
        clients: int = 200,
        seed: int = 0,
        submit_fraction: float = 0.5,
        cancel_fraction: float = 0.1,
        churn_every: int = 0,
        spec_factory: Callable[[random.Random], dict] = _default_spec,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.submit_fraction = submit_fraction
        self.cancel_fraction = cancel_fraction
        #: Close and reopen a connection after this many responses
        #: (0 = no churn): models users coming and going.
        self.churn_every = churn_every
        self.spec_factory = spec_factory
        self.stats = StormStats()
        self.accepted: list[str] = []
        self._sel = selectors.DefaultSelector()
        self._clients = [
            _Client(i, random.Random(f"{seed}:{i}")) for i in range(clients)
        ]
        self._closed = False
        self._quiescing = False

    # -- connection lifecycle -------------------------------------------------
    def _open(self, client: _Client) -> None:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setblocking(False)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass
        try:
            err = sock.connect_ex((self.host, self.port))
        except OSError as exc:
            err = exc.errno or errno.EINVAL
        if err != 0 and err not in _INPROGRESS:
            sock.close()
            self._fail(client)
            return
        client.sock = sock
        client.decoder = HttpResponseDecoder()
        client.connected = err == 0
        client.served = 0
        client.want_write = True
        self._sel.register(sock, selectors.EVENT_READ | selectors.EVENT_WRITE,
                           client)
        if client.connected:
            self._issue(client)

    def _teardown(self, client: _Client) -> None:
        if client.sock is not None:
            try:
                self._sel.unregister(client.sock)
            except (KeyError, ValueError):
                pass
            try:
                client.sock.close()
            except OSError:
                pass
        client.sock = None
        client.connected = False
        client.outbuf = b""
        client.inflight = None

    def _fail(self, client: _Client) -> None:
        """Connection died (gateway down or restarting): back off and
        let :meth:`step` reconnect. An unanswered request counts as an
        error — and an unanswered submit is *not* an accepted job."""
        if client.inflight is not None:
            self.stats.errors += 1
        self._teardown(client)
        self.stats.reconnects += 1
        client.retry_at = time.monotonic() + RECONNECT_DELAY

    # -- request generation ---------------------------------------------------
    def _next_request(self, client: _Client) -> tuple[str, Optional[str], bytes]:
        rng = client.rng
        roll = rng.random()
        if client.ids and roll >= self.submit_fraction:
            job_id = rng.choice(client.ids)
            if roll >= 1.0 - self.cancel_fraction:
                data = (f"POST /jobs/{job_id}/cancel HTTP/1.1\r\n"
                        f"Host: {self.host}\r\nContent-Length: 0\r\n\r\n")
                return "cancel", job_id, data.encode("latin-1")
            data = (f"GET /jobs/{job_id} HTTP/1.1\r\n"
                    f"Host: {self.host}\r\n\r\n")
            return "query", job_id, data.encode("latin-1")
        import json as _json

        body = _json.dumps(self.spec_factory(rng)).encode("utf-8")
        data = (f"POST /jobs HTTP/1.1\r\nHost: {self.host}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n\r\n").encode("latin-1") + body
        return "submit", None, data

    def _issue(self, client: _Client) -> None:
        kind, job_id, frame = self._next_request(client)
        client.inflight = (kind, job_id, time.monotonic())
        client.outbuf += frame
        self._write(client)

    # -- I/O ------------------------------------------------------------------
    def _arm(self, client: _Client, want_write: bool) -> None:
        if client.sock is None or client.want_write == want_write:
            return
        client.want_write = want_write
        events = selectors.EVENT_READ
        if want_write:
            events |= selectors.EVENT_WRITE
        self._sel.modify(client.sock, events, client)

    def _write(self, client: _Client) -> None:
        sock = client.sock
        while client.outbuf:
            try:
                sent = sock.send(client.outbuf)
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                self._fail(client)
                return
            client.outbuf = client.outbuf[sent:]
        self._arm(client, bool(client.outbuf))

    def _read(self, client: _Client) -> None:
        try:
            data = client.sock.recv(262144)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._fail(client)
            return
        if not data:
            self._fail(client)
            return
        client.decoder.feed(data)
        while client.inflight is not None:
            try:
                response = client.decoder.next_response()
            except HttpError:
                self._fail(client)
                return
            if response is None:
                return
            self._finish(client, *response)

    def _finish(self, client: _Client, status: int, headers: dict,
                body: bytes) -> None:
        kind, job_id, t0 = client.inflight
        client.inflight = None
        elapsed_ms = (time.monotonic() - t0) * 1000.0
        if kind == "submit":
            if status == 201:
                self.stats.submitted += 1
                self.stats.submit_latencies.append(elapsed_ms)
                import json as _json

                try:
                    accepted = _json.loads(body).get("id")
                except (ValueError, AttributeError):
                    accepted = None
                if isinstance(accepted, str):
                    client.ids.append(accepted)
                    self.accepted.append(accepted)
            else:
                self.stats.rejected += 1
        elif kind == "query":
            if status == 200:
                self.stats.queried += 1
                self.stats.query_latencies.append(elapsed_ms)
            else:
                self.stats.rejected += 1
        else:
            if status in (200, 404, 409):
                self.stats.cancelled += 1
            else:
                self.stats.rejected += 1
        client.served += 1
        if self._quiescing:
            self._teardown(client)
            return
        if headers.get("connection", "").lower() == "close":
            self._teardown(client)
            client.retry_at = 0.0
            return
        if self.churn_every and client.served >= self.churn_every:
            # Voluntary churn: this user leaves; a fresh one takes the
            # slot on the next step.
            self._teardown(client)
            self.stats.reconnects += 1
            client.retry_at = 0.0
            return
        self._issue(client)

    # -- pumping --------------------------------------------------------------
    def step(self, timeout: float = 0.0) -> None:
        """One poll turn: reconnect due clients, then service readiness."""
        if self._closed:
            return
        now = time.monotonic()
        if not self._quiescing:
            for client in self._clients:
                if client.sock is None and now >= client.retry_at:
                    self._open(client)
        for key, mask in self._sel.select(timeout):
            client: _Client = key.data
            if client.sock is None:
                continue
            if mask & selectors.EVENT_WRITE:
                if not client.connected:
                    err = client.sock.getsockopt(socket.SOL_SOCKET,
                                                 socket.SO_ERROR)
                    if err:
                        self._fail(client)
                        continue
                    client.connected = True
                    if client.inflight is None:
                        self._issue(client)
                self._write(client)
            if client.sock is not None and mask & selectors.EVENT_READ:
                self._read(client)

    def run_for(self, seconds: float, poll: float = 0.05) -> None:
        deadline = time.monotonic() + seconds
        while time.monotonic() < deadline:
            self.step(poll)

    def quiesce(self, grace: float = 2.0) -> None:
        """Stop issuing new requests; drain in-flight responses."""
        deadline = time.monotonic() + grace
        self._quiescing = True
        while (any(c.inflight is not None for c in self._clients)
               and time.monotonic() < deadline):
            self.step(0.02)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for client in self._clients:
            self._teardown(client)
        self._sel.close()
