"""The gateway's simulated-time twin: same router, deterministic world.

The live gateway is an :class:`~repro.control.http.HttpServer` feeding a
:class:`~repro.control.gateway.GatewayCore` on a real reactor. Its twin
here is :class:`GatewayComponent` — a sans-IO component speaking the
same routing table over lingua-franca messages (``GW_REQ`` carries
``{method, path, body}``, ``GW_RES`` carries ``{status, body}``) under
simulated time, with :class:`SimJobUser` components playing external
HTTP users and :class:`SimJobWorker` components playing computational
clients pulling jobs over the usual SCH_* protocol.

Everything is driven by the simulation's seeded RNG streams and virtual
clock, so :func:`run_sim_serve` is *deterministic*: the same seed yields
a byte-identical report, run after run — which is what lets CI diff two
runs to prove the control plane's logic (submission, assignment,
cancel races, restart recovery) contains no hidden nondeterminism.

A simulated gateway "restart" (``restart_after``) is the deterministic
analogue of the live SIGKILL + supervisor respawn: scheduler state and
in-flight assignments are discarded, and the job store is rebuilt from
the :class:`~repro.control.workqueue.MemoryJournal` — accepted jobs must
all survive, requeued-not-dropped, exactly like the live journal replay.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict
from typing import Optional

from ..core.component import Component, Effect, LogLine, Send, SetTimer
from ..core.forecasting.benchmarking import ForecastRegistry
from ..core.linguafranca.messages import Message
from ..core.services.scheduler import (
    SCH_ACK,
    SCH_DIRECTIVE,
    SCH_HELLO,
    SCH_REPORT,
    SCH_WORK,
    SchedulerServer,
)
from ..core.simdriver import SimDriver
from ..core.telemetry import Telemetry
from ..simgrid.engine import Environment
from ..simgrid.host import Host, HostSpec
from ..simgrid.load import ConstantLoad
from ..simgrid.network import Network
from ..simgrid.rand import RngStreams
from .gateway import GatewayCore
from .workqueue import MemoryJournal, WorkQueue

__all__ = [
    "GW_REQ",
    "GW_RES",
    "GatewayComponent",
    "SimJobUser",
    "SimJobWorker",
    "run_sim_serve",
]

GW_REQ = "GW_REQ"
GW_RES = "GW_RES"

T_RESTART = "gw:restart"
T_NEXT = "usr:next"
T_HELLO = "wrk:hello"
T_DONE = "wrk:done"


class GatewayComponent(SchedulerServer):
    """The control-plane gateway as a sans-IO component.

    Downward it *is* a :class:`SchedulerServer` (workers pull jobs over
    SCH_*); upward it answers ``GW_REQ`` messages through the identical
    :class:`GatewayCore` router the live HTTP wrapper uses. The work
    source is a journal-backed :class:`WorkQueue`; ``restart_after``
    schedules one simulated crash+restart (state rebuilt from the
    journal) at that many simulated seconds after start.
    """

    def __init__(
        self,
        name: str,
        journal=None,
        restart_after: Optional[float] = None,
        report_period: float = 0.5,
        reap_period: float = 0.5,
        dead_factor: float = 4.0,
    ) -> None:
        work = WorkQueue(
            journal=journal if journal is not None else MemoryJournal(),
            prefix=f"{name}-job")
        super().__init__(name, work,
                         report_period=report_period,
                         reap_period=reap_period,
                         dead_factor=dead_factor)
        self.restart_after = restart_after
        self.restarts = 0
        self.requeued_on_restart = 0
        self._now = 0.0
        work.clock = lambda: self._now
        self.core = GatewayCore(name, work, telemetry=self.telemetry)

    def bind_telemetry(self, telemetry: Telemetry) -> None:
        super().bind_telemetry(telemetry)
        self.core.telemetry = telemetry

    # -- lifecycle ------------------------------------------------------------
    def on_start(self, now: float) -> list[Effect]:
        self._now = now
        self.core.started_at = now
        effects = super().on_start(now)
        if self.restart_after is not None:
            effects.append(SetTimer(T_RESTART, self.restart_after))
        return effects

    def on_timer(self, key: str, now: float) -> list[Effect]:
        self._now = now
        if key == T_RESTART:
            return self._restart(now)
        return super().on_timer(key, now)

    def _restart(self, now: float) -> list[Effect]:
        """Simulated process death + respawn: everything a SIGKILL takes
        (client table, forecasts, in-flight assignments) dies; the job
        store comes back from the journal, unfinished jobs requeued."""
        self.restarts += 1
        self.clients.clear()
        self.forecasts = ForecastRegistry()
        self.requeued_on_restart = self.work.replay()
        return [LogLine(
            f"simulated restart #{self.restarts}: "
            f"{self.requeued_on_restart} job(s) requeued from the journal")]

    # -- messages -------------------------------------------------------------
    def on_message(self, message: Message, now: float) -> list[Effect]:
        self._now = now
        if message.mtype == GW_REQ:
            body = message.body
            raw = body.get("body")
            if isinstance(raw, dict):
                data = json.dumps(raw, sort_keys=True).encode("utf-8")
            elif isinstance(raw, str):
                data = raw.encode("utf-8")
            else:
                data = b""
            status, doc, _route = self.core.handle(
                str(body.get("method", "GET")), str(body.get("path", "/")),
                data, now)
            return [Send(message.sender, message.reply(
                GW_RES, sender=self.contact,
                body={"status": status, "body": doc,
                      "rid": body.get("rid")}))]
        return super().on_message(message, now)


class SimJobUser(Component):
    """One synthetic external user under simulated time.

    The deterministic analogue of one :class:`GatewayStorm` client: a
    seeded submit/query/cancel loop, one request in flight, latencies
    measured on the simulated clock.
    """

    def __init__(
        self,
        name: str,
        gateway: str,
        idx: int = 0,
        seed: int = 0,
        period: float = 1.0,
        submit_fraction: float = 0.6,
        cancel_fraction: float = 0.1,
    ) -> None:
        super().__init__(name)
        self.gateway = gateway
        self.rng = random.Random(f"{seed}:{idx}")
        self.period = period
        self.submit_fraction = submit_fraction
        self.cancel_fraction = cancel_fraction
        self.accepted: list[str] = []
        self.submitted = 0
        self.queried = 0
        self.cancelled = 0
        self.rejected = 0
        self.done_seen = 0
        self.latencies_ms: list[float] = []
        self._rid = 0
        #: (kind, rid, t0) of the request awaiting its GW_RES.
        self._inflight: Optional[tuple[str, int, float]] = None

    def on_start(self, now: float) -> list[Effect]:
        # Stagger users deterministically inside the first period.
        return [SetTimer(T_NEXT, self.period * (0.1 + 0.8 * self.rng.random()))]

    def on_timer(self, key: str, now: float) -> list[Effect]:
        if key != T_NEXT or self._inflight is not None:
            return []
        return self._issue(now)

    def _issue(self, now: float) -> list[Effect]:
        self._rid += 1
        roll = self.rng.random()
        if self.accepted and roll >= self.submit_fraction:
            job_id = self.rng.choice(self.accepted)
            if roll >= 1.0 - self.cancel_fraction:
                kind, method, path, body = (
                    "cancel", "POST", f"/jobs/{job_id}/cancel", None)
            else:
                kind, method, path, body = (
                    "query", "GET", f"/jobs/{job_id}", None)
        else:
            kind, method, path = "submit", "POST", "/jobs"
            body = {"kind": "noop",
                    "delay": round(self.rng.uniform(0.05, 0.5), 3),
                    "payload": self.rng.randrange(1 << 16)}
        self._inflight = (kind, self._rid, now)
        return [Send(self.gateway, Message(
            mtype=GW_REQ, sender=self.contact,
            body={"method": method, "path": path, "body": body,
                  "rid": self._rid}))]

    def on_message(self, message: Message, now: float) -> list[Effect]:
        if message.mtype != GW_RES or self._inflight is None:
            return []
        kind, rid, t0 = self._inflight
        if message.body.get("rid") != rid:
            return []  # stale response from a previous conversation
        self._inflight = None
        self.latencies_ms.append(round((now - t0) * 1000.0, 6))
        status = int(message.body.get("status", 0))
        doc = message.body.get("body")
        doc = doc if isinstance(doc, dict) else {}
        if kind == "submit":
            if status == 201 and isinstance(doc.get("id"), str):
                self.submitted += 1
                self.accepted.append(doc["id"])
            else:
                self.rejected += 1
        elif kind == "query":
            if status == 200:
                self.queried += 1
                if doc.get("state") == "done":
                    self.done_seen += 1
            else:
                self.rejected += 1
        else:
            if status in (200, 404, 409):
                self.cancelled += 1
            else:
                self.rejected += 1
        return [SetTimer(T_NEXT, self.period)]

    def stats(self) -> dict:
        return {
            "submitted": self.submitted,
            "queried": self.queried,
            "cancelled": self.cancelled,
            "rejected": self.rejected,
            "done_seen": self.done_seen,
            "accepted": list(self.accepted),
            "requests": self._rid,
        }


class SimJobWorker(Component):
    """A minimal computational client for the twin: pulls jobs over the
    scheduler protocol and "executes" each as a timed delay (the spec's
    ``delay`` field), then reports done. Application-agnostic on
    purpose — the twin exercises the control plane, not the Ramsey
    search (the live plane runs real :class:`RamseyClient`\\ s)."""

    def __init__(self, name: str, gateway: str,
                 hello_retry: float = 1.0) -> None:
        super().__init__(name)
        self.gateway = gateway
        self.hello_retry = hello_retry
        self.unit: Optional[dict] = None
        self.units_done = 0

    def on_start(self, now: float) -> list[Effect]:
        return [self._hello(), SetTimer(T_HELLO, self.hello_retry)]

    def _hello(self) -> Send:
        return Send(self.gateway, Message(
            mtype=SCH_HELLO, sender=self.contact, body={"infra": "sim"}))

    def _ack(self, message: Message) -> list[Effect]:
        if message.req_id is None:
            return []
        return [Send(message.sender, message.reply(
            SCH_ACK, sender=self.contact,
            body={"unit_id": (message.body.get("unit") or {}).get("id")}))]

    def _take(self, unit: Optional[dict], now: float) -> list[Effect]:
        if unit is None:
            # Queue was empty: knock again after a beat.
            return [SetTimer(T_HELLO, self.hello_retry)]
        self.unit = unit
        delay = float(unit.get("delay", 0.1))
        return [SetTimer(T_DONE, max(delay, 0.001))]

    def on_message(self, message: Message, now: float) -> list[Effect]:
        if message.mtype == SCH_WORK:
            ack = self._ack(message)
            if self.unit is not None:
                return ack  # duplicate delivery mid-unit: keep working
            return ack + self._take(message.body.get("unit"), now)
        if message.mtype == SCH_DIRECTIVE:
            ack = self._ack(message)
            if message.body.get("action") in ("new_work", "migrate"):
                if self.unit is None:
                    return ack + self._take(message.body.get("unit"), now)
            return ack
        return []

    def on_timer(self, key: str, now: float) -> list[Effect]:
        if key == T_HELLO:
            if self.unit is None:
                return [self._hello(), SetTimer(T_HELLO, self.hello_retry)]
            return []
        if key == T_DONE and self.unit is not None:
            unit, self.unit = self.unit, None
            self.units_done += 1
            return [Send(self.gateway, Message(
                mtype=SCH_REPORT, sender=self.contact,
                body={"unit_id": unit.get("id"), "done": True,
                      "rate": 1.0, "infra": "sim",
                      "result": {"worker": self.name,
                                 "payload": unit.get("payload")}}))]
        return []


def run_sim_serve(
    seed: int = 0,
    users: int = 4,
    workers: int = 3,
    duration: float = 120.0,
    user_period: float = 1.0,
    submit_fraction: float = 0.6,
    cancel_fraction: float = 0.1,
    restart_after: Optional[float] = None,
    telemetry: Optional[Telemetry] = None,
) -> dict:
    """Run the control-plane twin; returns a JSON-safe, deterministic
    report (same seed ⇒ byte-identical ``json.dumps(..., sort_keys=True)``).

    The report carries the twin's own invariant checks: every accepted
    job id must still be known to the gateway at the end (``jobs_lost``
    empty), across the simulated restart if one was scheduled.
    """
    env = Environment()
    streams = RngStreams(seed=seed)
    telemetry = telemetry if telemetry is not None else Telemetry()
    network = Network(env, streams, base_latency=0.01, jitter=0.1)
    network.attach_telemetry(telemetry)
    sites = ["ucsd", "utk", "uva", "ncsa"]

    def spawn(name: str, idx: int, port: str, component: Component) -> None:
        host = Host(env, HostSpec(
            name=name, site=sites[idx % len(sites)], infra="service",
            speed=2e7, load_model=ConstantLoad(1.0)), streams)
        network.add_host(host)
        host.start()
        SimDriver(env, network, host, port, component, streams).start()

    gateway = GatewayComponent("gw0", restart_after=restart_after)
    spawn("gw0", 0, "gw", gateway)
    contact = "gw0/gw"
    worker_components = [SimJobWorker(f"wrk{i}", contact)
                         for i in range(workers)]
    for i, wrk in enumerate(worker_components):
        spawn(f"wrk{i}", i + 1, "wrk", wrk)
    user_components = [
        SimJobUser(f"user{i}", contact, idx=i, seed=seed,
                   period=user_period, submit_fraction=submit_fraction,
                   cancel_fraction=cancel_fraction)
        for i in range(users)
    ]
    for i, user in enumerate(user_components):
        spawn(f"user{i}", i + 1 + workers, "usr", user)

    env.run(until=duration)

    accepted = [job_id for user in user_components
                for job_id in user.accepted]
    known = gateway.work.jobs
    jobs_lost = sorted(job_id for job_id in accepted
                       if job_id not in known)
    violations: list[str] = []
    if jobs_lost:
        violations.append(
            f"{len(jobs_lost)} accepted job(s) unknown to the gateway "
            f"after the run: {jobs_lost[:5]}")
    if restart_after is not None and gateway.restarts != 1:
        violations.append(
            f"expected exactly one simulated restart, saw {gateway.restarts}")
    return {
        "config": {
            "seed": seed, "users": users, "workers": workers,
            "duration": duration, "user_period": user_period,
            "submit_fraction": submit_fraction,
            "cancel_fraction": cancel_fraction,
            "restart_after": restart_after,
        },
        "gateway": {
            "requests": gateway.core.requests,
            "rejected": gateway.core.rejected,
            "restarts": gateway.restarts,
            "requeued_on_restart": gateway.requeued_on_restart,
            "scheduler": asdict(gateway.stats),
            "work": gateway.work.stats(),
        },
        "users": {user.name: user.stats() for user in user_components},
        "workers": {wrk.name: wrk.units_done for wrk in worker_components},
        "accepted_total": len(accepted),
        "jobs_lost": jobs_lost,
        "violations": violations,
        "metrics": telemetry.snapshot(),
    }
