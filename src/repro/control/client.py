"""Blocking HTTP/JSON client for the gateway.

The control plane's counterpart of :class:`~repro.live.harness.Probe`: a
simple synchronous client for tests, harness verify sweeps, and tools.
Stdlib ``http.client`` underneath — the point of an HTTP gateway is that
the client side needs nothing EveryWare-specific at all.

One cached connection, reopened transparently when the gateway restarts
(the probe-after-kill path): a request that fails on a cached connection
is retried exactly once on a fresh one, mirroring the lingua-franca
:class:`~repro.core.linguafranca.tcp.TcpClient` reuse contract.
"""

from __future__ import annotations

import http.client
import json
import socket
from typing import Optional

from .http import HttpError

__all__ = ["GatewayClient"]


class GatewayClient:
    """Synchronous job-management client for one gateway contact."""

    def __init__(self, contact: str, timeout: float = 5.0) -> None:
        host, _, port = contact.rpartition(":")
        if not host or not port:
            raise ValueError(f"malformed gateway contact {contact!r}")
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None
        self.reconnects = 0

    # -- plumbing -------------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
        return self._conn

    def _drop(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:
                pass
            self._conn = None

    def _once_raw(self, method: str, path: str,
                  body: Optional[bytes]) -> tuple[int, bytes]:
        conn = self._connection()
        headers = {"Content-Type": "application/json"} if body else {}
        conn.request(method, path, body=body, headers=headers)
        response = conn.getresponse()
        payload = response.read()
        if response.will_close:
            self._drop()
        return response.status, payload

    def _once(self, method: str, path: str,
              body: Optional[bytes]) -> tuple[int, dict]:
        status, payload = self._once_raw(method, path, body)
        try:
            doc = json.loads(payload) if payload else {}
        except ValueError as exc:
            raise HttpError(f"non-JSON gateway response: {exc}") from exc
        return status, doc if isinstance(doc, dict) else {}

    def request(self, method: str, path: str,
                obj: Optional[dict] = None) -> tuple[int, dict]:
        """One request/response; returns ``(status, parsed JSON body)``.

        Raises :class:`HttpError` when the gateway is unreachable (after
        the one transparent retry on a fresh connection).
        """
        body = (json.dumps(obj).encode("utf-8")
                if obj is not None else None)
        try:
            return self._once(method, path, body)
        except (OSError, http.client.HTTPException, socket.timeout):
            # Cached connection went stale (gateway restarted): once more
            # on a fresh socket, then give up loudly.
            self._drop()
        try:
            return self._once(method, path, body)
        except (OSError, http.client.HTTPException, socket.timeout) as exc:
            self._drop()
            raise HttpError(
                f"gateway {self.host}:{self.port} unreachable: {exc}") from exc
        finally:
            self.reconnects += 1

    def request_raw(self, method: str, path: str,
                    body: Optional[bytes] = None) -> tuple[int, bytes]:
        """Like :meth:`request` but without JSON parsing — for the text
        routes (Prometheus /metrics, JSONL /events)."""
        try:
            return self._once_raw(method, path, body)
        except (OSError, http.client.HTTPException, socket.timeout):
            self._drop()
        try:
            return self._once_raw(method, path, body)
        except (OSError, http.client.HTTPException, socket.timeout) as exc:
            self._drop()
            raise HttpError(
                f"gateway {self.host}:{self.port} unreachable: {exc}") from exc
        finally:
            self.reconnects += 1

    # -- the job API ----------------------------------------------------------
    def submit(self, spec: dict) -> dict:
        """Submit one job; returns the acceptance record (raises on 4xx)."""
        status, doc = self.request("POST", "/jobs", spec)
        if status != 201:
            raise HttpError(f"submit rejected ({status}): {doc}")
        return doc

    def submit_batch(self, specs: list[dict]) -> list[str]:
        """Submit N jobs in one request (one journal flush gateway-side);
        returns all assigned ids, in spec order. Raises on 4xx — the
        batch is atomic, so a rejection means nothing was accepted."""
        status, doc = self.request("POST", "/jobs/batch",
                                   {"specs": list(specs)})
        if status != 201:
            raise HttpError(f"batch submit rejected ({status}): {doc}")
        return [str(job_id) for job_id in doc.get("ids", [])]

    def job(self, job_id: str) -> Optional[dict]:
        """Full job record, or None if the gateway does not know the id."""
        status, doc = self.request("GET", f"/jobs/{job_id}")
        return doc if status == 200 else None

    def cancel(self, job_id: str) -> tuple[int, dict]:
        return self.request("POST", f"/jobs/{job_id}/cancel")

    def jobs(self) -> dict:
        return self.request("GET", "/jobs")[1]

    def queue(self) -> dict:
        return self.request("GET", "/queue")[1]

    def health(self) -> dict:
        return self.request("GET", "/health")[1]

    def metrics(self) -> dict:
        """The JSON metrics snapshot (served at /metrics.json since
        /metrics became Prometheus text exposition)."""
        return self.request("GET", "/metrics.json")[1]

    def metrics_text(self) -> str:
        """Scrape /metrics: raw Prometheus text exposition."""
        status, payload = self.request_raw("GET", "/metrics")
        if status != 200:
            raise HttpError(f"metrics scrape failed ({status})")
        return payload.decode("utf-8")

    def events(self, since: int = -1, wait: float = 0.0,
               limit: int = 500) -> list[dict]:
        """Tail the job-lifecycle feed; ``wait`` long-polls server-side."""
        path = f"/events?since={int(since)}&limit={int(limit)}"
        if wait > 0:
            path += f"&wait={wait:g}"
        status, payload = self.request_raw("GET", path)
        if status != 200:
            raise HttpError(f"events poll failed ({status})")
        out = []
        for line in payload.decode("utf-8").splitlines():
            if line.strip():
                out.append(json.loads(line))
        return out

    def publish_sites(self, sites: dict) -> dict:
        """Push per-site utilisation gauges (the serve harness does this
        with collector-derived numbers)."""
        status, doc = self.request("POST", "/telemetry/sites",
                                   {"sites": sites})
        if status != 200:
            raise HttpError(f"site publish rejected ({status}): {doc}")
        return doc

    def publish_gossip(self, rollup: dict) -> dict:
        """Push a pool-wide gossip sync-plane rollup (see
        :func:`repro.experiments.bigpool.gossip_rollup`)."""
        status, doc = self.request("POST", "/telemetry/gossip",
                                   {"gossip": rollup})
        if status != 200:
            raise HttpError(f"gossip publish rejected ({status}): {doc}")
        return doc

    def close(self) -> None:
        self._drop()

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
