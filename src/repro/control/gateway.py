"""The gateway's request router, sans-IO.

:class:`GatewayCore` maps ``(method, path, body)`` to ``(status, JSON
document)`` over a :class:`~repro.control.workqueue.WorkQueue` — and
*only* that: no sockets, no clocks of its own. The live plane wraps it
in :class:`~repro.control.http.HttpServer` on the node's reactor; the
simulated twin drives the identical router from lingua-franca messages
under simulated time. One routing table, two planes — the same
sim/live contract every other EveryWare component honors.

Routes (diracx-style job management + health, ROADMAP item 2)::

    POST /jobs              submit one job (body = the JSON spec)
    GET  /jobs              queue counts + recent job ids
    GET  /jobs/{id}         full job record (state, spec, result)
    POST /jobs/{id}/cancel  cancel (idempotent; 409 once done)
    GET  /queue             queue/progress counters
    GET  /health            liveness + uptime + job counts
    GET  /metrics           the node's telemetry metrics snapshot

Every request lands in per-route telemetry: a request counter labelled
``{route, status}``, a latency histogram per route (observed by the I/O
wrapper, which owns the clock), and a trace span per request.
"""

from __future__ import annotations

import json
from typing import Optional

from ..core.telemetry import Telemetry
from .workqueue import WorkQueue

__all__ = ["GatewayCore", "ROUTES"]

#: Route keys as they appear in telemetry labels.
ROUTES = (
    "POST /jobs",
    "GET /jobs",
    "GET /jobs/{id}",
    "POST /jobs/{id}/cancel",
    "GET /queue",
    "GET /health",
    "GET /metrics",
)

#: Latency buckets for the per-route histograms (milliseconds).
LATENCY_BUCKETS_MS = (0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
                      100.0, 250.0, 1000.0)

#: ``GET /jobs`` returns at most this many recent ids.
MAX_LISTED_JOBS = 100


class GatewayCore:
    """Routing + validation over a WorkQueue (see module docstring)."""

    def __init__(self, name: str, work: WorkQueue,
                 telemetry: Optional[Telemetry] = None,
                 started_at: float = 0.0) -> None:
        self.name = name
        self.work = work
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.started_at = started_at
        self.requests = 0
        self.rejected = 0

    # -- bookkeeping ----------------------------------------------------------
    def _account(self, route: str, status: int, now: float) -> None:
        self.requests += 1
        if status >= 400:
            self.rejected += 1
        self.telemetry.metrics.counter(
            "http.requests", route=route, status=str(status)).inc()
        tracer = self.telemetry.tracer
        if tracer.enabled:
            span = tracer.begin(f"http {route}", component=self.name,
                                start=now, mtype=route)
            span.args["status"] = status
            tracer.finish(span, now, "ok" if status < 400 else "rejected")

    def observe_latency(self, route: str, elapsed_ms: float) -> None:
        """Called by the I/O wrapper, which owns the request clock."""
        self.telemetry.metrics.histogram(
            "http.latency_ms", bounds=LATENCY_BUCKETS_MS,
            route=route).observe(elapsed_ms)

    # -- routing --------------------------------------------------------------
    def handle(self, method: str, path: str, body: bytes,
               now: float) -> tuple[int, dict, str]:
        """Route one request; returns ``(status, doc, route_label)``."""
        path = path.split("?", 1)[0].rstrip("/") or "/"
        segments = [s for s in path.split("/") if s]
        status, doc, route = self._route(method, path, segments, body, now)
        self._account(route, status, now)
        return status, doc, route

    def _route(self, method: str, path: str, segments: list[str],
               body: bytes, now: float) -> tuple[int, dict, str]:
        if path == "/jobs":
            if method == "POST":
                return (*self._submit(body, now), "POST /jobs")
            if method == "GET":
                return (*self._list_jobs(), "GET /jobs")
            return 405, {"error": f"{method} not allowed on {path}"}, "/jobs"
        if len(segments) == 2 and segments[0] == "jobs":
            if method != "GET":
                return (405, {"error": f"{method} not allowed on {path}"},
                        "GET /jobs/{id}")
            return (*self._get_job(segments[1]), "GET /jobs/{id}")
        if (len(segments) == 3 and segments[0] == "jobs"
                and segments[2] == "cancel"):
            if method != "POST":
                return (405, {"error": f"{method} not allowed on {path}"},
                        "POST /jobs/{id}/cancel")
            return (*self._cancel(segments[1], now), "POST /jobs/{id}/cancel")
        if path == "/queue" and method == "GET":
            return (*self._queue(), "GET /queue")
        if path == "/health" and method == "GET":
            return (*self._health(now), "GET /health")
        if path == "/metrics" and method == "GET":
            return 200, self.telemetry.metrics.snapshot(), "GET /metrics"
        return 404, {"error": f"no route for {method} {path}"}, "none"

    # -- handlers -------------------------------------------------------------
    def _submit(self, body: bytes, now: float) -> tuple[int, dict]:
        try:
            spec = json.loads(body) if body else None
        except (ValueError, UnicodeDecodeError):
            return 400, {"error": "body is not valid JSON"}
        if not isinstance(spec, dict):
            return 400, {"error": "job spec must be a JSON object"}
        if "id" in spec:
            return 400, {"error": "job spec may not carry 'id' "
                                  "(the gateway assigns ids)"}
        job = self.work.submit(spec, now)
        return 201, {"id": job.id, "state": job.state,
                     "submitted_at": job.submitted_at}

    def _list_jobs(self) -> tuple[int, dict]:
        ids = list(self.work.jobs)
        return 200, {
            "counts": self.work.counts(),
            "jobs": ids[-MAX_LISTED_JOBS:],
            "truncated": len(ids) > MAX_LISTED_JOBS,
        }

    def _get_job(self, job_id: str) -> tuple[int, dict]:
        job = self.work.get(job_id)
        if job is None:
            return 404, {"error": f"no job {job_id!r}"}
        return 200, job.to_dict()

    def _cancel(self, job_id: str, now: float) -> tuple[int, dict]:
        job = self.work.get(job_id)
        if job is None:
            return 404, {"error": f"no job {job_id!r}"}
        if job.state == "done":
            return 409, {"error": f"job {job_id!r} already finished",
                         "id": job.id, "state": job.state}
        job = self.work.cancel(job_id, now)
        return 200, {"id": job.id, "state": job.state,
                     "finished_at": job.finished_at}

    def _queue(self) -> tuple[int, dict]:
        return 200, {"depth": len(self.work), **self.work.stats()}

    def _health(self, now: float) -> tuple[int, dict]:
        return 200, {
            "ok": True,
            "node": self.name,
            "uptime": now - self.started_at,
            "requests": self.requests,
            "rejected": self.rejected,
            "jobs": self.work.counts(),
        }
