"""The gateway's request router, sans-IO.

:class:`GatewayCore` maps ``(method, path, body)`` to ``(status, JSON
document)`` over a :class:`~repro.control.workqueue.WorkQueue` — and
*only* that: no sockets, no clocks of its own. The live plane wraps it
in :class:`~repro.control.http.HttpServer` on the node's reactor; the
simulated twin drives the identical router from lingua-franca messages
under simulated time. One routing table, two planes — the same
sim/live contract every other EveryWare component honors.

Routes (diracx-style job management + health, ROADMAP item 2)::

    POST /jobs              submit one job (body = the JSON spec)
    POST /jobs/batch        submit N jobs, one journal flush (201 + ids)
    GET  /jobs              queue counts + recent job ids
    GET  /jobs/{id}         full job record (state, spec, result)
    POST /jobs/{id}/cancel  cancel (idempotent; 409 once done)
    GET  /queue             queue/progress counters
    GET  /health            liveness + uptime + job counts
    GET  /metrics           Prometheus text exposition (DESIGN §14)
    GET  /metrics.json      the raw telemetry metrics snapshot (legacy)
    GET  /events            job-lifecycle feed, JSONL (long-poll capable)
    POST /telemetry/sites   per-site utilisation gauges (collector push)

Every request lands in per-route telemetry: a request counter labelled
``{route, status}``, a latency histogram per route (observed by the I/O
wrapper, which owns the clock), and a trace span per request. A POST
/jobs additionally roots the job's end-to-end trace: the ingress span's
context is journaled with the submission and stamped into the work unit
so every downstream actor parents on it.

Text routes (/metrics, /events) return a ``str`` payload instead of a
JSON document; I/O wrappers render either with :func:`render_payload`.
"""

from __future__ import annotations

import json
from typing import Optional, Union
from urllib.parse import unquote_plus

from ..core.telemetry import Telemetry
from ..obs.events import EventLog, render_jsonl
from ..obs.prom import CONTENT_TYPE as PROM_CONTENT_TYPE
from ..obs.prom import render_prometheus
from .http import json_response, text_response
from .workqueue import WorkQueue

__all__ = ["GatewayCore", "ROUTES", "TEXT_ROUTES", "render_payload"]

#: Route keys as they appear in telemetry labels.
ROUTES = (
    "POST /jobs",
    "POST /jobs/batch",
    "GET /jobs",
    "GET /jobs/{id}",
    "POST /jobs/{id}/cancel",
    "GET /queue",
    "GET /health",
    "GET /metrics",
    "GET /metrics.json",
    "GET /events",
    "POST /telemetry/sites",
    "POST /telemetry/gossip",
)

#: Routes whose payload is pre-rendered text, and the content type each
#: is served under.
TEXT_ROUTES = {
    "GET /metrics": PROM_CONTENT_TYPE,
    "GET /events": "application/x-ndjson",
}

#: Latency buckets for the per-route histograms (milliseconds).
LATENCY_BUCKETS_MS = (0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
                      100.0, 250.0, 1000.0)

#: ``GET /jobs`` returns at most this many recent ids.
MAX_LISTED_JOBS = 100

#: ``POST /jobs/batch`` accepts at most this many specs per request.
MAX_BATCH_JOBS = 10_000


def render_payload(status: int, payload: Union[dict, str], route: str,
                   close: bool = False) -> bytes:
    """One response frame for either payload kind the router returns:
    a JSON document (dict) or pre-rendered text (str, content type per
    :data:`TEXT_ROUTES`). Every I/O wrapper — live node, bench child,
    HTTP tests — renders through this, so text routes can't drift."""
    if isinstance(payload, str):
        return text_response(
            status, payload,
            content_type=TEXT_ROUTES.get(route, "text/plain; charset=utf-8"),
            close=close)
    return json_response(status, payload, close=close)


def _query_params(query: str) -> dict:
    params: dict[str, str] = {}
    for pair in query.split("&"):
        if not pair:
            continue
        key, _, value = pair.partition("=")
        params[unquote_plus(key)] = unquote_plus(value)
    return params


class GatewayCore:
    """Routing + validation over a WorkQueue (see module docstring)."""

    def __init__(self, name: str, work: WorkQueue,
                 telemetry: Optional[Telemetry] = None,
                 started_at: float = 0.0,
                 events: Optional[EventLog] = None) -> None:
        self.name = name
        self.work = work
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.started_at = started_at
        self.requests = 0
        self.rejected = 0
        #: The /events feed. The WorkQueue is the producer (it owns the
        #: job lifecycle); wire it up unless the caller already did.
        if events is None:
            events = work.events if work.events is not None else EventLog()
        self.events = events
        if work.events is None:
            work.events = events
        if work.telemetry is None:
            work.telemetry = self.telemetry
        work.component = name

    # -- bookkeeping ----------------------------------------------------------
    def _account(self, route: str, status: int, now: float) -> None:
        self.requests += 1
        if status >= 400:
            self.rejected += 1
        self.telemetry.metrics.counter(
            "http.requests", route=route, status=str(status)).inc()
        tracer = self.telemetry.tracer
        if tracer.enabled and status >= 400:
            # Only anomalies become spans. Healthy traffic is already
            # covered by the counters/latency histograms and by the
            # per-job ingress trace; a span per request would roughly
            # triple tracing's hot-path cost and flood the span shipper
            # at storm rates.
            span = tracer.begin(f"http {route}", component=self.name,
                                start=now, mtype=route)
            span.args["status"] = status
            tracer.finish(span, now, "rejected")

    def observe_latency(self, route: str, elapsed_ms: float) -> None:
        """Called by the I/O wrapper, which owns the request clock."""
        self.telemetry.metrics.histogram(
            "http.latency_ms", bounds=LATENCY_BUCKETS_MS,
            route=route).observe(elapsed_ms)

    # -- routing --------------------------------------------------------------
    def handle(self, method: str, path: str, body: bytes,
               now: float) -> tuple[int, Union[dict, str], str]:
        """Route one request; returns ``(status, payload, route_label)``.

        ``payload`` is a JSON document (dict) for most routes, or
        pre-rendered text (str) for the routes in :data:`TEXT_ROUTES` —
        render either with :func:`render_payload`.
        """
        path, _, query = path.partition("?")
        path = path.rstrip("/") or "/"
        segments = [s for s in path.split("/") if s]
        status, doc, route = self._route(method, path, segments, body,
                                         query, now)
        self._account(route, status, now)
        return status, doc, route

    def _route(self, method: str, path: str, segments: list[str],
               body: bytes, query: str, now: float
               ) -> tuple[int, Union[dict, str], str]:
        if path == "/jobs":
            if method == "POST":
                return (*self._submit(body, now), "POST /jobs")
            if method == "GET":
                return (*self._list_jobs(), "GET /jobs")
            return 405, {"error": f"{method} not allowed on {path}"}, "/jobs"
        if path == "/jobs/batch":
            if method != "POST":
                return (405, {"error": f"{method} not allowed on {path}"},
                        "POST /jobs/batch")
            return (*self._submit_batch(body, now), "POST /jobs/batch")
        if len(segments) == 2 and segments[0] == "jobs":
            if method != "GET":
                return (405, {"error": f"{method} not allowed on {path}"},
                        "GET /jobs/{id}")
            return (*self._get_job(segments[1]), "GET /jobs/{id}")
        if (len(segments) == 3 and segments[0] == "jobs"
                and segments[2] == "cancel"):
            if method != "POST":
                return (405, {"error": f"{method} not allowed on {path}"},
                        "POST /jobs/{id}/cancel")
            return (*self._cancel(segments[1], now), "POST /jobs/{id}/cancel")
        if path == "/queue" and method == "GET":
            return (*self._queue(), "GET /queue")
        if path == "/health" and method == "GET":
            return (*self._health(now), "GET /health")
        if path == "/metrics" and method == "GET":
            return (200, render_prometheus(self.telemetry.metrics.snapshot()),
                    "GET /metrics")
        if path == "/metrics.json" and method == "GET":
            return (200, self.telemetry.metrics.snapshot(),
                    "GET /metrics.json")
        if path == "/events" and method == "GET":
            return (*self._events(query), "GET /events")
        if path == "/telemetry/sites" and method == "POST":
            return (*self._sites(body), "POST /telemetry/sites")
        if path == "/telemetry/gossip" and method == "POST":
            return (*self._gossip(body), "POST /telemetry/gossip")
        return 404, {"error": f"no route for {method} {path}"}, "none"

    # -- handlers -------------------------------------------------------------
    def _submit(self, body: bytes, now: float) -> tuple[int, dict]:
        try:
            spec = json.loads(body) if body else None
        except (ValueError, UnicodeDecodeError):
            return 400, {"error": "body is not valid JSON"}
        if not isinstance(spec, dict):
            return 400, {"error": "job spec must be a JSON object"}
        if "id" in spec:
            return 400, {"error": "job spec may not carry 'id' "
                                  "(the gateway assigns ids)"}
        tracer = self.telemetry.tracer
        ingress = None
        if tracer.enabled:
            # The root of the job's end-to-end trace. Its context is
            # journaled with the submission and rides inside the work
            # unit, so scheduler assignment, every client incarnation's
            # work slices, requeues, and completion all chain back here.
            # parent=None always: the HTTP layer keeps no ambient span,
            # so skip the current_ctx() lookup on this hot path.
            ingress = tracer.begin("job ingress", component=self.name,
                                   start=now, mtype="POST /jobs")
        job = self.work.submit(
            spec, now,
            trace=None if ingress is None
            else (ingress.trace_id, ingress.span_id))
        if ingress is not None:
            ingress.args["job_id"] = job.id
            tracer.finish(ingress, now)
        return 201, {"id": job.id, "state": job.state,
                     "submitted_at": job.submitted_at}

    def _submit_batch(self, body: bytes, now: float) -> tuple[int, dict]:
        """N specs, one journal flush. Validation is atomic: a single
        bad spec 400s the whole batch and nothing is journaled — an ME
        pushing a generation either gets every task accepted or none."""
        try:
            doc = json.loads(body) if body else None
        except (ValueError, UnicodeDecodeError):
            return 400, {"error": "body is not valid JSON"}
        specs = doc.get("specs") if isinstance(doc, dict) else None
        if not isinstance(specs, list) or not specs:
            return 400, {"error": "body must be {'specs': [spec, ...]} "
                                  "with at least one spec"}
        if len(specs) > MAX_BATCH_JOBS:
            return 400, {"error": f"batch too large "
                                  f"(max {MAX_BATCH_JOBS} specs)"}
        for i, spec in enumerate(specs):
            if not isinstance(spec, dict):
                return 400, {"error": f"specs[{i}] is not a JSON object"}
            if "id" in spec:
                return 400, {"error": f"specs[{i}] may not carry 'id' "
                                      "(the gateway assigns ids)"}
        tracer = self.telemetry.tracer
        ingress = None
        if tracer.enabled:
            # One ingress root for the whole generation: every job in
            # the batch parents on it, mirroring the one-flush journal.
            ingress = tracer.begin("job ingress", component=self.name,
                                   start=now, mtype="POST /jobs/batch")
        jobs = self.work.submit_batch(
            specs, now,
            trace=None if ingress is None
            else (ingress.trace_id, ingress.span_id))
        if ingress is not None:
            ingress.args["jobs"] = len(jobs)
            tracer.finish(ingress, now)
        return 201, {"ids": [job.id for job in jobs], "count": len(jobs),
                     "state": "queued", "submitted_at": now}

    def _list_jobs(self) -> tuple[int, dict]:
        ids = list(self.work.jobs)
        return 200, {
            "counts": self.work.counts(),
            "jobs": ids[-MAX_LISTED_JOBS:],
            "truncated": len(ids) > MAX_LISTED_JOBS,
        }

    def _get_job(self, job_id: str) -> tuple[int, dict]:
        job = self.work.get(job_id)
        if job is None:
            return 404, {"error": f"no job {job_id!r}"}
        return 200, job.to_dict()

    def _cancel(self, job_id: str, now: float) -> tuple[int, dict]:
        job = self.work.get(job_id)
        if job is None:
            return 404, {"error": f"no job {job_id!r}"}
        if job.state == "done":
            return 409, {"error": f"job {job_id!r} already finished",
                         "id": job.id, "state": job.state}
        job = self.work.cancel(job_id, now)
        return 200, {"id": job.id, "state": job.state,
                     "finished_at": job.finished_at}

    def _events(self, query: str) -> tuple[int, Union[dict, str]]:
        params = _query_params(query)
        try:
            since = int(params.get("since", "-1"))
            limit = int(params.get("limit", "500"))
        except ValueError:
            return 400, {"error": "since/limit must be integers"}
        return 200, render_jsonl(self.events.since(since, limit=limit))

    def _sites(self, body: bytes) -> tuple[int, dict]:
        """Collector-computed per-site utilisation, pushed by the serve
        harness (the process that owns the collector). Lands as labelled
        gauges so /metrics exposes delivered-vs-available per site."""
        try:
            doc = json.loads(body) if body else None
        except (ValueError, UnicodeDecodeError):
            return 400, {"error": "body is not valid JSON"}
        sites = (doc or {}).get("sites") if isinstance(doc, dict) else None
        if not isinstance(sites, dict):
            return 400, {"error": "body must be {'sites': {...}}"}
        metrics = self.telemetry.metrics
        for site in sorted(sites):
            row = sites[site]
            if not isinstance(row, dict):
                continue
            for field, gauge in (("delivered_ops", "site.delivered_ops"),
                                 ("available_ops", "site.available_ops"),
                                 ("utilisation", "site.utilisation"),
                                 ("clients", "site.clients")):
                if field in row:
                    try:
                        metrics.gauge(gauge, site=site).set(
                            float(row[field]))
                    except (TypeError, ValueError):
                        pass
        return 200, {"ok": True, "sites": len(sites)}

    #: Pool-wide GossipStats fields accepted by ``POST /telemetry/gossip``
    #: and the gauge each lands as (DESIGN §15).
    GOSSIP_FIELDS = (
        ("digest_rounds", "gossip.digest_rounds"),
        ("delta_records", "gossip.delta_records"),
        ("bytes_sent", "gossip.bytes_sent"),
        ("bytes_saved", "gossip.bytes_saved"),
        ("members", "gossip.members"),
        ("registered", "gossip.registered"),
        ("tombstones_created", "gossip.tombstones_created"),
        ("evictions", "gossip.evictions"),
    )

    def _gossip(self, body: bytes) -> tuple[int, dict]:
        """Pool-wide gossip sync-plane rollup, pushed by whichever process
        owns the Gossip pool (e.g. :func:`repro.experiments.bigpool.
        gossip_rollup`). Lands as ``gossip.*`` gauges — digest rounds,
        delta records shipped, bytes saved vs full-sync — plus per-state
        suspicion transition counts, so /metrics exposes the anti-entropy
        plane's health."""
        try:
            doc = json.loads(body) if body else None
        except (ValueError, UnicodeDecodeError):
            return 400, {"error": "body is not valid JSON"}
        pool = (doc or {}).get("gossip") if isinstance(doc, dict) else None
        if not isinstance(pool, dict):
            return 400, {"error": "body must be {'gossip': {...}}"}
        metrics = self.telemetry.metrics
        for field, gauge in self.GOSSIP_FIELDS:
            if field in pool:
                try:
                    metrics.gauge(gauge).set(float(pool[field]))
                except (TypeError, ValueError):
                    pass
        transitions = pool.get("suspicion")
        if isinstance(transitions, dict):
            for state in sorted(transitions):
                try:
                    metrics.gauge("gossip.suspicion_transitions",
                                  to=str(state)).set(
                                      float(transitions[state]))
                except (TypeError, ValueError):
                    pass
        return 200, {"ok": True}

    def _queue(self) -> tuple[int, dict]:
        return 200, {"depth": len(self.work), **self.work.stats()}

    def _health(self, now: float) -> tuple[int, dict]:
        return 200, {
            "ok": True,
            "node": self.name,
            "uptime": now - self.started_at,
            "requests": self.requests,
            "rejected": self.rejected,
            "jobs": self.work.counts(),
        }
