"""The workload-management control plane (ROADMAP item 2).

An HTTP/JSON job gateway over the EveryWare world: external users
submit, query, and cancel jobs through plain HTTP; downward the gateway
is an unmodified :class:`~repro.core.services.scheduler.SchedulerServer`
whose :class:`WorkQueue` work source is fed by those submissions, so
computational clients pull externally-submitted jobs over the usual
SCH_* protocol. The same sans-IO router (:class:`GatewayCore`) serves
both planes: real sockets on the live reactor
(:class:`~repro.control.http.HttpServer`), lingua-franca messages under
simulated time (:class:`~repro.control.sim.GatewayComponent`).
"""

from .client import GatewayClient
from .gateway import GatewayCore, ROUTES, TEXT_ROUTES, render_payload
from .http import (
    HttpDecoder,
    HttpError,
    HttpRequest,
    HttpResponseDecoder,
    HttpServer,
    error_response,
    json_response,
    text_response,
)
from .loadgen import GatewayStorm, StormStats
from .sim import GatewayComponent, SimJobUser, SimJobWorker, run_sim_serve
from .serve import (
    ServeConfig,
    ServeReport,
    check_serve_invariants,
    ramsey_job_spec,
    run_serve,
)
from .workqueue import (
    FileJournal,
    Job,
    JOB_STATES,
    MemoryJournal,
    WorkQueue,
)

__all__ = [
    "FileJournal",
    "GatewayClient",
    "GatewayComponent",
    "GatewayCore",
    "GatewayStorm",
    "HttpDecoder",
    "HttpError",
    "HttpRequest",
    "HttpResponseDecoder",
    "HttpServer",
    "JOB_STATES",
    "Job",
    "MemoryJournal",
    "ROUTES",
    "ServeConfig",
    "ServeReport",
    "SimJobUser",
    "SimJobWorker",
    "StormStats",
    "TEXT_ROUTES",
    "WorkQueue",
    "check_serve_invariants",
    "error_response",
    "json_response",
    "ramsey_job_spec",
    "render_payload",
    "run_serve",
    "run_sim_serve",
    "text_response",
]
