"""``repro serve``: the control plane stood up as real OS processes.

:func:`run_serve` is to the gateway what :func:`repro.live.harness.run_live`
is to the SC98 world: allocate ports, write the manifest, spawn gossip /
gateway / persistent / logger / Ramsey-client nodes under the
:class:`~repro.live.supervisor.Supervisor`, then drive a
:class:`~repro.control.loadgen.GatewayStorm` of synthetic HTTP users
against the gateway while the world runs — optionally SIGKILLing the
gateway mid-storm to demonstrate the control plane's central invariant
on real sockets: **no accepted job is lost across a gateway
kill/restart** (requeued from the journal, not dropped). After the storm
quiesces, a verify sweep asks the (possibly restarted) gateway for every
job id it ever answered 201 for; ids it no longer knows are violations.

Submitted job specs are real Ramsey work units
(:func:`ramsey_job_spec`), so the live clients actually execute what the
storm submits — the full externally-submitted-work path, HTTP user to
computational client and back.
"""

from __future__ import annotations

import json
import os
import random
import tempfile
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..live.collector import Collector
from ..live.ports import PortAllocator
from ..live.supervisor import RestartPolicy, Supervisor
from ..live.topology import Topology, build_manifest, serve_topology
from ..core.telemetry import write_trace_json
from ..ramsey.tasks import HEURISTICS
from .client import GatewayClient
from .http import HttpError
from .loadgen import GatewayStorm

__all__ = ["ServeConfig", "ServeReport", "check_serve_invariants",
           "ramsey_job_spec", "run_serve"]


def ramsey_job_spec(rng: random.Random, k: int = 8, n: int = 4,
                    ops_budget: float = 250_000.0) -> dict:
    """One externally-submitted job spec the Ramsey clients can execute:
    a work unit minus the ``id`` (the gateway assigns ids)."""
    return {
        "k": int(k),
        "n": int(n),
        "heuristic": HEURISTICS[rng.randrange(len(HEURISTICS))],
        "seed": rng.randrange(1 << 20),
        "ops_budget": float(ops_budget),
    }


@dataclass
class ServeConfig:
    """Knobs for one ``repro serve`` run."""

    clients: int = 2
    gateways: int = 1
    gossips: int = 1
    persistents: int = 1
    loggers: int = 1
    #: Concurrent synthetic HTTP users in the storm.
    storm_clients: int = 50
    duration: float = 10.0
    #: SIGKILL the first gateway this many seconds in (None = no chaos).
    kill_at: Optional[float] = None
    #: Which node the chaos knob kills (None = the first gateway). Kill
    #: a client instead to watch a job's trace span two incarnations:
    #: accept on the first life, requeue, finish on the second.
    kill_node: Optional[str] = None
    #: Publish collector-derived per-site utilisation gauges to the
    #: gateway this often (0 = never).
    sites_period: float = 2.0
    #: Storm connections recycle after this many responses (0 = never).
    churn_every: int = 0
    submit_fraction: float = 0.5
    cancel_fraction: float = 0.1
    seed: int = 0
    k: int = 8
    n: int = 4
    host: str = "127.0.0.1"

    def topology(self) -> Topology:
        return serve_topology(
            clients=self.clients, gossips=self.gossips,
            gateways=self.gateways, persistents=self.persistents,
            loggers=self.loggers, seed=self.seed, k=self.k, n=self.n)


@dataclass
class ServeReport:
    """Everything one serve run produced, in one JSON-safe document."""

    duration: float
    topology: dict
    nodes: dict[str, dict]
    storm: dict
    #: Jobs the gateway answered 201 for, total.
    accepted: int
    #: Accepted ids the post-run sweep could not find — must be empty.
    jobs_lost: list[str]
    #: Final-state histogram over the accepted ids.
    job_states: dict[str, int]
    chaos: list[dict] = field(default_factory=list)
    metrics: dict = field(default_factory=dict)
    violations: list[str] = field(default_factory=list)
    artifacts: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "duration": self.duration,
            "topology": self.topology,
            "nodes": self.nodes,
            "storm": self.storm,
            "accepted": self.accepted,
            "jobs_lost": self.jobs_lost,
            "job_states": self.job_states,
            "chaos": self.chaos,
            "metrics": self.metrics,
            "violations": self.violations,
            "artifacts": self.artifacts,
            "ok": self.ok,
        }


def check_serve_invariants(report: ServeReport) -> list[str]:
    """The control plane's consistency checklist (wall-clock runs gate
    on invariants, the simulated twin on byte-diffs)."""
    violations: list[str] = []
    if report.jobs_lost:
        violations.append(
            f"{len(report.jobs_lost)} accepted job(s) lost: "
            f"{report.jobs_lost[:5]}")
    if report.accepted == 0 and report.storm.get("submitted", 0) == 0:
        violations.append("the storm never got a single job accepted")
    for name, node in sorted(report.nodes.items()):
        if not node.get("reports"):
            violations.append(f"{name}: never shipped a telemetry report")
    if report.chaos:
        restarted = [c["node"] for c in report.chaos
                     if report.nodes.get(c["node"], {}).get("restarts", 0) >= 1]
        if not restarted:
            killed = sorted({c["node"] for c in report.chaos})
            violations.append(
                f"{'/'.join(killed)} was killed but never restarted")
    return violations


def _site_rollup(collector: Collector, topology: Topology,
                 elapsed: float) -> dict:
    """Per-site delivered-vs-available (§2.2's utilisation meters),
    computed from the clients' shipped stats. Delivered is each client's
    latest-incarnation ops counter (a restart resets it — the meter dips
    honestly when a site loses a machine); available is what the site
    *could* have delivered: clients x topology speed x elapsed."""
    sites: dict[str, dict] = {}
    for spec in topology.by_role("client"):
        site = str(spec.options.get("site", "")) or "default"
        row = sites.setdefault(site, {"clients": 0, "delivered_ops": 0.0,
                                      "available_ops": 0.0})
        row["clients"] += 1
        row["available_ops"] += topology.speed * max(elapsed, 0.0)
        rec = collector.nodes.get(spec.name)
        stats = rec.stats if rec is not None else {}
        try:
            row["delivered_ops"] += float(stats.get("total_ops", 0.0))
        except (TypeError, ValueError):
            pass
    for row in sites.values():
        avail = row["available_ops"]
        row["utilisation"] = (row["delivered_ops"] / avail
                              if avail > 0 else 0.0)
    return sites


def _sweep_jobs(contact: str, accepted: list[str],
                pump: Optional[Callable[[], None]] = None,
                timeout: float = 15.0) -> tuple[list[str], dict[str, int]]:
    """Ask the gateway for every accepted id; returns (lost ids, state
    histogram). Waits up to ``timeout`` for the gateway to answer at all
    — it may be mid-restart when the storm ends, so ``pump`` (the
    supervisor poll) keeps running while we wait."""
    lost: list[str] = []
    states: dict[str, int] = {}
    with GatewayClient(contact, timeout=3.0) as client:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if pump is not None:
                pump()
            try:
                client.health()
                break
            except HttpError:
                time.sleep(0.2)
        for i, job_id in enumerate(accepted):
            if pump is not None and i % 200 == 0:
                pump()
            try:
                job = client.job(job_id)
            except HttpError:
                job = None
            if job is None:
                lost.append(job_id)
            else:
                state = str(job.get("state"))
                states[state] = states.get(state, 0) + 1
    return lost, states


def run_serve(
    config: ServeConfig,
    out: Optional[str] = None,
    restart: Optional[RestartPolicy] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> ServeReport:
    """Stand up the control-plane world, storm it, sweep it, report."""
    def say(text: str) -> None:
        if progress is not None:
            progress(text)

    topology = config.topology()
    tmp = None
    if out is not None:
        os.makedirs(out, exist_ok=True)
        run_dir = out
    else:
        tmp = tempfile.TemporaryDirectory(prefix="repro-serve-")
        run_dir = tmp.name
    manifest_path = os.path.join(run_dir, "manifest.json")

    host = config.host
    collector = Collector(host=host)
    allocator = PortAllocator(host)
    storm = None
    sites_client: Optional[GatewayClient] = None
    try:
        manifest = build_manifest(topology, collector.contact,
                                  host=host, allocator=allocator)
        manifest.write(manifest_path)
        # Nodes outlive the storm window by a sweep grace: the verify
        # sweep below must run against a *live* (possibly restarted)
        # gateway, not race the nodes' own deadline shutdown.
        sweep_grace = 30.0
        supervisor = Supervisor(
            manifest, manifest_path,
            deadline=config.duration + sweep_grace,
            collector=collector, restart=restart,
            log_dir=os.path.join(run_dir, "node-logs"))
        gateway_name = topology.by_role("gateway")[0].name
        http_contact = manifest.http_contact(gateway_name)
        say(f"world of {len(topology.nodes)} nodes; "
            f"gateway HTTP at {http_contact}")
        allocator.release()
        supervisor.spawn_all()

        http_host, _, http_port = http_contact.rpartition(":")
        storm = GatewayStorm(
            http_host, int(http_port),
            clients=config.storm_clients, seed=config.seed,
            submit_fraction=config.submit_fraction,
            cancel_fraction=config.cancel_fraction,
            churn_every=config.churn_every,
            spec_factory=lambda r: ramsey_job_spec(
                r, k=config.k, n=config.n))

        chaos: list[dict] = []
        killed = False
        kill_target = config.kill_node or gateway_name
        if kill_target not in supervisor.nodes:
            raise ValueError(f"kill_node {kill_target!r} not in topology")
        sites_client = GatewayClient(http_contact, timeout=1.0)
        health_at = 1.0
        sites_at = config.sites_period or float("inf")
        while supervisor.now() < config.duration:
            collector.step(0.005)
            supervisor.poll()
            storm.step(0.005)
            now = supervisor.now()
            if now >= health_at:
                supervisor.check_health()
                health_at = now + 1.0
            if now >= sites_at:
                # Push delivered-vs-available to the gateway so /metrics
                # exposes per-site utilisation; a dead/mid-restart
                # gateway just misses a beat.
                try:
                    sites_client.publish_sites(
                        _site_rollup(collector, topology, now))
                except HttpError:
                    pass
                sites_at = now + config.sites_period
            if (config.kill_at is not None and not killed
                    and now >= config.kill_at):
                pid = supervisor.kill(kill_target)
                killed = True
                if pid is not None:
                    chaos.append({"t": round(now, 3), "node": kill_target,
                                  "pid": pid})
                    say(f"chaos: killed {kill_target} (pid {pid}) "
                        f"at t={now:.1f}s")

        def pump() -> None:
            collector.step(0.01)
            supervisor.poll()

        storm.quiesce(grace=3.0)
        say(f"storm done: {storm.stats.submitted} submitted, "
            f"{storm.stats.queried} queried, "
            f"{storm.stats.cancelled} cancelled, "
            f"{len(storm.accepted)} accepted")

        # The sweep runs while the world is still up: every accepted id
        # must still be known to the (possibly restarted) gateway.
        lost, states = _sweep_jobs(http_contact, storm.accepted, pump=pump)
        for _ in range(20):
            pump()
        supervisor.drain(pump=pump)
        for _ in range(10):
            collector.step(0.01)

        nodes: dict[str, dict] = {}
        statuses = supervisor.statuses()
        for spec in topology.nodes:
            rec = collector.nodes.get(spec.name)
            nodes[spec.name] = {
                "role": spec.role,
                "contact": manifest.contact(spec.name),
                "hellos": rec.hellos if rec else 0,
                "reports": rec.reports if rec else 0,
                "stop_reason": rec.stop_reason if rec else None,
                "stats": dict(rec.stats) if rec else {},
                **statuses.get(spec.name, {}),
            }
        report = ServeReport(
            duration=config.duration,
            topology=topology.to_dict(),
            nodes=nodes,
            storm=storm.stats.to_dict(),
            accepted=len(storm.accepted),
            jobs_lost=lost,
            job_states=states,
            chaos=chaos,
            metrics=collector.merged_metrics(),
        )
        report.violations = check_serve_invariants(report)

        if out is not None:
            merged = collector.merged_tracer()
            trace_path = write_trace_json(
                merged, os.path.join(out, "trace.json"))
            # Raw span dicts alongside the Chrome export: what
            # ``repro trace --job`` walks (obs.jobtrace.load_spans).
            spans_path = os.path.join(out, "spans.json")
            with open(spans_path, "w", encoding="utf-8") as fh:
                json.dump({"spans": [s.to_dict() for s in merged.spans]},
                          fh, indent=1, sort_keys=True)
                fh.write("\n")
            metrics_path = os.path.join(out, "metrics.json")
            with open(metrics_path, "w", encoding="utf-8") as fh:
                json.dump(report.metrics, fh, indent=1, sort_keys=True)
                fh.write("\n")
            report.artifacts = {
                "manifest": manifest_path, "trace": trace_path,
                "spans": spans_path, "metrics": metrics_path,
            }
            report_path = os.path.join(out, "report.json")
            with open(report_path, "w", encoding="utf-8") as fh:
                json.dump(report.to_dict(), fh, indent=1, sort_keys=True)
                fh.write("\n")
            report.artifacts["report"] = report_path
        return report
    finally:
        if sites_client is not None:
            sites_client.close()
        if storm is not None:
            storm.close()
        allocator.release()
        collector.close()
        if tmp is not None:
            tmp.cleanup()
