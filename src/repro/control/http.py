"""Stdlib-only HTTP/1.1 on the lingua-franca reactor.

The control plane's wire format is HTTP/JSON — external users should
need nothing but ``curl`` — but the transport underneath is the exact
same single-threaded :class:`~repro.core.linguafranca.tcp.EventLoop` /
:class:`~repro.core.linguafranca.tcp.TcpServer` reactor every other
EveryWare service rides (DESIGN.md §12). No new dependencies, no
``http.server`` thread pools: :class:`HttpDecoder` is an incremental
request parser fed straight from the reactor's read buffer (so a
slowloris client dribbling one byte per select() turn costs buffered
bytes, never a stalled reactor), and :class:`HttpServer` subclasses the
TCP reactor, swapping the CRC packet decoder for the HTTP one via the
``decoder_factory`` seam and reusing the batched ``sendmsg`` flush path
for responses.

Scope is deliberately the gateway's needs, not the RFC's: request line +
headers + ``Content-Length`` bodies, keep-alive by default, bounded
header/body sizes. Anything outside that (chunked encoding, continuation
lines, absurd sizes) is answered with a correct 4xx and a closed
connection — the §2.3 robustness rule: a hostile byte stream must never
take the service down.
"""

from __future__ import annotations

import json
from typing import Callable, Optional

from ..core.linguafranca.tcp import TcpServer, _Connection

__all__ = [
    "HttpError",
    "HttpRequest",
    "HttpDecoder",
    "HttpResponseDecoder",
    "HttpServer",
    "json_response",
    "text_response",
    "error_response",
    "REASONS",
]

#: Request-line + headers may not exceed this many bytes (431-ish, we
#: answer 400: the gateway's legitimate clients send tiny headers).
MAX_HEADER_BYTES = 16 * 1024
#: Default request-body cap; oversized submissions are answered 413.
MAX_BODY_BYTES = 256 * 1024

REASONS = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

_KNOWN_METHODS = {"GET", "POST", "PUT", "DELETE", "HEAD", "OPTIONS", "PATCH"}


class HttpError(Exception):
    """Client-side protocol failure (GatewayClient/response parsing)."""


class HttpRequest:
    """One parsed inbound request (or a framing error standing in for
    one: ``error`` carries the status/reason to answer with)."""

    __slots__ = ("method", "path", "headers", "body", "error", "close")

    def __init__(self, method: str = "", path: str = "",
                 headers: Optional[dict] = None, body: bytes = b"",
                 error: Optional[tuple[int, str]] = None,
                 close: bool = False) -> None:
        self.method = method
        self.path = path
        #: Header names lower-cased; last occurrence wins.
        self.headers = headers if headers is not None else {}
        self.body = body
        self.error = error
        #: Client asked for ``Connection: close`` (or spoke HTTP/1.0).
        self.close = close

    def json(self):
        """The body as JSON, or None if it is not a valid JSON document."""
        if not self.body:
            return None
        try:
            return json.loads(self.body)
        except (ValueError, UnicodeDecodeError):
            return None


class HttpDecoder:
    """Incremental HTTP/1.1 *request* parser with bounded buffers.

    Mirrors the :class:`~repro.core.linguafranca.packets.PacketDecoder`
    contract the reactor expects: ``feed(bytes)`` appends to the stream
    buffer, ``next_request()`` returns one complete request (or ``None``
    while more bytes are needed). A framing violation yields a request
    whose ``error`` is set and poisons the decoder — the server answers
    it and closes; no resynchronisation is attempted on a byte stream
    with no record boundaries to resynchronise on.
    """

    __slots__ = ("_buf", "_dead", "max_header", "max_body")

    def __init__(self, max_header: int = MAX_HEADER_BYTES,
                 max_body: int = MAX_BODY_BYTES) -> None:
        self._buf = bytearray()
        self._dead = False
        self.max_header = max_header
        self.max_body = max_body

    def feed(self, data: bytes) -> None:
        if not self._dead:
            self._buf += data

    def _fail(self, status: int, reason: str) -> HttpRequest:
        self._dead = True
        self._buf.clear()
        return HttpRequest(error=(status, reason), close=True)

    def next_request(self) -> Optional[HttpRequest]:
        if self._dead:
            return None
        head_end = self._buf.find(b"\r\n\r\n")
        if head_end < 0:
            if len(self._buf) > self.max_header:
                return self._fail(400, "header block too large")
            return None
        if head_end > self.max_header:
            return self._fail(400, "header block too large")
        head = bytes(self._buf[:head_end])
        try:
            text = head.decode("latin-1")
        except UnicodeDecodeError:  # pragma: no cover - latin-1 total
            return self._fail(400, "undecodable header block")
        lines = text.split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3 or not parts[1].startswith("/"):
            return self._fail(400, "malformed request line")
        method, path, version = parts
        if method not in _KNOWN_METHODS:
            return self._fail(400, f"unknown method {method!r}")
        if version not in ("HTTP/1.1", "HTTP/1.0"):
            return self._fail(400, f"unsupported version {version!r}")
        headers: dict[str, str] = {}
        for line in lines[1:]:
            name, sep, value = line.partition(":")
            if not sep or not name or name != name.strip():
                return self._fail(400, f"malformed header line {line!r}")
            headers[name.lower()] = value.strip()
        if "transfer-encoding" in headers:
            return self._fail(400, "transfer-encoding not supported")
        length = 0
        if "content-length" in headers:
            try:
                length = int(headers["content-length"])
            except ValueError:
                return self._fail(400, "malformed content-length")
            if length < 0:
                return self._fail(400, "malformed content-length")
        if length > self.max_body:
            # Answer before the body even finishes arriving: a client
            # announcing a huge upload is refused at the header.
            return self._fail(413, f"body of {length} bytes exceeds "
                                   f"limit of {self.max_body}")
        body_start = head_end + 4
        if len(self._buf) - body_start < length:
            return None  # body still in flight
        body = bytes(self._buf[body_start:body_start + length])
        del self._buf[:body_start + length]
        connection = headers.get("connection", "").lower()
        close = (connection == "close"
                 or (version == "HTTP/1.0" and connection != "keep-alive"))
        return HttpRequest(method=method, path=path, headers=headers,
                           body=body, close=close)


class HttpResponseDecoder:
    """Incremental HTTP/1.1 *response* parser (client side: the storm
    load generator and the blocking gateway client). Same contract as
    :class:`HttpDecoder`; returns ``(status, headers, body)`` tuples."""

    __slots__ = ("_buf", "_dead", "max_body")

    def __init__(self, max_body: int = 8 * 1024 * 1024) -> None:
        self._buf = bytearray()
        self._dead = False
        self.max_body = max_body

    def feed(self, data: bytes) -> None:
        if not self._dead:
            self._buf += data

    def next_response(self) -> Optional[tuple[int, dict, bytes]]:
        if self._dead:
            raise HttpError("response stream is corrupt")
        head_end = self._buf.find(b"\r\n\r\n")
        if head_end < 0:
            if len(self._buf) > MAX_HEADER_BYTES:
                self._dead = True
                raise HttpError("response header block too large")
            return None
        lines = bytes(self._buf[:head_end]).decode("latin-1").split("\r\n")
        parts = lines[0].split(" ", 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/"):
            self._dead = True
            raise HttpError(f"malformed status line {lines[0]!r}")
        try:
            status = int(parts[1])
        except ValueError:
            self._dead = True
            raise HttpError(f"malformed status {parts[1]!r}")
        headers: dict[str, str] = {}
        for line in lines[1:]:
            name, _, value = line.partition(":")
            headers[name.lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            self._dead = True
            raise HttpError("malformed content-length")
        if length > self.max_body:
            self._dead = True
            raise HttpError("response body too large")
        body_start = head_end + 4
        if len(self._buf) - body_start < length:
            return None
        body = bytes(self._buf[body_start:body_start + length])
        del self._buf[:body_start + length]
        return status, headers, body


def _render(status: int, body: bytes, content_type: str,
            close: bool) -> bytes:
    reason = REASONS.get(status, "Unknown")
    head = (f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'close' if close else 'keep-alive'}\r\n"
            f"\r\n")
    return head.encode("latin-1") + body


def json_response(status: int, obj, close: bool = False) -> bytes:
    """A complete JSON response frame (sorted keys: byte-stable)."""
    body = (json.dumps(obj, sort_keys=True, separators=(",", ":"))
            .encode("utf-8") + b"\n")
    return _render(status, body, "application/json", close)


def text_response(status: int, text: str,
                  content_type: str = "text/plain; charset=utf-8",
                  close: bool = False) -> bytes:
    """A complete plain-text response frame (Prometheus exposition, the
    JSONL /events feed)."""
    return _render(status, text.encode("utf-8"), content_type, close)


def error_response(status: int, reason: str) -> bytes:
    """A complete JSON error frame; always closes the connection."""
    return json_response(status, {"error": reason}, close=True)


#: The application callback: a complete request in, a complete response
#: frame out (build it with :func:`json_response` /
#: :func:`text_response`) — or ``None`` to *park* the request for
#: long-polling: the server holds the connection open and re-invokes the
#: app from :meth:`HttpServer.poll_parked` until it returns a frame.
HttpApp = Callable[[HttpRequest], Optional[bytes]]


class HttpServer(TcpServer):
    """The HTTP face of the reactor.

    Identical accept/read/flush/drop machinery as every lingua-franca
    server — one ``select()`` per turn, per-connection write queues,
    batched vectored flushes — with the CRC packet decoder swapped for
    :class:`HttpDecoder` and record servicing swapped for request
    dispatch. Protocol errors are answered (400/413) and the connection
    is closed *after* the response flushes (``close_when_flushed``);
    keep-alive connections serve any number of pipelined requests.
    """

    def __init__(
        self,
        host: str,
        port: int,
        app: HttpApp,
        loop=None,
        backlog: int = 1024,
        max_body: int = MAX_BODY_BYTES,
    ) -> None:
        self.app = app
        self.protocol_errors = 0
        #: Long-poll requests awaiting an answer: the app returned None,
        #: so the connection idles here until :meth:`poll_parked` gets a
        #: frame out of the app (or the peer goes away).
        self._parked: list[tuple[_Connection, HttpRequest]] = []
        super().__init__(
            host, port, handler=self._no_messages, loop=loop,
            backlog=backlog,
            decoder_factory=lambda: HttpDecoder(max_body=max_body))

    @staticmethod
    def _no_messages(message):  # pragma: no cover - decoder never parses one
        return None

    @property
    def parked(self) -> int:
        return len(self._parked)

    def _service(self, conn: _Connection) -> None:
        decoder = conn.decoder
        while not conn.close_when_flushed:
            request = decoder.next_request()
            if request is None:
                break
            self.messages_handled += 1
            self._step_handled += 1
            if request.error is not None:
                status, reason = request.error
                self.protocol_errors += 1
                conn.out.append(error_response(status, reason))
                conn.close_when_flushed = True
                break
            try:
                response = self.app(request)
            except Exception:  # noqa: BLE001 — robustness boundary
                response = error_response(500, "internal error")
            if response is None:
                # Parked: stop draining this connection — HTTP/1.1
                # responses must go back in request order, so pipelined
                # follow-ups wait until this one is answered.
                self._parked.append((conn, request))
                return
            conn.out.append(response)
            if request.close:
                conn.close_when_flushed = True
        self._flush(conn)

    def poll_parked(self) -> int:
        """Re-offer every parked request to the app; returns the number
        answered this call. The reactor owner (the gateway node's tick
        hook, a bench loop) calls this once per turn — the app decides
        per request whether to answer (new data / deadline hit) or keep
        waiting by returning None again."""
        if not self._parked:
            return 0
        waiting, self._parked = self._parked, []
        answered = 0
        for conn, request in waiting:
            if conn not in self._conns:
                continue  # peer hung up while parked
            try:
                response = self.app(request)
            except Exception:  # noqa: BLE001 — robustness boundary
                response = error_response(500, "internal error")
            if response is None:
                self._parked.append((conn, request))
                continue
            answered += 1
            conn.out.append(response)
            if request.close:
                conn.close_when_flushed = True
            if self._flush(conn) and conn in self._conns:
                # Drain any requests the client pipelined behind the
                # long-poll while it was parked.
                self._service(conn)
        return answered
