"""Globus adapter (§5.2, Fig. 5): the "light switch" over GRAM/GASS/MDS.

The Ramsey application used three Globus services:

* **MDS** — a directory queried for candidate gatekeepers plus a cheap
  *authenticate-only* probe per site (modeled: per-launch directory
  latency, counted);
* **GRAM** — the gatekeeper as a remote process-invocation mechanism
  (modeled: per-launch authentication + submission latency);
* **GASS** — the binary repository from which the gatekeeper "grappling
  hook" pulls the right executable for the platform (modeled: a fetch
  delay on a host's *first* launch; later launches hit the local copy).
"""

from __future__ import annotations

from typing import Generator

from ..simgrid.host import Host, HostDown
from ..simgrid.load import MeanRevertingLoad
from .base import InfraAdapter
from .speeds import speed_for

__all__ = ["GlobusSites"]


class GlobusSites(InfraAdapter):
    name = "globus"

    def __init__(
        self,
        *args,
        sites: dict[str, int] | None = None,
        mds_latency: float = 2.0,
        gram_latency: float = 8.0,
        gass_fetch: float = 20.0,
        mtbf: float = 8 * 3600.0,
        mttr: float = 1200.0,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        #: gatekeeper site name -> node count.
        self.sites = sites if sites is not None else {"isi": 6, "anl": 6}
        self.mds_latency = mds_latency
        self.gram_latency = gram_latency
        self.gass_fetch = gass_fetch
        self.mtbf = mtbf
        self.mttr = mttr
        self.mds_queries = 0
        self.gram_launches = 0
        self.gram_kills = 0
        self.gass_fetches = 0
        self._fetched: set[str] = set()
        #: Fig. 5's "light switch": the single point of control that
        #: activates/deactivates every Globus-enabled component.
        self.switched_on = True

    def deploy(self) -> None:
        rng = self._rng
        for sitename, count in self.sites.items():
            for i in range(count):
                host = self._add_host(
                    f"globus-{sitename}-{i}",
                    speed=speed_for("globus_node", jitter=0.2, rng=rng),
                    load_model=MeanRevertingLoad(mean=0.75, sigma=0.005),
                    site=f"{self.site}-{sitename}",
                )
                self._start_failure_process(host)
                if self.switched_on:
                    self.env.process(self._gram_launch(host))

    # -- the light switch (Fig. 5) ------------------------------------------
    def switch_off(self) -> int:
        """Deactivate: GRAM-kill every running Globus client. Returns how
        many were terminated."""
        self.switched_on = False
        killed = 0
        for name, driver in list(self.drivers.items()):
            if driver.running:
                # GRAM job cancellation looks like an abrupt host-side kill
                # to the guest, same as every other reclaim path.
                assert driver.process is not None
                driver.process.interrupt(HostDown(driver.host, "gram-kill"))
                self.gram_kills += 1
                killed += 1
        return killed

    def switch_on(self) -> None:
        """(Re)activate: relaunch through MDS + GRAM + GASS on every up
        host without a client."""
        self.switched_on = True
        for host in self.hosts:
            if host.up and host.name not in self.drivers:
                self.env.process(self._gram_launch(host))

    def _gram_launch(self, host: Host) -> Generator:
        """MDS discovery + authenticate-only + GRAM submit + GASS fetch."""
        self.mds_queries += 1
        yield self.env.timeout(self.mds_latency)
        self.gram_launches += 1
        yield self.env.timeout(self.gram_latency)
        if host.name not in self._fetched:
            # First launch on this platform: pull the binary through GASS.
            self.gass_fetches += 1
            yield self.env.timeout(self.gass_fetch)
            self._fetched.add(host.name)
        if self.switched_on and host.up and host.name not in self.drivers:
            self.launch_client(host)

    def _start_failure_process(self, host: Host) -> None:
        rng = self.streams.get(f"fail:{host.name}")

        def cycle() -> Generator:
            while True:
                yield self.env.timeout(float(rng.exponential(self.mtbf)))
                host.go_down("failure")
                yield self.env.timeout(float(rng.exponential(self.mttr)))
                host.go_up()
                self.env.process(self._gram_launch(host))

        self.env.process(cycle())

    def on_client_exit(self, host: Host) -> None:
        if host.up and self.switched_on:
            # Still switched on: GRAM relights the client automatically.
            self.env.process(self._gram_launch(host))
