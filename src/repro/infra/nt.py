"""NT Supercluster adapter (§5.5): the CygWin-ported EveryWare on NT.

Models the two quirks the paper hit at SC98:

* **DNS configuration** — cluster nodes initially could not resolve the
  scheduler hosts' names ("the ability to resolve host names was not a
  part of the default configuration"); until NCSA support fixed it at
  ``dns_fix_time``, no client can start.
* **LSF sleep-kill** — workers slept a randomized interval at startup to
  avoid stampeding the scheduler, but "LSF seemed to interpret the lack
  of cpu usage by assuming the process is dead, reclaiming the
  processor". A worker whose startup sleep exceeds ``lsf_kill_threshold``
  is killed and must start over; the fix (and ablation A5 knob) is
  ``startup_sleep_max``.
"""

from __future__ import annotations

from typing import Generator

from ..simgrid.host import Host
from ..simgrid.load import MeanRevertingLoad
from .base import InfraAdapter
from .speeds import speed_for

__all__ = ["NTSupercluster"]


class NTSupercluster(InfraAdapter):
    name = "nt"

    def __init__(
        self,
        *args,
        clusters: dict[str, int] | None = None,
        startup_sleep_max: float = 60.0,
        lsf_kill_threshold: float = 45.0,
        dns_fix_time: float = 0.0,
        mtbf: float = 12 * 3600.0,
        mttr: float = 900.0,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        #: cluster name -> node count (defaults: NCSA 64 + UCSD 32 nodes).
        self.clusters = clusters if clusters is not None else {"ncsa": 64, "ucsd": 32}
        self.startup_sleep_max = startup_sleep_max
        self.lsf_kill_threshold = lsf_kill_threshold
        self.dns_fix_time = dns_fix_time
        self.mtbf = mtbf
        self.mttr = mttr
        self.lsf_kills = 0

    def deploy(self) -> None:
        rng = self._rng
        for cluster, count in self.clusters.items():
            for i in range(count):
                host = self._add_host(
                    f"nt-{cluster}-{i}",
                    speed=speed_for("nt_node", jitter=0.05, rng=rng),
                    load_model=MeanRevertingLoad(mean=0.85, sigma=0.003),
                    site=f"{self.site}-{cluster}",
                )
                self._start_failure_process(host)
                self.env.process(self._startup(host))

    def _startup(self, host: Host) -> Generator:
        """Wait for DNS, then survive the LSF sleep gauntlet."""
        if self.env.now < self.dns_fix_time:
            yield self.env.timeout(self.dns_fix_time - self.env.now)
        rng = self.streams.get(f"lsf:{host.name}")
        while host.up and host.name not in self.drivers:
            sleep = float(rng.uniform(0, self.startup_sleep_max))
            if sleep > self.lsf_kill_threshold:
                # LSF reclaims the "dead" sleeper at the threshold; the
                # worker must be resubmitted and sleeps again.
                self.lsf_kills += 1
                yield self.env.timeout(self.lsf_kill_threshold)
                continue
            yield self.env.timeout(sleep)
            if host.up:
                self.launch_client(host)
            return

    def _start_failure_process(self, host: Host) -> None:
        rng = self.streams.get(f"fail:{host.name}")

        def cycle() -> Generator:
            while True:
                yield self.env.timeout(float(rng.exponential(self.mtbf)))
                host.go_down("failure")
                yield self.env.timeout(float(rng.exponential(self.mttr)))
                host.go_up()
                self.env.process(self._startup(host))

        self.env.process(cycle())

    def on_client_exit(self, host: Host) -> None:
        if host.up:
            self.env.process(self._startup(host))
