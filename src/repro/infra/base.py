"""Common machinery for infrastructure adapters.

An adapter owns a pool of simulated hosts and the policy by which Ramsey
clients are (re)started on them — each infrastructure's §5 semantics live
in its adapter subclass: Condor reclaims workstations and kills vanilla
jobs; LSF kills sleepers on the NT Superclusters; Legion restarts
stateless objects elsewhere; Java browsers come and go; and so on.

Adapters expose uniform accounting (`active_host_count`,
`delivered-clients` bookkeeping) that the experiment layer samples for
the host-count figures (Fig. 3b/4b).
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from ..core.simdriver import SimDriver
from ..ramsey.client import RamseyClient
from ..simgrid.engine import Environment, Process
from ..simgrid.host import Host, HostSpec
from ..simgrid.load import LoadModel
from ..simgrid.network import Network
from ..simgrid.rand import PrefixedStreams, RngStreams

__all__ = ["InfraAdapter", "ClientFactory"]

#: Builds a configured RamseyClient for (host, adapter name, client index).
ClientFactory = Callable[[Host, str, int], RamseyClient]


class InfraAdapter:
    """Base class: host pool + client lifecycle policy."""

    #: Infrastructure tag recorded on hosts and in perf records.
    name: str = "base"

    def __init__(
        self,
        env: Environment,
        network: Network,
        streams: RngStreams | PrefixedStreams,
        client_factory: ClientFactory,
        site: str = "remote",
        ambient: Optional[LoadModel] = None,
    ) -> None:
        self.env = env
        self.network = network
        self.streams = streams.child(self.name) if hasattr(streams, "child") else streams
        self.client_factory = client_factory
        self.site = site
        #: Scenario-wide availability disturbance (e.g. the SC98 judging
        #: spike) multiplied into every host's own load model. Must be a
        #: stateless model (EventSchedule) since it is shared across hosts.
        self.ambient = ambient
        self.hosts: list[Host] = []
        self.drivers: dict[str, SimDriver] = {}  # host name -> live client driver
        self.clients_started = 0
        self.clients_lost = 0
        self._rng = self.streams.get("adapter")

    # -- deployment ------------------------------------------------------------
    def deploy(self) -> None:
        """Create hosts and start the infrastructure's processes. Subclasses
        must implement."""
        raise NotImplementedError

    def _add_host(
        self,
        name: str,
        speed: float,
        load_model: LoadModel,
        site: Optional[str] = None,
    ) -> Host:
        if self.ambient is not None:
            from ..simgrid.load import ComposedLoad

            load_model = ComposedLoad(load_model, self.ambient)
        spec = HostSpec(
            name=name,
            site=site or self.site,
            infra=self.name,
            speed=speed,
            load_model=load_model,
            load_period=60.0,
        )
        host = Host(self.env, spec, self.streams)
        self.network.add_host(host)
        host.start()
        self.hosts.append(host)
        return host

    # -- client lifecycle ---------------------------------------------------------
    def launch_client(self, host: Host) -> Optional[SimDriver]:
        """Start a client on ``host`` and watch it for death."""
        if not host.up or host.name in self.drivers:
            return None
        self.clients_started += 1
        client = self.client_factory(host, self.name, self.clients_started)
        driver = SimDriver(self.env, self.network, host, "cli", client, self.streams)
        self.drivers[host.name] = driver
        process = driver.start()

        def watch(_event) -> None:
            if self.drivers.get(host.name) is driver:
                del self.drivers[host.name]
            self.clients_lost += 1
            self.on_client_exit(host)

        assert process.callbacks is not None
        process.callbacks.append(watch)
        return driver

    def on_client_exit(self, host: Host) -> None:
        """Policy hook: called when a client dies (host death or stop)."""

    def respawn_later(self, host: Host, delay: float) -> None:
        """Schedule a relaunch attempt after ``delay`` seconds."""

        def waiter() -> Generator:
            yield self.env.timeout(delay)
            if host.up and host.name not in self.drivers:
                self.launch_client(host)

        self.env.process(waiter())

    # -- fault injection ---------------------------------------------------------
    def go_dark(self, reason: str = "fault:outage") -> int:
        """Take the whole infrastructure offline at once (§5's Legion
        anecdote: an entire testbed vanishing mid-run). Every up host
        goes down, killing its client. Returns the number of hosts
        downed; :meth:`relight` undoes it."""
        downed = 0
        for host in self.hosts:
            if host.up:
                host.go_down(reason)
                downed += 1
        return downed

    def relight(self) -> int:
        """Bring a dark infrastructure back: restart every down host and
        relaunch a client on each. Returns the number of hosts revived."""
        revived = 0
        for host in self.hosts:
            if not host.up:
                host.go_up()
                revived += 1
            if host.name not in self.drivers:
                self.launch_client(host)
        return revived

    # -- accounting ------------------------------------------------------------
    def active_host_count(self) -> int:
        """Hosts currently delivering work (running a client)."""
        return sum(
            1 for name, drv in self.drivers.items() if drv.host.up and drv.running
        )

    def up_host_count(self) -> int:
        return sum(1 for h in self.hosts if h.up)

    def potential_speed(self) -> float:
        """Sum of effective speeds of hosts with running clients."""
        return sum(
            drv.host.effective_speed() for drv in self.drivers.values() if drv.running
        )
