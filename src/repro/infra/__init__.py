"""Simulated Grid infrastructure adapters (the paper's §5 experiences)."""

from .base import ClientFactory, InfraAdapter
from .condor import CondorPool
from .globus import GlobusSites
from .java import JavaApplets
from .legion import LegionNet, LegionTranslator
from .netsolve import NetSolveFarm
from .nt import NTSupercluster
from .speeds import JAVA_INTERP_IOPS, JAVA_JIT_IOPS, SPEED_CLASSES, speed_for
from .unixpool import UnixPool

__all__ = [
    "ClientFactory",
    "InfraAdapter",
    "CondorPool",
    "GlobusSites",
    "JavaApplets",
    "LegionNet",
    "LegionTranslator",
    "NetSolveFarm",
    "NTSupercluster",
    "UnixPool",
    "JAVA_INTERP_IOPS",
    "JAVA_JIT_IOPS",
    "SPEED_CLASSES",
    "speed_for",
]
