"""Condor adapter (§5.4): high-throughput cycles from owned workstations.

Condor watches keyboard/process activity; an idle workstation can run a
guest job, and when the owner returns the guest is reclaimed. The paper
used the "vanilla" universe, where reclaimed jobs are **terminated
without warning** — clients therefore checkpoint everything of value
through the Gossip/persistent services.

Each workstation alternates exponentially-distributed owner-busy and idle
periods; reclamation kills the client (host goes down for guests), and a
fresh client starts shortly after the machine goes idle again.

The paper's §5.4 lesson — schedulers placed *inside* the pool churn so
fast that clients waste time hunting for a live one — is an experiment
configuration (see ablation A2), not adapter logic: the adapter simply
exposes its hosts for service placement.
"""

from __future__ import annotations

from typing import Generator

from ..simgrid.host import Host
from ..simgrid.load import ConstantLoad
from .base import InfraAdapter
from .speeds import speed_for

__all__ = ["CondorPool"]


class CondorPool(InfraAdapter):
    name = "condor"

    def __init__(
        self,
        *args,
        n_hosts: int = 100,
        idle_mean: float = 45 * 60.0,
        busy_mean: float = 25 * 60.0,
        start_delay: float = 30.0,
        universe: str = "vanilla",
        n_types: int = 3,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        if universe not in ("vanilla", "standard"):
            raise ValueError(f"unknown Condor universe {universe!r}")
        self.n_hosts = n_hosts
        self.idle_mean = idle_mean
        self.busy_mean = busy_mean
        self.start_delay = start_delay
        #: §5.4: in the *standard* universe Condor checkpoints a reclaimed
        #: guest and migrates it to an idle workstation **of the same
        #: type**; in the *vanilla* universe (what SC98 used, because the
        #: pool was heterogeneous) the guest is killed outright.
        self.universe = universe
        self.n_types = n_types
        self.host_type: dict[str, int] = {}
        self.reclamations = 0
        self.checkpoint_migrations = 0
        self.checkpoints_lost = 0

    def deploy(self) -> None:
        rng = self._rng
        for i in range(self.n_hosts):
            host = self._add_host(
                f"condor-{i}",
                speed=speed_for("condor_workstation", jitter=0.4, rng=rng),
                # While idle, the guest gets the whole (older) machine.
                load_model=ConstantLoad(0.95),
            )
            self.host_type[host.name] = i % self.n_types
            self.env.process(self._owner_cycle(host))

    # -- standard-universe checkpointing -------------------------------------
    def _capture_checkpoint(self, host) -> dict | None:
        """Snapshot the guest's work before the owner kills it."""
        driver = self.drivers.get(host.name)
        if driver is None or not driver.running:
            return None
        component = driver.component
        unit = getattr(component, "unit", None)
        if not isinstance(unit, dict):
            return None
        checkpoint = dict(unit)
        engine = getattr(component, "engine", None)
        if engine is not None:
            try:
                checkpoint["resume"] = engine.progress()
            except Exception:  # noqa: BLE001 — checkpointing is best-effort
                pass
        return checkpoint

    def _migrate_checkpoint(self, checkpoint: dict, host_type: int) -> None:
        """Restore the image on an idle workstation of the same type."""

        def attempt():
            yield self.env.timeout(self.start_delay)
            for _ in range(120):
                candidates = [
                    h for h in self.hosts
                    if h.up and h.name not in self.drivers
                    and self.host_type[h.name] == host_type
                ]
                if candidates:
                    idx = int(self._rng.integers(len(candidates)))
                    driver = self.launch_client(candidates[idx])
                    if driver is not None:
                        # Condor restores the checkpointed image: the new
                        # process resumes the unit where it left off.
                        driver.component._take_unit(checkpoint, self.env.now)
                        self.checkpoint_migrations += 1
                        return
                yield self.env.timeout(60.0)
            self.checkpoints_lost += 1

        self.env.process(attempt())

    def _owner_cycle(self, host: Host) -> Generator:
        rng = self.streams.get(f"owner:{host.name}")
        # Stagger: hosts start at random points of their cycle.
        yield self.env.timeout(float(rng.uniform(0, self.idle_mean)))
        while True:
            # Idle: claim it for a guest job.
            if host.up:
                self.respawn_later(host, self.start_delay)
            yield self.env.timeout(float(rng.exponential(self.idle_mean)))
            # Owner returns. Standard universe: checkpoint and migrate to a
            # same-type machine; vanilla: the guest dies with its state.
            self.reclamations += 1
            checkpoint = None
            if self.universe == "standard":
                checkpoint = self._capture_checkpoint(host)
            host.go_down("reclaimed")
            if checkpoint is not None:
                self._migrate_checkpoint(checkpoint, self.host_type[host.name])
            yield self.env.timeout(float(rng.exponential(self.busy_mean)))
            host.go_up()

    def on_client_exit(self, host: Host) -> None:
        # Reclaimed: nothing to do — the owner cycle restarts the client
        # when the workstation goes idle again.
        pass
