"""Plain Unix resources (§5.1): PACI workstations, MPP nodes, the Tera MTA.

The reference EveryWare implementation targeted Unix first; the pool here
mixes interactive workstations (diurnal contention), parallel-machine
nodes reached through batch queues (higher, steadier availability but
occasional whole-machine drains), and one very fast unique machine
standing in for the Tera MTA. Hosts fail occasionally and come back;
clients are relaunched when their host returns.
"""

from __future__ import annotations

from typing import Generator

from ..simgrid.host import Host
from ..simgrid.load import ComposedLoad, ConstantLoad, DiurnalLoad, MeanRevertingLoad
from .base import InfraAdapter
from .speeds import speed_for

__all__ = ["UnixPool"]


class UnixPool(InfraAdapter):
    name = "unix"

    def __init__(
        self,
        *args,
        n_workstations: int = 24,
        n_mpp_nodes: int = 24,
        with_tera_mta: bool = True,
        mtbf: float = 6 * 3600.0,
        mttr: float = 600.0,
        restart_delay: float = 60.0,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.n_workstations = n_workstations
        self.n_mpp_nodes = n_mpp_nodes
        self.with_tera_mta = with_tera_mta
        self.mtbf = mtbf
        self.mttr = mttr
        self.restart_delay = restart_delay

    def deploy(self) -> None:
        rng = self._rng
        for i in range(self.n_workstations):
            host = self._add_host(
                f"unix-ws{i}",
                speed=speed_for("unix_workstation", jitter=0.3, rng=rng),
                load_model=DiurnalLoad(day_trough=0.35, night_peak=0.9),
            )
            self._start_failure_process(host)
            self.launch_client(host)
        for i in range(self.n_mpp_nodes):
            host = self._add_host(
                f"unix-mpp{i}",
                speed=speed_for("unix_mpp_node", jitter=0.15, rng=rng),
                load_model=MeanRevertingLoad(mean=0.8, sigma=0.004),
                site=f"{self.site}-mpp",
            )
            self._start_failure_process(host)
            self.launch_client(host)
        if self.with_tera_mta:
            host = self._add_host(
                "unix-tera-mta",
                speed=speed_for("tera_mta"),
                load_model=MeanRevertingLoad(mean=0.6, sigma=0.006),
                site=f"{self.site}-tera",
            )
            self._start_failure_process(host)
            self.launch_client(host)

    def _start_failure_process(self, host: Host) -> None:
        rng = self.streams.get(f"fail:{host.name}")

        def cycle() -> Generator:
            while True:
                yield self.env.timeout(float(rng.exponential(self.mtbf)))
                host.go_down("failure")
                yield self.env.timeout(float(rng.exponential(self.mttr)))
                host.go_up()
                self.respawn_later(host, self.restart_delay)

        self.env.process(cycle())

    def on_client_exit(self, host: Host) -> None:
        # Transient failure: try again shortly; the failure process also
        # relaunches after recoveries.
        if host.up:
            self.respawn_later(host, self.restart_delay)
