"""Host-class speed calibration.

All speeds are in the paper's metric — *useful integer operations per
second delivered to the application* — calibrated so the SC98 scenario's
totals land in the regime the paper reports (sustained whole-application
peak ≈ 2.39e9 iops across the seven infrastructures, Fig. 2/3a).

The two Java numbers are the paper's own measurements (§5.6): an
interpreted applet on a 300 MHz Pentium II delivered 111,616 iops; the
JIT-compiled version 12,109,720 iops (a ~108x gap).

These constants shape the *ratios* between host classes; absolute
wall-clock throughput of modern hardware is irrelevant to the
reproduction (see DESIGN.md §6).
"""

from __future__ import annotations

__all__ = [
    "JAVA_INTERP_IOPS",
    "JAVA_JIT_IOPS",
    "SPEED_CLASSES",
    "speed_for",
]

#: §5.6 measured applet rates (300 MHz Pentium II).
JAVA_INTERP_IOPS = 111_616.0
JAVA_JIT_IOPS = 12_109_720.0

#: iops per host by class.
SPEED_CLASSES: dict[str, float] = {
    # Plain Unix workstations at PACI sites.
    "unix_workstation": 7.0e6,
    # Parallel supercomputer nodes reached through Unix batch queues.
    "unix_mpp_node": 2.6e7,
    # Condor-harvested desktop workstations (older, heterogeneous).
    "condor_workstation": 3.5e6,
    # NT Supercluster nodes (NCSA / UCSD; 300 MHz PII-class).
    "nt_node": 9.2e6,
    # Hosts reached via Globus GRAM (MPPs and clusters).
    "globus_node": 1.4e7,
    # Legion-hosted objects.
    "legion_node": 9.2e6,
    # NetSolve computational servers.
    "netsolve_server": 4.6e6,
    # Java browsers, from the paper's own numbers.
    "java_interp": JAVA_INTERP_IOPS,
    "java_jit": JAVA_JIT_IOPS,
    # The unique machine the paper highlights (§1): one very fast host
    # inside the Unix pool standing in for the Tera MTA.
    "tera_mta": 1.7e8,
}


def speed_for(klass: str, jitter: float = 0.0, rng=None) -> float:
    """Speed for a host class, optionally jittered ±``jitter`` fraction
    (hardware heterogeneity within a pool)."""
    base = SPEED_CLASSES[klass]
    if jitter and rng is not None:
        base *= 1.0 + jitter * (2.0 * float(rng.random()) - 1.0)
    return base
