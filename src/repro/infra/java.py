"""Java applet adapter (§5.6): volunteer cycles from web browsers.

Anyone on the Internet could point a browser at the applet and donate
cycles — "a campus coffee shop at UCSD" included. Browsers arrive as a
Poisson process (rate adjustable over time: the SC98 demo drew a crowd),
stay for a heavy-tailed session, then leave for good. A fraction run a
JIT-enabled JVM (12,109,720 iops in the paper's measurement); the rest
interpret (111,616 iops) — slow, "but the additional (otherwise unused)
cycles still aid computation".
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from ..simgrid.host import Host
from ..simgrid.load import ConstantLoad
from .base import InfraAdapter
from .speeds import speed_for

__all__ = ["JavaApplets"]


class JavaApplets(InfraAdapter):
    name = "java"

    def __init__(
        self,
        *args,
        arrival_rate: float = 1.0 / 600.0,  # browsers per second
        rate_fn: Optional[Callable[[float], float]] = None,
        session_mean: float = 30 * 60.0,
        jit_fraction: float = 0.5,
        max_arrivals: int = 500,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.arrival_rate = arrival_rate
        #: Optional time-varying arrival rate (browsers/second at time t).
        self.rate_fn = rate_fn
        self.session_mean = session_mean
        self.jit_fraction = jit_fraction
        self.max_arrivals = max_arrivals
        self.arrivals = 0
        self.jit_count = 0

    def deploy(self) -> None:
        self.env.process(self._arrival_process())

    def _rate(self, t: float) -> float:
        return self.rate_fn(t) if self.rate_fn is not None else self.arrival_rate

    def _arrival_process(self) -> Generator:
        """Non-homogeneous Poisson arrivals by thinning: sample candidate
        events at an upper-bound rate and accept each with probability
        rate(t) / bound — so rate changes take effect immediately."""
        rng = self.streams.get("arrivals")
        bound = max(self._rate(0.0), self.arrival_rate, 1.0 / 60.0)
        while self.arrivals < self.max_arrivals:
            yield self.env.timeout(float(rng.exponential(1.0 / bound)))
            rate = self._rate(self.env.now)
            if rate > bound:  # keep the bound an upper bound
                bound = rate
                continue
            if rng.random() < rate / bound:
                self._browser_arrives(rng)

    def _browser_arrives(self, rng) -> None:
        self.arrivals += 1
        jit = bool(rng.random() < self.jit_fraction)
        if jit:
            self.jit_count += 1
        host = self._add_host(
            f"java-{self.arrivals}",
            speed=speed_for("java_jit" if jit else "java_interp"),
            # The applet gets whatever the browser spares; model a steady
            # share since sessions are short.
            load_model=ConstantLoad(0.8),
        )
        self.launch_client(host)
        self.env.process(self._session(host, rng))

    def _session(self, host: Host, rng) -> Generator:
        yield self.env.timeout(float(rng.exponential(self.session_mean)))
        host.go_down("browser closed")  # permanent: the visitor left

    def on_client_exit(self, host: Host) -> None:
        # Browsers never come back; new arrivals bring new hosts.
        pass
