"""Legion adapter (§5.3): object-based meta-system with a translator.

Two Legion behaviors from the paper are modeled:

* **Message translation** — Legion components did not load the lingua
  franca directly; a single *translator object* carried messages between
  Legion and the rest of the application, giving "a single monitoring
  point" (and a potential bottleneck — the paper notes their design
  would have supported per-object libraries had it become one). Here the
  translator is a real component on the Legion gateway host: clients
  send their service traffic (scheduler, persistent state, logging) to
  it, and it forwards to the right service with added hop latency.
  Replies travel directly back to the client (our messages carry the
  originator's contact), and Gossip polls — inbound by nature — also go
  direct; the translator models the outbound funnel.
* **Stateless-object migration** — "Legion implements automatic resource
  discovery and process migration for stateless objects": when a client
  dies with its host, the adapter restarts a fresh (stateless) client on
  another live Legion host.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..core.component import Component, Effect, Send
from ..core.linguafranca.messages import Message
from ..core.simdriver import SimDriver
from ..simgrid.host import Host
from ..simgrid.load import MeanRevertingLoad
from .base import InfraAdapter
from .speeds import speed_for

__all__ = ["LegionNet", "LegionTranslator"]


class LegionTranslator(Component):
    """Forwards lingua-franca messages out of the Legion world.

    Routing is by message-type prefix: ``SCH_*`` to the scheduler,
    ``PST_*`` to the persistent manager, ``LOG_*`` to the logger.
    """

    def __init__(self, name: str, routes: dict[str, str]) -> None:
        super().__init__(name)
        self.routes = dict(routes)
        self.translated = 0
        self.unroutable = 0

    def on_message(self, message: Message, now: float) -> list[Effect]:
        prefix = message.mtype.split("_", 1)[0]
        dst = self.routes.get(prefix)
        if dst is None:
            self.unroutable += 1
            return []
        self.translated += 1
        # Forward verbatim: the original sender's contact rides along, so
        # the service replies directly to the Legion object.
        return [Send(dst, message)]


class LegionNet(InfraAdapter):
    name = "legion"

    def __init__(
        self,
        *args,
        n_hosts: int = 20,
        translator_routes: Optional[dict[str, str]] = None,
        mtbf: float = 4 * 3600.0,
        mttr: float = 1800.0,
        migrate_delay: float = 45.0,
        spare_fraction: float = 0.2,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.n_hosts = n_hosts
        #: Fraction of hosts kept object-free as migration targets (Legion
        #: discovers resources automatically; a pool has more hosts than
        #: our objects).
        self.spare_fraction = spare_fraction
        self.translator_routes = translator_routes or {}
        self.mtbf = mtbf
        self.mttr = mttr
        self.migrate_delay = migrate_delay
        self.translator: Optional[LegionTranslator] = None
        self.gateway: Optional[Host] = None
        self.migrations = 0

    @property
    def translator_contact(self) -> str:
        """Where Legion clients send their service traffic."""
        return "legion-gateway/xlate"

    def deploy(self) -> None:
        rng = self._rng
        self.gateway = self._add_host(
            "legion-gateway",
            speed=speed_for("legion_node"),
            load_model=MeanRevertingLoad(mean=0.9, sigma=0.002),
        )
        self.translator = LegionTranslator("legion-xlate", self.translator_routes)
        SimDriver(self.env, self.network, self.gateway, "xlate",
                  self.translator, self.streams).start()
        n_active = max(self.n_hosts - int(self.n_hosts * self.spare_fraction), 1)
        for i in range(self.n_hosts):
            host = self._add_host(
                f"legion-{i}",
                speed=speed_for("legion_node", jitter=0.25, rng=rng),
                load_model=MeanRevertingLoad(mean=0.7, sigma=0.006),
            )
            self._start_failure_process(host)
            if i < n_active:
                self.launch_client(host)

    def _start_failure_process(self, host: Host) -> None:
        rng = self.streams.get(f"fail:{host.name}")

        def cycle() -> Generator:
            while True:
                yield self.env.timeout(float(rng.exponential(self.mtbf)))
                host.go_down("failure")
                yield self.env.timeout(float(rng.exponential(self.mttr)))
                host.go_up()

        self.env.process(cycle())

    def on_client_exit(self, host: Host) -> None:
        """Automatic migration of the stateless object to a live host.

        Legion's resource discovery keeps looking until a host is free —
        an object outlives any particular machine."""

        def migrate() -> Generator:
            yield self.env.timeout(self.migrate_delay)
            while True:
                candidates = [
                    h for h in self.hosts
                    if h.up and h.name not in self.drivers and h is not self.gateway
                ]
                if candidates:
                    idx = int(self._rng.integers(len(candidates)))
                    self.migrations += 1
                    self.launch_client(candidates[idx])
                    return
                yield self.env.timeout(60.0)

        self.env.process(migrate())
