"""NetSolve adapter (§5.7): brokered remote procedure invocation.

NetSolve's agent brokers client requests onto computational servers that
advertise their capabilities. The SC98 port (done by the NetSolve group
as EveryWare's extensibility test) ran the Ramsey code on a handful of
servers; the adapter models the agent as a placement step with brokering
latency and automatic reassignment when a server dies.
"""

from __future__ import annotations

from typing import Generator

from ..simgrid.host import Host
from ..simgrid.load import MeanRevertingLoad
from .base import InfraAdapter
from .speeds import speed_for

__all__ = ["NetSolveFarm"]


class NetSolveFarm(InfraAdapter):
    name = "netsolve"

    def __init__(
        self,
        *args,
        n_servers: int = 3,
        agent_latency: float = 5.0,
        mtbf: float = 5 * 3600.0,
        mttr: float = 1200.0,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.n_servers = n_servers
        self.agent_latency = agent_latency
        self.mtbf = mtbf
        self.mttr = mttr
        self.brokered = 0

    def deploy(self) -> None:
        rng = self._rng
        for i in range(self.n_servers):
            host = self._add_host(
                f"netsolve-{i}",
                speed=speed_for("netsolve_server", jitter=0.2, rng=rng),
                load_model=MeanRevertingLoad(mean=0.7, sigma=0.005),
            )
            self._start_failure_process(host)
            self.env.process(self._broker(host))

    def _broker(self, host: Host) -> Generator:
        """Agent brokering: match the request to a capable server."""
        yield self.env.timeout(self.agent_latency)
        if host.up and host.name not in self.drivers:
            self.brokered += 1
            self.launch_client(host)

    def _start_failure_process(self, host: Host) -> None:
        rng = self.streams.get(f"fail:{host.name}")

        def cycle() -> Generator:
            while True:
                yield self.env.timeout(float(rng.exponential(self.mtbf)))
                host.go_down("failure")
                yield self.env.timeout(float(rng.exponential(self.mttr)))
                host.go_up()
                self.env.process(self._broker(host))

        self.env.process(cycle())

    def on_client_exit(self, host: Host) -> None:
        if host.up:
            self.env.process(self._broker(host))
