"""PET image reconstruction on EveryWare (§6, delivered).

The paper's future work names "an image reconstruction tool called
Positron Emission Tomography (PET)" as a planned EveryWare application
with coupled master/slave data parallelism. This module implements it on
the :mod:`~repro.core.services.framework` template:

* a synthetic emission phantom is forward-projected into a sinogram
  (the "scanner data");
* reconstruction is filtered backprojection, data-parallel over
  projection angles: each farm task backprojects a chunk of angles;
* the master's control module accumulates partial images; fidelity is
  measured as correlation against the phantom.

All math is real (numpy FFT ramp filter, bilinear rotation); the Grid
part — distribution, failure-driven reissue, heterogeneous-speed
charging — is the framework's.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = [
    "make_phantom",
    "forward_project",
    "ramp_filter",
    "backproject",
    "reconstruct_serial",
    "make_tasks",
    "execute_task",
    "task_cost",
    "image_correlation",
]


def make_phantom(size: int = 64) -> np.ndarray:
    """A simple emission phantom: a few elliptical hot/cold regions."""
    y, x = np.mgrid[-1 : 1 : size * 1j, -1 : 1 : size * 1j]
    image = np.zeros((size, size))
    # (cx, cy, rx, ry, intensity)
    for cx, cy, rx, ry, val in [
        (0.0, 0.0, 0.72, 0.9, 1.0),  # body
        (-0.25, 0.2, 0.18, 0.3, 1.5),  # hot lesion
        (0.3, -0.1, 0.22, 0.2, 0.4),  # cold region
        (0.1, 0.45, 0.1, 0.1, 2.0),  # small hot spot
    ]:
        mask = ((x - cx) / rx) ** 2 + ((y - cy) / ry) ** 2 <= 1.0
        image[mask] = val
    return image


def _rotate(image: np.ndarray, angle_deg: float) -> np.ndarray:
    """Bilinear rotation about the center (no scipy dependency here, so
    workers stay numpy-pure and wire-serializable)."""
    size = image.shape[0]
    theta = math.radians(angle_deg)
    c, s = math.cos(theta), math.sin(theta)
    center = (size - 1) / 2.0
    ys, xs = np.mgrid[0:size, 0:size].astype(float)
    xs -= center
    ys -= center
    src_x = c * xs + s * ys + center
    src_y = -s * xs + c * ys + center
    x0 = np.floor(src_x).astype(int)
    y0 = np.floor(src_y).astype(int)
    fx = src_x - x0
    fy = src_y - y0
    out = np.zeros_like(image)
    valid = (x0 >= 0) & (x0 < size - 1) & (y0 >= 0) & (y0 < size - 1)
    x0v, y0v = x0[valid], y0[valid]
    fxv, fyv = fx[valid], fy[valid]
    out[valid] = (
        image[y0v, x0v] * (1 - fxv) * (1 - fyv)
        + image[y0v, x0v + 1] * fxv * (1 - fyv)
        + image[y0v + 1, x0v] * (1 - fxv) * fyv
        + image[y0v + 1, x0v + 1] * fxv * fyv
    )
    return out


def forward_project(image: np.ndarray, angles: list[float]) -> np.ndarray:
    """Sinogram: one line-integral projection per angle (rows)."""
    return np.stack([_rotate(image, -a).sum(axis=0) for a in angles])


def ramp_filter(projection: np.ndarray) -> np.ndarray:
    """Frequency-domain ramp filter (the 'filtered' in FBP)."""
    n = projection.shape[-1]
    freqs = np.fft.fftfreq(n)
    return np.real(np.fft.ifft(np.fft.fft(projection) * np.abs(freqs)))


def backproject(
    projections: np.ndarray, angles: list[float], size: int, filtered: bool = True
) -> np.ndarray:
    """Smear each (filtered) projection back across the image plane."""
    image = np.zeros((size, size))
    for row, angle in zip(projections, angles):
        if filtered:
            row = ramp_filter(row)
        smear = np.tile(row, (size, 1))
        image += _rotate(smear, angle)
    return image * (math.pi / (2 * max(len(angles), 1)))


def reconstruct_serial(sinogram: np.ndarray, angles: list[float], size: int) -> np.ndarray:
    """Reference single-machine FBP reconstruction."""
    return backproject(sinogram, angles, size, filtered=True)


# -- farm wiring -------------------------------------------------------------


def make_tasks(sinogram: np.ndarray, angles: list[float], size: int,
               chunk: int = 8) -> list[dict]:
    """One task per chunk of projection angles; projections ride in the
    task (JSON-safe lists), partial images come back."""
    tasks = []
    for i in range(0, len(angles), chunk):
        tasks.append({
            "id": f"pet-{i // chunk}",
            "size": size,
            "angles": [float(a) for a in angles[i : i + chunk]],
            "projections": [list(map(float, row))
                            for row in sinogram[i : i + chunk]],
        })
    return tasks


def execute_task(task: dict) -> dict:
    """Worker control module: backproject this chunk."""
    projections = np.asarray(task["projections"], dtype=float)
    partial = backproject(projections, task["angles"], int(task["size"]))
    return {"partial": [list(map(float, row)) for row in partial]}


def task_cost(task: dict) -> float:
    """Priced like the kernels: ~size^2 ops per angle row rotation."""
    size = int(task["size"])
    return 20.0 * size * size * len(task["angles"])


@dataclass
class Accumulator:
    """Master control module: sum partial images."""

    size: int
    image: Optional[np.ndarray] = None
    chunks: int = 0

    def __call__(self, task: dict, result: dict) -> None:
        partial = np.asarray(result["partial"], dtype=float)
        if self.image is None:
            self.image = np.zeros((self.size, self.size))
        self.image += partial
        self.chunks += 1


def image_correlation(a: np.ndarray, b: np.ndarray) -> float:
    """Pearson correlation between two images (reconstruction fidelity)."""
    af = a.ravel() - a.mean()
    bf = b.ravel() - b.mean()
    denom = np.linalg.norm(af) * np.linalg.norm(bf)
    if denom == 0:
        return 0.0
    return float(af @ bf / denom)
