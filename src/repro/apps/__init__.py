"""Applications built on the EveryWare service framework (§6 future work,
delivered): PET image reconstruction and NOW G-Net–style data mining."""

from . import gnet, pet
from .runner import FarmRun, run_farm

__all__ = ["gnet", "pet", "FarmRun", "run_farm"]
