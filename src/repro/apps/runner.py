"""Convenience runner: a task farm on a small simulated Grid.

Used by the PET and G-Net applications (and their tests/examples) to
stand up a master plus N heterogeneous workers, optionally killing a
worker mid-run to exercise the framework's reissue path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..core.services.framework import TaskFarmMaster, TaskFarmWorker
from ..core.simdriver import SimDriver
from ..simgrid.engine import Environment
from ..simgrid.host import Host, HostSpec
from ..simgrid.load import ConstantLoad, MeanRevertingLoad
from ..simgrid.network import Network
from ..simgrid.rand import RngStreams

__all__ = ["FarmRun", "run_farm"]


@dataclass
class FarmRun:
    env: Environment
    master: TaskFarmMaster
    workers: list[TaskFarmWorker]
    sim_seconds: float


def run_farm(
    tasks: list[dict],
    execute: Callable[[dict], dict],
    cost: Callable[[dict], float],
    on_result: Optional[Callable[[dict, dict], None]] = None,
    n_workers: int = 4,
    worker_speed: float = 2.0e6,
    heterogeneous: bool = True,
    kill_worker_at: Optional[float] = None,
    max_sim_time: float = 24 * 3600.0,
    reissue_timeout: float = 240.0,
    seed: int = 12,
) -> FarmRun:
    """Run the farm to completion (or ``max_sim_time``)."""
    env = Environment()
    streams = RngStreams(seed=seed)
    net = Network(env, streams, jitter=0.1)

    mh = Host(env, HostSpec(name="master", speed=1e7,
                            load_model=ConstantLoad(1.0)), streams)
    net.add_host(mh)
    master = TaskFarmMaster("master", tasks, on_result=on_result,
                            reissue_timeout=reissue_timeout)
    SimDriver(env, net, mh, "farm", master, streams).start()

    workers = []
    for i in range(n_workers):
        speed = worker_speed * (1 + i) if heterogeneous else worker_speed
        h = Host(env, HostSpec(
            name=f"worker{i}", speed=speed,
            load_model=MeanRevertingLoad(mean=0.8, sigma=0.004)), streams)
        net.add_host(h)
        h.start()
        worker = TaskFarmWorker(f"worker{i}", "master/farm",
                                execute=execute, cost=cost,
                                retry_period=20.0)
        SimDriver(env, net, h, "w", worker, streams).start()
        workers.append(worker)
        if kill_worker_at is not None and i == 0:
            def killer(env=env, h=h):
                yield env.timeout(kill_worker_at)
                h.go_down("reclaimed")

            env.process(killer())

    # Drive until every task result is in (checked coarsely).
    while not master.done and env.now < max_sim_time and env.peek() != float("inf"):
        env.run(until=min(env.now + 60.0, max_sim_time))
    return FarmRun(env=env, master=master, workers=workers, sim_seconds=env.now)
