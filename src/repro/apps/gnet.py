"""NOW G-Net–style distributed data mining on EveryWare (§6, delivered).

The paper's second planned application is "a data mining application
called NOW G-Net". This module implements the canonical distributed
mining kernel — frequent itemset counting over a partitioned transaction
database — on the :mod:`~repro.core.services.framework` template:

* the synthetic market-basket database is *not* shipped: each task
  carries only a (seed, offset, count) triple, and workers regenerate
  their partition deterministically (the data-parallel idiom the paper
  highlights for Grid-suitable applications);
* workers count item and item-pair supports in their partition;
* the master's control module merges counts; frequent itemsets are the
  ones clearing the support threshold — identical, by construction, to
  a serial pass over the whole database.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

__all__ = [
    "generate_transactions",
    "count_supports",
    "mine_serial",
    "make_tasks",
    "execute_task",
    "task_cost",
    "CountMerger",
    "frequent_itemsets",
]

#: Item pairs planted with high joint support in the synthetic data.
PLANTED_PAIRS = [(1, 2), (5, 9)]


def generate_transactions(
    n: int, n_items: int = 24, seed: int = 0, offset: int = 0
) -> list[list[int]]:
    """Synthetic market baskets, reproducible per (seed, offset).

    Baseline random items plus planted correlated pairs so the mining
    result has structure to find.
    """
    out = []
    for row in range(offset, offset + n):
        rng = np.random.default_rng((seed, row))
        basket = set(rng.choice(n_items, size=rng.integers(2, 7),
                                replace=False).tolist())
        for a, b in PLANTED_PAIRS:
            if rng.random() < 0.35:
                basket.update((a, b))
        out.append(sorted(int(i) for i in basket))
    return out


def count_supports(transactions: Iterable[list[int]], n_items: int) -> tuple[dict, dict]:
    """(single counts, pair counts) over the given transactions."""
    singles: dict[int, int] = {}
    pairs: dict[tuple[int, int], int] = {}
    for basket in transactions:
        for i, a in enumerate(basket):
            singles[a] = singles.get(a, 0) + 1
            for b in basket[i + 1 :]:
                key = (a, b)
                pairs[key] = pairs.get(key, 0) + 1
    return singles, pairs


def frequent_itemsets(
    singles: dict, pairs: dict, n_transactions: int, min_support: float
) -> tuple[list[int], list[tuple[int, int]]]:
    """Items and pairs clearing the relative support threshold."""
    cut = min_support * n_transactions
    freq_items = sorted(i for i, c in singles.items() if c >= cut)
    freq_pairs = sorted(p for p, c in pairs.items() if c >= cut)
    return freq_items, freq_pairs


def mine_serial(n_transactions: int, n_items: int, seed: int,
                min_support: float) -> tuple[list[int], list[tuple[int, int]]]:
    """Single-machine reference pass."""
    singles, pairs = count_supports(
        generate_transactions(n_transactions, n_items, seed), n_items)
    return frequent_itemsets(singles, pairs, n_transactions, min_support)


# -- farm wiring -------------------------------------------------------------


def make_tasks(n_transactions: int, n_items: int, seed: int,
               chunk: int = 500) -> list[dict]:
    tasks = []
    for i, offset in enumerate(range(0, n_transactions, chunk)):
        count = min(chunk, n_transactions - offset)
        tasks.append({
            "id": f"gnet-{i}",
            "seed": seed,
            "offset": offset,
            "count": count,
            "n_items": n_items,
        })
    return tasks


def execute_task(task: dict) -> dict:
    """Worker control module: count supports in this partition."""
    transactions = generate_transactions(
        int(task["count"]), int(task["n_items"]),
        int(task["seed"]), int(task["offset"]))
    singles, pairs = count_supports(transactions, int(task["n_items"]))
    return {
        "singles": {str(k): v for k, v in singles.items()},
        "pairs": {f"{a},{b}": v for (a, b), v in pairs.items()},
        "n": int(task["count"]),
    }


def task_cost(task: dict) -> float:
    """Roughly items^2 tests per transaction."""
    return 40.0 * float(task["count"])


@dataclass
class CountMerger:
    """Master control module: merge partition counts."""

    singles: dict = field(default_factory=dict)
    pairs: dict = field(default_factory=dict)
    n_transactions: int = 0

    def __call__(self, task: dict, result: dict) -> None:
        for key, value in result["singles"].items():
            item = int(key)
            self.singles[item] = self.singles.get(item, 0) + value
        for key, value in result["pairs"].items():
            a, b = key.split(",")
            pair = (int(a), int(b))
            self.pairs[pair] = self.pairs.get(pair, 0) + value
        self.n_transactions += int(result["n"])

    def mine(self, min_support: float) -> tuple[list[int], list[tuple[int, int]]]:
        return frequent_itemsets(self.singles, self.pairs,
                                 self.n_transactions, min_support)
