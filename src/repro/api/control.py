"""``repro.api.control`` — the workload-management control plane.

The HTTP/JSON job gateway (ROADMAP item 2): a durable
:class:`WorkQueue` behind diracx-style job routes, served on the live
reactor by :class:`HttpServer` + :class:`GatewayCore` and mirrored
deterministically under simulated time by :func:`run_sim_serve`.
:func:`run_serve` stands up the whole control-plane world as real
processes and storms it with :class:`GatewayStorm`.
"""

from __future__ import annotations

from ..control import (
    FileJournal,
    GatewayClient,
    GatewayComponent,
    GatewayCore,
    GatewayStorm,
    HttpDecoder,
    HttpError,
    HttpRequest,
    HttpResponseDecoder,
    HttpServer,
    JOB_STATES,
    Job,
    MemoryJournal,
    ServeConfig,
    ServeReport,
    SimJobUser,
    SimJobWorker,
    StormStats,
    WorkQueue,
    error_response,
    json_response,
    render_payload,
    run_serve,
    run_sim_serve,
    text_response,
)
from ..control.serve import check_serve_invariants, ramsey_job_spec

__all__ = [
    "FileJournal",
    "GatewayClient",
    "GatewayComponent",
    "GatewayCore",
    "GatewayStorm",
    "HttpDecoder",
    "HttpError",
    "HttpRequest",
    "HttpResponseDecoder",
    "HttpServer",
    "JOB_STATES",
    "Job",
    "MemoryJournal",
    "ServeConfig",
    "ServeReport",
    "SimJobUser",
    "SimJobWorker",
    "StormStats",
    "WorkQueue",
    "check_serve_invariants",
    "error_response",
    "json_response",
    "ramsey_job_spec",
    "render_payload",
    "run_serve",
    "run_sim_serve",
    "text_response",
]
