"""``repro.api.core`` — the plane-agnostic programming model.

Everything here runs identically under simulated and wall-clock time:
the sans-IO :class:`Component` contract and its effects, the
retry/time-out policies drivers execute, the observability plane
(metrics registry + causal tracer + profiler + exporters), the NWS
forecasting machinery, the lingua-franca :class:`Message`, the
EveryWare services (gossip, scheduler, persistent state, logging, task
farm), and the Ramsey application components. No sockets, no simulated
grid — those live in :mod:`repro.api.net` and :mod:`repro.api.sim`.
"""

from __future__ import annotations

# -- components and effects ------------------------------------------------
from ..core.component import (
    CancelTimer,
    Component,
    Effect,
    LogLine,
    NullRuntime,
    Send,
    SetTimer,
    Stop,
)

# -- retry / timeout policies ----------------------------------------------
from ..core.policy import RetryPolicy, TimeoutPolicy

# -- observability ----------------------------------------------------------
from ..core.telemetry import (
    MetricsRegistry,
    Span,
    Telemetry,
    TraceContext,
    Tracer,
    export_chrome_trace,
    render_timeline,
    write_metrics_json,
    write_trace_json,
)
from ..simgrid.profile import EngineProfiler

# -- the lingua franca wire format -----------------------------------------
from ..core.linguafranca import Message

# -- dynamic benchmarking / forecasting (§2.2) ------------------------------
from ..core.forecasting import (
    ForecastRegistry,
    ForecasterBank,
    default_bank,
    event_tag,
)

# -- gossip and services ---------------------------------------------------
from ..core.gossip import (
    ComparatorRegistry,
    GossipAgent,
    GossipServer,
    GossipStats,
    StateDigest,
    StateStore,
    SuspicionTable,
    plan_exchange,
    plan_shards,
)
from ..core.services import (
    LoggingServer,
    PersistentStateServer,
    QueueWorkSource,
    SchedulerServer,
)
from ..core.services.framework import TaskFarmMaster, TaskFarmWorker

# -- app-agnostic work-unit kinds (§3.1 distrust, pluggable engines) --------
from ..core.services.kinds import (
    AppKind,
    KindEngine,
    KindRegistry,
    ResultCheckError,
    kind_of,
    register_kind,
)

# -- application: Ramsey search --------------------------------------------
from ..ramsey import (
    RAMSEY_BEST,
    Coloring,
    ModelEngine,
    RamseyClient,
    RealEngine,
    TabuSearch,
    is_counter_example,
    ramsey_comparator,
    unit_generator,
)
from ..ramsey.verify import counter_example_validator

__all__ = [
    # components and effects
    "CancelTimer",
    "Component",
    "Effect",
    "LogLine",
    "NullRuntime",
    "Send",
    "SetTimer",
    "Stop",
    # policies
    "RetryPolicy",
    "TimeoutPolicy",
    # observability
    "MetricsRegistry",
    "Span",
    "Telemetry",
    "TraceContext",
    "Tracer",
    "export_chrome_trace",
    "render_timeline",
    "write_metrics_json",
    "write_trace_json",
    "EngineProfiler",
    # lingua franca
    "Message",
    # forecasting
    "ForecastRegistry",
    "ForecasterBank",
    "default_bank",
    "event_tag",
    # gossip and services
    "ComparatorRegistry",
    "GossipAgent",
    "GossipServer",
    "GossipStats",
    "StateDigest",
    "StateStore",
    "SuspicionTable",
    "plan_exchange",
    "plan_shards",
    "LoggingServer",
    "PersistentStateServer",
    "QueueWorkSource",
    "SchedulerServer",
    "TaskFarmMaster",
    "TaskFarmWorker",
    # Ramsey application
    "RAMSEY_BEST",
    "Coloring",
    "ModelEngine",
    "RamseyClient",
    "RealEngine",
    "TabuSearch",
    "is_counter_example",
    "ramsey_comparator",
    "unit_generator",
    "counter_example_validator",
    # app-agnostic work-unit kinds
    "AppKind",
    "KindEngine",
    "KindRegistry",
    "ResultCheckError",
    "kind_of",
    "register_kind",
]
