"""``repro.api.explore`` — the model-exploration plane.

The toolkit's second first-class application (ROADMAP item 4, DESIGN
§16): an EMEWS EQ/Py-style :class:`ExploreQueue` through which ME
algorithms (:class:`GridSweep`, :class:`HillClimber`) push black-box
evaluation tasks to the unchanged gateway/scheduler/WorkQueue stack and
consume results asynchronously. :func:`run_explore` is the live
harness (``repro explore``); :func:`run_sim_explore` is its
byte-deterministic simulated twin.
"""

from __future__ import annotations

from ..explore import (
    EVAL_FUNCTIONS,
    EVAL_KIND,
    ExploreConfig,
    ExploreEngine,
    ExploreQueue,
    ExploreWorker,
    GridSweep,
    HillClimber,
    MEDriverComponent,
    check_eval_result,
    evaluate,
    execute_unit,
    make_driver,
    make_eval_spec,
    run_driver,
    run_explore,
    run_sim_explore,
    validate_eval,
)

__all__ = [
    "EVAL_FUNCTIONS",
    "EVAL_KIND",
    "ExploreConfig",
    "ExploreEngine",
    "ExploreQueue",
    "ExploreWorker",
    "GridSweep",
    "HillClimber",
    "MEDriverComponent",
    "check_eval_result",
    "evaluate",
    "execute_unit",
    "make_driver",
    "make_eval_spec",
    "run_driver",
    "run_explore",
    "run_sim_explore",
    "validate_eval",
]
