"""``repro.api.net`` — real sockets: the reactor and the wall-clock driver.

The selector :class:`EventLoop`, the lingua-franca TCP endpoints
(:class:`TcpServer`, :class:`TcpClient`, :class:`AsyncSender`), the
:class:`NetDriver` that runs :mod:`repro.api.core` components on a real
port, and the transport benchmark (``repro bench --net``).
"""

from __future__ import annotations

from ..core.netdriver import NetDriver
from ..core.linguafranca import (
    AsyncSender,
    EventLoop,
    TcpClient,
    TcpServer,
)
from ..core.netbench import run_netbench

__all__ = [
    "NetDriver",
    "AsyncSender",
    "EventLoop",
    "TcpClient",
    "TcpServer",
    "run_netbench",
]
