"""The supported public surface of the EveryWare reproduction.

Everything an application, experiment, or example needs is re-exported
here under one roof::

    from repro.api import Component, Send, RetryPolicy, FaultPlan, ...

and the surface is *layered* — each layer is its own importable module
for callers that want exactly one plane:

* :mod:`repro.api.core` — the plane-agnostic programming model:
  components and effects, retry/time-out policies, observability,
  forecasting, the lingua-franca :class:`Message`, the EveryWare
  services, and the Ramsey application.
* :mod:`repro.api.sim` — the simulated grid: :class:`SimDriver`, the
  simgrid fabric and fault injectors, the compute plane, and the
  prebuilt experiment worlds (SC98, chaos, observe).
* :mod:`repro.api.net` — real sockets: the :class:`EventLoop` reactor,
  TCP endpoints, :class:`NetDriver`, and the transport benchmark.
* :mod:`repro.api.live` — the deployment plane: topologies, manifests,
  the supervisor/collector, and :func:`run_live`.
* :mod:`repro.api.control` — the workload-management control plane: the
  HTTP/JSON job gateway, its durable :class:`WorkQueue`, the synthetic
  user storm, and the ``repro serve`` harnesses (live + simulated twin).
* :mod:`repro.api.obs` — the observability plane: end-to-end job
  tracing, the per-node flight recorder, Prometheus text exposition,
  and the ``repro top`` dashboard.
* :mod:`repro.api.explore` — the model-exploration plane: the
  EMEWS-style :class:`ExploreQueue`, the ME algorithms, and the
  ``repro explore`` harnesses (live + simulated twin).

Importing a name from ``repro.api`` directly keeps working for every
previously public name (the flat-module compatibility contract, frozen
by ``tests/api/test_surface.py``); resolution is lazy, so pulling one
``core`` name does not import the live or control planes. Anything
*not* listed in :func:`surface` is an internal detail that may move
between releases — reaching it through ``repro.api`` earns a
``DeprecationWarning`` pointing at the layer that exports it.
"""

from __future__ import annotations

import importlib
import warnings

#: The public contract, by layer. ``repro info --api`` dumps exactly
#: this structure and the golden-surface test freezes it; adding a name
#: here is an API addition, removing one is a compatibility break.
_LAYERS: dict[str, tuple[str, ...]] = {
    "core": (
        # components and effects
        "CancelTimer", "Component", "Effect", "LogLine", "NullRuntime",
        "Send", "SetTimer", "Stop",
        # policies
        "RetryPolicy", "TimeoutPolicy",
        # observability
        "MetricsRegistry", "Span", "Telemetry", "TraceContext", "Tracer",
        "export_chrome_trace", "render_timeline", "write_metrics_json",
        "write_trace_json", "EngineProfiler",
        # lingua franca
        "Message",
        # forecasting
        "ForecastRegistry", "ForecasterBank", "default_bank", "event_tag",
        # gossip and services
        "ComparatorRegistry", "GossipAgent", "GossipServer", "GossipStats",
        "StateDigest", "StateStore", "SuspicionTable", "plan_exchange",
        "plan_shards",
        "LoggingServer", "PersistentStateServer", "QueueWorkSource",
        "SchedulerServer", "TaskFarmMaster", "TaskFarmWorker",
        # Ramsey application
        "RAMSEY_BEST", "Coloring", "ModelEngine", "RamseyClient",
        "RealEngine", "TabuSearch", "is_counter_example",
        "ramsey_comparator", "unit_generator", "counter_example_validator",
        # app-agnostic work-unit kinds
        "AppKind", "KindEngine", "KindRegistry", "ResultCheckError",
        "kind_of", "register_kind",
    ),
    "sim": (
        "SimDriver",
        # simulated grid
        "Environment", "Host", "HostSpec", "ConstantLoad",
        "MeanRevertingLoad", "Address", "AddressError", "Network",
        "RngStreams",
        # fault injection
        "FaultPlan", "FaultStats", "HostCrash", "InfraOutage",
        "MessageChaos", "SitePartition",
        # compute plane
        "ComputeLane", "EvalRound", "EvalResult", "InlineLane", "PoolLane",
        "Recount", "RecountResult", "StepBatch", "StepBatchResult",
        "make_lane", "run_scaling", "run_task",
        # scenarios and experiment harnesses
        "run_farm", "ServiceCore", "build_core", "model_client_factory",
        "SC98Config", "SC98Results", "SC98World", "build_sc98",
        "render_fig2", "render_fig3a", "render_fig3b",
        "render_grid_criteria", "render_headlines",
        "PROFILES", "ChaosConfig", "ChaosReport", "build_plan",
        "run_chaos", "run_chaos_matrix",
        "ObserveConfig", "ObserveWorld", "requeue_chains", "run_observe",
        # scale pools (DESIGN §15)
        "BigPool", "PoolConfig", "build_pool", "churn_plan",
        "export_state", "gossip_rollup", "inject_write",
        "run_until_converged",
    ),
    "net": (
        "NetDriver", "AsyncSender", "EventLoop", "TcpClient", "TcpServer",
        "run_netbench",
    ),
    "live": (
        "Collector", "LiveReport", "Manifest", "NodeSpec", "RestartPolicy",
        "Supervisor", "Topology", "build_manifest", "check_invariants",
        "run_live", "sc98_topology", "serve_topology",
    ),
    "control": (
        "FileJournal", "GatewayClient", "GatewayComponent", "GatewayCore",
        "GatewayStorm", "HttpDecoder", "HttpError", "HttpRequest",
        "HttpResponseDecoder", "HttpServer", "JOB_STATES", "Job",
        "MemoryJournal", "ServeConfig", "ServeReport", "SimJobUser",
        "SimJobWorker", "StormStats", "WorkQueue",
        "check_serve_invariants", "error_response", "json_response",
        "ramsey_job_spec", "render_payload", "run_serve", "run_sim_serve",
        "text_response",
    ),
    "obs": (
        "EventLog", "FlightRecorder", "build_frame", "flight_path",
        "job_trace", "load_flight", "load_spans", "parse_prometheus",
        "render_job_trace", "render_prometheus", "render_top", "run_top",
        "sample_value", "span_origin",
    ),
    "explore": (
        "EVAL_FUNCTIONS", "EVAL_KIND", "ExploreConfig", "ExploreEngine",
        "ExploreQueue", "ExploreWorker", "GridSweep", "HillClimber",
        "MEDriverComponent", "check_eval_result", "evaluate",
        "execute_unit", "make_driver", "make_eval_spec", "run_driver",
        "run_explore", "run_sim_explore", "validate_eval",
    ),
}

#: name -> owning layer (each public name has exactly one home).
_HOME: dict[str, str] = {}
for _layer, _names in _LAYERS.items():
    for _name in _names:
        if _name in _HOME:
            raise RuntimeError(
                f"api name {_name!r} claimed by both "
                f"{_HOME[_name]!r} and {_layer!r}")
        _HOME[_name] = _layer
del _layer, _names, _name

__all__ = sorted(_HOME) + sorted(_LAYERS)


def surface() -> dict:
    """The public contract as data: ``{layer: sorted names}`` plus the
    flattened name list. ``repro info --api`` prints this and the golden
    test freezes it."""
    return {
        "layers": {layer: sorted(names) for layer, names in _LAYERS.items()},
        "names": sorted(_HOME),
    }


def __getattr__(name: str):
    layer = _HOME.get(name)
    if layer is not None:
        value = getattr(importlib.import_module(f".{layer}", __name__), name)
        globals()[name] = value  # cache: next access skips this hook
        return value
    if name in _LAYERS:
        module = importlib.import_module(f".{name}", __name__)
        globals()[name] = module
        return module
    if not name.startswith("_"):
        # Moved internals: resolvable, but not part of the contract.
        for layer in _LAYERS:
            module = importlib.import_module(f".{layer}", __name__)
            if hasattr(module, name):
                warnings.warn(
                    f"repro.api.{name} is not part of the public api "
                    f"surface; import it from repro.api.{layer} (or its "
                    f"home module) instead",
                    DeprecationWarning, stacklevel=2)
                value = getattr(module, name)
                globals()[name] = value
                return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(__all__) | {"surface"})
