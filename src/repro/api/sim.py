"""``repro.api.sim`` — the simulated grid and its experiment worlds.

:class:`SimDriver` runs :mod:`repro.api.core` components under
simulated time on the simgrid fabric (:class:`Environment`,
:class:`Host`, :class:`Network`, load models, fault injectors), the
compute plane offloads their heuristic kernels to worker pools with
bit-identical results, and the prebuilt experiment harnesses
(:func:`build_sc98`, :func:`run_chaos`, :func:`run_observe`) assemble
whole deterministic worlds.
"""

from __future__ import annotations

# -- the simulated-time driver ---------------------------------------------
from ..core.simdriver import SimDriver

# -- simulated grid --------------------------------------------------------
from ..simgrid import Environment
from ..simgrid.host import Host, HostSpec
from ..simgrid.load import ConstantLoad, MeanRevertingLoad
from ..simgrid.network import Address, AddressError, Network
from ..simgrid.rand import RngStreams
from ..simgrid.faults import (
    FaultPlan,
    FaultStats,
    HostCrash,
    InfraOutage,
    MessageChaos,
    SitePartition,
)

# -- compute plane ----------------------------------------------------------
from ..parallel import (
    ComputeLane,
    EvalRound,
    EvalResult,
    InlineLane,
    PoolLane,
    Recount,
    RecountResult,
    StepBatch,
    StepBatchResult,
    make_lane,
    run_task,
)
from ..parallel.scaling import run_scaling

# -- scenarios and experiment harnesses ------------------------------------
from ..apps.runner import run_farm
from ..experiments.scenario import ServiceCore, build_core, model_client_factory
from ..experiments.sc98 import SC98Config, SC98Results, SC98World, build_sc98
from ..experiments.report import (
    render_fig2,
    render_fig3a,
    render_fig3b,
    render_grid_criteria,
    render_headlines,
)
from ..experiments.chaos import (
    PROFILES,
    ChaosConfig,
    ChaosReport,
    build_plan,
    run_chaos,
    run_chaos_matrix,
)
from ..experiments.observe import (
    ObserveConfig,
    ObserveWorld,
    requeue_chains,
    run_observe,
)
from ..experiments.bigpool import (
    BigPool,
    PoolConfig,
    build_pool,
    churn_plan,
    export_state,
    gossip_rollup,
    inject_write,
    run_until_converged,
)

__all__ = [
    # driver
    "SimDriver",
    # simulated grid
    "Environment",
    "Host",
    "HostSpec",
    "ConstantLoad",
    "MeanRevertingLoad",
    "Address",
    "AddressError",
    "Network",
    "RngStreams",
    # fault injection
    "FaultPlan",
    "FaultStats",
    "HostCrash",
    "InfraOutage",
    "MessageChaos",
    "SitePartition",
    # compute plane
    "ComputeLane",
    "EvalRound",
    "EvalResult",
    "InlineLane",
    "PoolLane",
    "Recount",
    "RecountResult",
    "StepBatch",
    "StepBatchResult",
    "make_lane",
    "run_scaling",
    "run_task",
    # scenarios
    "run_farm",
    "ServiceCore",
    "build_core",
    "model_client_factory",
    "SC98Config",
    "SC98Results",
    "SC98World",
    "build_sc98",
    "render_fig2",
    "render_fig3a",
    "render_fig3b",
    "render_grid_criteria",
    "render_headlines",
    "PROFILES",
    "ChaosConfig",
    "ChaosReport",
    "build_plan",
    "run_chaos",
    "run_chaos_matrix",
    "ObserveConfig",
    "ObserveWorld",
    "requeue_chains",
    "run_observe",
    # scale pools (DESIGN §15)
    "BigPool",
    "PoolConfig",
    "build_pool",
    "churn_plan",
    "export_state",
    "gossip_rollup",
    "inject_write",
    "run_until_converged",
]
