"""``repro.api.live`` — the deployment plane: worlds as real OS processes.

Declarative :class:`Topology` specs become supervised localhost worlds:
:func:`build_manifest` preallocates every node's contact,
:class:`Supervisor` spawns and restarts ``repro live-node`` processes,
:class:`Collector` merges their shipped telemetry, and :func:`run_live`
runs the whole experiment and returns a :class:`LiveReport`.
"""

from __future__ import annotations

from ..live import (
    Collector,
    LiveReport,
    Manifest,
    NodeSpec,
    RestartPolicy,
    Supervisor,
    Topology,
    build_manifest,
    check_invariants,
    run_live,
    sc98_topology,
    serve_topology,
)

__all__ = [
    "Collector",
    "LiveReport",
    "Manifest",
    "NodeSpec",
    "RestartPolicy",
    "Supervisor",
    "Topology",
    "build_manifest",
    "check_invariants",
    "run_live",
    "sc98_topology",
    "serve_topology",
]
