"""``repro.api.obs`` — the observability plane (DESIGN §14).

Wall-clock observability over the control and deployment planes:
end-to-end job tracing (:func:`job_trace` / :func:`render_job_trace`
walk one submission's causal chain across processes and incarnations),
the per-node :class:`FlightRecorder` black box recovered post-mortem by
the supervisor, Prometheus text exposition for the gateway's
``/metrics`` (:func:`render_prometheus` / :func:`parse_prometheus`),
the job-lifecycle :class:`EventLog` behind ``GET /events``, and the
``repro top`` live dashboard (:func:`run_top`).
"""

from __future__ import annotations

from ..obs import (
    EventLog,
    FlightRecorder,
    build_frame,
    flight_path,
    job_trace,
    load_flight,
    load_spans,
    parse_prometheus,
    render_job_trace,
    render_prometheus,
    render_top,
    run_top,
    sample_value,
    span_origin,
)

__all__ = [
    "EventLog",
    "FlightRecorder",
    "build_frame",
    "flight_path",
    "job_trace",
    "load_flight",
    "load_spans",
    "parse_prometheus",
    "render_job_trace",
    "render_prometheus",
    "render_top",
    "run_top",
    "sample_value",
    "span_origin",
]
