"""Work units for the distributed Ramsey search.

A work unit is a JSON-safe dict describing one slice of the search space:
which problem size, which heuristic, which random seed (the "subspace" —
independent seeded restarts partition the stochastic search, the
practical analog of the paper's branch-and-bound pruning coordination),
an operation budget, and optionally a ``resume`` snapshot when the unit
was migrated from another client mid-flight.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from .graphs import OpCounter
from .heuristics import SearchSnapshot, make_search

__all__ = ["make_unit", "unit_generator", "run_unit", "validate_unit"]

HEURISTICS = ("tabu", "anneal", "minconflict")


def make_unit(
    uid: str,
    k: int,
    n: int,
    heuristic: str = "tabu",
    seed: int = 0,
    ops_budget: float = 1e9,
) -> dict:
    """Build one work-unit dict."""
    if heuristic not in HEURISTICS:
        raise ValueError(f"unknown heuristic {heuristic!r}")
    return {
        "id": uid,
        "k": int(k),
        "n": int(n),
        "heuristic": heuristic,
        "seed": int(seed),
        "ops_budget": float(ops_budget),
    }


def validate_unit(unit: dict) -> None:
    """Raise ValueError if the unit is not executable."""
    for field in ("id", "k", "n", "heuristic", "seed", "ops_budget"):
        if field not in unit:
            raise ValueError(f"work unit missing {field!r}")
    if unit["heuristic"] not in HEURISTICS:
        raise ValueError(f"unknown heuristic {unit['heuristic']!r}")
    if int(unit["k"]) < int(unit["n"]):
        raise ValueError("unit has k < n")


def unit_generator(
    k: int, n: int, base_seed: int = 0, ops_budget: float = 1e9
) -> Callable[[int], dict]:
    """Factory for :class:`~repro.core.services.scheduler.QueueWorkSource`:
    mints an endless stream of units cycling heuristics and seeds."""

    def generate(counter: int) -> dict:
        heuristic = HEURISTICS[counter % len(HEURISTICS)]
        return make_unit(
            uid=f"r{n}k{k}-{counter}",
            k=k,
            n=n,
            heuristic=heuristic,
            seed=base_seed + counter,
            ops_budget=ops_budget,
        )

    return generate


def run_unit(
    unit: dict,
    max_steps: int = 10_000,
    ops: Optional[OpCounter] = None,
) -> dict:
    """Execute a unit synchronously (offline/example use; clients in the
    simulation drive the engine incrementally instead).

    Returns ``{"unit_id", "best_energy", "found", "coloring", "steps", "ops"}``.
    """
    validate_unit(unit)
    ops = ops if ops is not None else OpCounter()
    rng = np.random.default_rng(unit["seed"])
    search = make_search(unit["heuristic"], unit["k"], unit["n"], rng, ops=ops)
    resume = unit.get("resume")
    if isinstance(resume, dict) and "coloring" in resume:
        try:
            search.restore(SearchSnapshot.from_dict(resume))
        except (KeyError, ValueError, TypeError):
            pass  # unusable resume info: start fresh
    steps = search.run(max_steps=max_steps)
    snap = search.snapshot()
    return {
        "unit_id": unit["id"],
        "best_energy": snap.best_energy,
        "found": snap.best_energy == 0,
        "coloring": snap.best_coloring,
        "steps": steps,
        "ops": ops.ops,
    }
