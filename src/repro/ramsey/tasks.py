"""Work units for the distributed Ramsey search.

A work unit is a JSON-safe dict describing one slice of the search space:
which problem size, which heuristic, which random seed (the "subspace" —
independent seeded restarts partition the stochastic search, the
practical analog of the paper's branch-and-bound pruning coordination),
an operation budget, and optionally a ``resume`` snapshot when the unit
was migrated from another client mid-flight.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..core.services.kinds import ResultCheckError, register_kind
from .graphs import OpCounter
from .heuristics import SearchSnapshot, make_search

__all__ = ["check_ramsey_result", "make_unit", "unit_generator", "run_unit",
           "validate_ramsey_spec", "validate_unit"]

HEURISTICS = ("tabu", "anneal", "minconflict")


def make_unit(
    uid: str,
    k: int,
    n: int,
    heuristic: str = "tabu",
    seed: int = 0,
    ops_budget: float = 1e9,
) -> dict:
    """Build one work-unit dict."""
    if heuristic not in HEURISTICS:
        raise ValueError(f"unknown heuristic {heuristic!r}")
    return {
        "id": uid,
        "k": int(k),
        "n": int(n),
        "heuristic": heuristic,
        "seed": int(seed),
        "ops_budget": float(ops_budget),
    }


def validate_unit(unit: dict) -> None:
    """Raise ValueError if the unit is not executable."""
    for field in ("id", "k", "n", "heuristic", "seed", "ops_budget"):
        if field not in unit:
            raise ValueError(f"work unit missing {field!r}")
    if unit["heuristic"] not in HEURISTICS:
        raise ValueError(f"unknown heuristic {unit['heuristic']!r}")
    if int(unit["k"]) < int(unit["n"]):
        raise ValueError("unit has k < n")


def validate_ramsey_spec(spec: dict) -> None:
    """Like :func:`validate_unit` for gateway-side *specs*, which have
    no ``id`` yet (the gateway assigns one at submit)."""
    for field in ("k", "n", "heuristic", "seed", "ops_budget"):
        if field not in spec:
            raise ValueError(f"ramsey spec missing {field!r}")
    if spec["heuristic"] not in HEURISTICS:
        raise ValueError(f"unknown heuristic {spec['heuristic']!r}")
    if int(spec["k"]) < int(spec["n"]):
        raise ValueError("spec has k < n")


def check_ramsey_result(spec: dict, result: Optional[dict]) -> None:
    """Distrust remote results (paper §3.1): a completion claiming a
    counter-example (``best_energy == 0``) must carry a coloring that an
    independent verifier confirms. Progress-only results make no claim
    and pass; a claim that cannot be re-verified is rejected, which
    requeues the unit for honest re-execution."""
    progress = result.get("progress") if isinstance(result, dict) else None
    if not isinstance(progress, dict):
        return
    claimed = progress.get("best_energy")
    try:
        if claimed is None or float(claimed) != 0.0:
            return
    except (TypeError, ValueError):
        raise ResultCheckError(f"unreadable best_energy {claimed!r}")
    from .graphs import Coloring
    from .verify import is_counter_example
    try:
        k = int(spec.get("k", progress.get("k")))
        n = int(spec.get("n", progress.get("n")))
        coloring = Coloring.from_hex(k, str(progress["best_coloring"]))
        ok = is_counter_example(coloring, n)
    except (KeyError, TypeError, ValueError) as exc:
        raise ResultCheckError(
            f"unverifiable counter-example claim: {exc}") from exc
    if not ok:
        raise ResultCheckError(
            "claimed counter-example fails independent verification")


def _ramsey_engine():
    from .client import RealEngine  # deferred: client imports this module
    return RealEngine()


register_kind(
    "ramsey",
    validate=validate_ramsey_spec,
    engine_factory=_ramsey_engine,
    check_result=check_ramsey_result,
    description="distributed Ramsey counter-example search (the paper's "
                "original application; the default for unlabelled units)",
    replace=True,
)


def unit_generator(
    k: int, n: int, base_seed: int = 0, ops_budget: float = 1e9
) -> Callable[[int], dict]:
    """Factory for :class:`~repro.core.services.scheduler.QueueWorkSource`:
    mints an endless stream of units cycling heuristics and seeds."""

    def generate(counter: int) -> dict:
        heuristic = HEURISTICS[counter % len(HEURISTICS)]
        return make_unit(
            uid=f"r{n}k{k}-{counter}",
            k=k,
            n=n,
            heuristic=heuristic,
            seed=base_seed + counter,
            ops_budget=ops_budget,
        )

    return generate


def run_unit(
    unit: dict,
    max_steps: int = 10_000,
    ops: Optional[OpCounter] = None,
) -> dict:
    """Execute a unit synchronously (offline/example use; clients in the
    simulation drive the engine incrementally instead).

    Returns ``{"unit_id", "best_energy", "found", "coloring", "steps", "ops"}``.
    """
    validate_unit(unit)
    ops = ops if ops is not None else OpCounter()
    rng = np.random.default_rng(unit["seed"])
    search = make_search(unit["heuristic"], unit["k"], unit["n"], rng, ops=ops)
    resume = unit.get("resume")
    if isinstance(resume, dict) and "coloring" in resume:
        try:
            search.restore(SearchSnapshot.from_dict(resume))
        except (KeyError, ValueError, TypeError):
            pass  # unusable resume info: start fresh
    steps = search.run(max_steps=max_steps)
    snap = search.snapshot()
    return {
        "unit_id": unit["id"],
        "best_energy": snap.best_energy,
        "found": snap.best_energy == 0,
        "coloring": snap.best_coloring,
        "steps": steps,
        "ops": ops.ops,
    }
