"""Known Ramsey facts and classical constructions.

Small Ramsey numbers and bounds per Radziszowski's dynamic survey (the
paper's [28]): R(3,3)=6, R(4,4)=18, and at the time of SC98 the best
known lower bound for R(5,5) was 43 — the application searched complete
two-colored graphs on 43 vertices (§3).

Paley colorings (red = quadratic-residue differences, for primes
q ≡ 1 mod 4) provide the classical witnesses: Paley(5) has no mono K_3,
Paley(17) no mono K_4, Paley(37) no mono K_5 — seeds and regression
anchors for the search heuristics and the verifier.
"""

from __future__ import annotations

from .graphs import Coloring

__all__ = [
    "KNOWN_RAMSEY",
    "SEARCH_TARGETS",
    "paley_coloring",
    "PALEY_WITNESSES",
]

#: n -> (exact value or None, best known lower bound at SC98 time)
KNOWN_RAMSEY: dict[int, tuple[int | None, int]] = {
    3: (6, 6),
    4: (18, 18),
    5: (None, 43),  # R(5,5) >= 43 was the state of the art the paper cites
    6: (None, 102),
}

#: The problem sizes the SC98 application attacked: find a counter-example
#: on k vertices to push the R(n, n) lower bound past k+1.
SEARCH_TARGETS: dict[int, int] = {5: 43, 6: 102}

#: n -> prime q such that Paley(q) has no monochromatic K_n.
PALEY_WITNESSES: dict[int, int] = {3: 5, 4: 17, 5: 37}


def paley_coloring(q: int) -> Coloring:
    """The Paley coloring of K_q: edge (i, j) is red iff (i - j) is a
    nonzero quadratic residue mod q. Requires prime q ≡ 1 (mod 4) so that
    residueship is symmetric."""
    if q < 5:
        raise ValueError("need q >= 5")
    if q % 4 != 1:
        raise ValueError("Paley colorings need q ≡ 1 (mod 4)")
    for p in range(2, int(q**0.5) + 1):
        if q % p == 0:
            raise ValueError(f"{q} is not prime")
    residues = {pow(x, 2, q) for x in range(1, q)}
    return Coloring.from_edges(
        q,
        (
            (i, j)
            for i in range(q)
            for j in range(i + 1, q)
            if (i - j) % q in residues
        ),
    )
