"""Independent counter-example verification (§3.1.2).

"If a process attempts to store a counter example ... the persistent
state manager first checks to make sure the stored object is, indeed, a
Ramsey counter example for the given problem size."

The verifier deliberately uses a *different* algorithm from the fast
bitset counters in :mod:`.graphs` — a direct enumeration over vertex
subsets — so a bug in the optimized path cannot hide in the checker.
"""

from __future__ import annotations

from itertools import combinations
from typing import Optional

from ..core.services.persistent import ValidationError
from .graphs import BLUE, RED, Coloring

__all__ = [
    "find_mono_clique",
    "is_counter_example",
    "verify_counter_example_object",
    "counter_example_validator",
]


def find_mono_clique(coloring: Coloring, n: int) -> Optional[tuple[int, ...]]:
    """Return some monochromatic n-subset, or None if there is none.

    Brute-force by subsets with an early same-color test; used for
    verification only, never in the search inner loop.
    """
    k = coloring.k
    if n > k:
        return None
    for subset in combinations(range(k), n):
        for color in (RED, BLUE):
            if all(
                coloring.color(u, v) == color for u, v in combinations(subset, 2)
            ):
                return subset
    return None


def is_counter_example(coloring: Coloring, n: int) -> bool:
    """True iff ``coloring`` witnesses ``R(n, n) > coloring.k``."""
    return find_mono_clique(coloring, n) is None


def verify_counter_example_object(obj: dict) -> Coloring:
    """Validate a checkpoint object claiming to be a counter-example.

    Expected shape: ``{"k": int, "n": int, "coloring": hex-string}``.
    Returns the decoded coloring; raises ValidationError otherwise.
    """
    try:
        k = int(obj["k"])
        n = int(obj["n"])
        text = str(obj["coloring"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ValidationError(f"malformed counter-example object: {exc}") from exc
    if not (2 <= n <= k):
        raise ValidationError(f"nonsensical sizes k={k}, n={n}")
    try:
        coloring = Coloring.from_hex(k, text)
    except (ValueError, TypeError) as exc:
        raise ValidationError(f"undecodable coloring: {exc}") from exc
    witness = find_mono_clique(coloring, n)
    if witness is not None:
        raise ValidationError(
            f"not a counter-example: monochromatic K_{n} on vertices {witness}"
        )
    return coloring


def counter_example_validator(key: str, obj: dict) -> None:
    """Persistent-manager validator hook: applies to ``ramsey/``-keyed
    stores, admits everything else untouched."""
    if key.startswith("ramsey/"):
        verify_counter_example_object(obj)
