"""Two-colorings of complete graphs and monochromatic-clique counting.

The Ramsey Number Search application (§3) works in the space of complete
two-colored graphs on ``k`` vertices, hunting for colorings with **no**
monochromatic complete subgraph on ``n`` vertices — a counter-example
proving ``R(n, n) > k``.

A coloring is stored as per-vertex *red neighbor bitmasks* (Python ints),
so clique counting is mask intersection + popcount — the same
integer-test-and-arithmetic inner loop the paper's C clients ran, and the
loop our op counters meter.

Op counting
-----------
The paper inserted an increment after every integer test/arithmetic
operation, making reported rates conservative (§4). We meter the same
work at bitset granularity: every mask intersection or popcount on a
``k``-bit mask counts as ``k`` integer operations, every scalar
test/update as one. :class:`OpCounter` accumulates these.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterator, Optional

import numpy as np

__all__ = [
    "OpCounter",
    "Coloring",
    "count_mono_cliques",
    "count_mono_cliques_with_edge",
    "RED",
    "BLUE",
]

RED = 0
BLUE = 1


class OpCounter:
    """Accumulates the application's useful-integer-operation count."""

    __slots__ = ("ops",)

    def __init__(self) -> None:
        self.ops = 0

    def add(self, n: int) -> None:
        self.ops += n

    def reset(self) -> int:
        """Return and zero the counter (per reporting interval)."""
        out = self.ops
        self.ops = 0
        return out


class Coloring:
    """A two-coloring of the edges of the complete graph ``K_k``.

    ``red[v]`` is the bitmask of vertices joined to ``v`` by a red edge.
    ``blue[v]`` is its complement (minus the self-loop bit) and is kept
    up to date on every mutation: the clique kernels consume both mask
    lists directly, so deriving blue lazily would rebuild a k-element
    list on every energy-delta probe — the single hottest allocation in
    the heuristics before it was cached here.
    """

    __slots__ = ("k", "red", "blue")

    def __init__(self, k: int, red: Optional[list[int]] = None) -> None:
        if k < 2:
            raise ValueError("need at least 2 vertices")
        self.k = k
        if red is None:
            self.red = [0] * k
        else:
            if len(red) != k:
                raise ValueError("mask list length != k")
            self.red = list(red)
            self._check_symmetric()
        full = (1 << k) - 1
        red_masks = self.red
        self.blue = [full & ~red_masks[v] & ~(1 << v) for v in range(k)]

    def _check_symmetric(self) -> None:
        for v in range(self.k):
            if self.red[v] >> self.k:
                raise ValueError(f"mask of vertex {v} has bits beyond k")
            if (self.red[v] >> v) & 1:
                raise ValueError(f"vertex {v} has a self-loop")
        for u in range(self.k):
            m = self.red[u]
            while m:
                v = (m & -m).bit_length() - 1
                if not (self.red[v] >> u) & 1:
                    raise ValueError(f"asymmetric edge ({u}, {v})")
                m &= m - 1

    # -- construction ---------------------------------------------------------
    @classmethod
    def random(cls, k: int, rng: np.random.Generator) -> "Coloring":
        """Uniformly random coloring."""
        c = cls(k)
        for u in range(k):
            for v in range(u + 1, k):
                if rng.random() < 0.5:
                    c._set_red(u, v)
        return c

    @classmethod
    def from_edges(cls, k: int, red_edges: Iterator[tuple[int, int]]) -> "Coloring":
        c = cls(k)
        for u, v in red_edges:
            if u == v or not (0 <= u < k and 0 <= v < k):
                raise ValueError(f"bad edge ({u}, {v})")
            c._set_red(u, v)
        return c

    def _set_red(self, u: int, v: int) -> None:
        ub, vb = 1 << u, 1 << v
        self.red[u] |= vb
        self.red[v] |= ub
        self.blue[u] &= ~vb
        self.blue[v] &= ~ub

    def _set_blue(self, u: int, v: int) -> None:
        ub, vb = 1 << u, 1 << v
        self.red[u] &= ~vb
        self.red[v] &= ~ub
        self.blue[u] |= vb
        self.blue[v] |= ub

    # -- inspection ------------------------------------------------------------
    def color(self, u: int, v: int) -> int:
        """RED or BLUE for edge (u, v)."""
        if u == v:
            raise ValueError("no self edges in a complete graph coloring")
        return RED if (self.red[u] >> v) & 1 else BLUE

    def blue_mask(self, v: int) -> int:
        return self.blue[v]

    def flip(self, u: int, v: int) -> None:
        """Toggle the color of edge (u, v)."""
        if self.color(u, v) == RED:
            self._set_blue(u, v)
        else:
            self._set_red(u, v)

    def copy(self) -> "Coloring":
        # The masks of a live Coloring are symmetric by construction, so
        # skip __init__'s O(k^2) _check_symmetric revalidation: heuristics
        # copy on every best-so-far improvement.
        c = Coloring.__new__(Coloring)
        c.k = self.k
        c.red = self.red.copy()
        c.blue = self.blue.copy()
        return c

    def edges(self) -> Iterator[tuple[int, int, int]]:
        """Yield (u, v, color) for every edge with u < v."""
        for u in range(self.k):
            for v in range(u + 1, self.k):
                yield u, v, self.color(u, v)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Coloring) and other.k == self.k and other.red == self.red
        )

    def __hash__(self) -> int:
        return hash((self.k, tuple(self.red)))

    # -- serialization -------------------------------------------------------
    def to_hex(self) -> str:
        """Pack the upper-triangle edge colors into a hex string (the wire
        and checkpoint format; lingua-franca payloads are JSON-safe)."""
        bits = 0
        idx = 0
        for u in range(self.k):
            for v in range(u + 1, self.k):
                if (self.red[u] >> v) & 1:
                    bits |= 1 << idx
                idx += 1
        nbytes = (idx + 7) // 8
        return bits.to_bytes(max(nbytes, 1), "little").hex()

    @classmethod
    def from_hex(cls, k: int, text: str) -> "Coloring":
        bits = int.from_bytes(bytes.fromhex(text), "little")
        c = cls(k)
        idx = 0
        for u in range(k):
            for v in range(u + 1, k):
                if (bits >> idx) & 1:
                    c._set_red(u, v)
                idx += 1
        return c

    def __repr__(self) -> str:
        reds = sum(m.bit_count() for m in self.red) // 2
        total = self.k * (self.k - 1) // 2
        return f"<Coloring K_{self.k} red={reds}/{total}>"


#: Bit positions 0..63 as uint64, for unpacking mask words into vertex
#: indices (the vectorized kernels' expansion step).
_BIT_SHIFTS = np.arange(64, dtype=np.uint64)

#: Below this k the pure-Python recursion beats the vectorized kernel
#: (numpy call overhead dominates tiny masks); above it the level
#: expansion wins. Either path returns identical counts and op meters.
_NP_MIN_K = 24


def _expand_bits(sets: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Unpack every set bit of each mask word in ``sets``.

    Returns ``(parent, vertex)`` index arrays: one entry per set bit, in
    (parent, ascending-bit) order — the same visit order as the python
    kernels' lowest-bit-first loops, which is what keeps the vectorized
    counts byte-comparable level by level.
    """
    bits = ((sets[:, None] >> _BIT_SHIFTS[:k]) & np.uint64(1)).astype(bool)
    return np.nonzero(bits)


def _above_masks(k: int) -> np.ndarray:
    """``above[v]`` = mask of vertices strictly greater than v (uint64)."""
    full = (1 << k) - 1
    return np.array([full & ~((1 << (v + 1)) - 1) for v in range(k)],
                    dtype=np.uint64)


def _count_cliques_np(masks: np.ndarray, k: int, n: int) -> tuple[int, int]:
    """Vectorized n-clique count over uint64 neighbor masks.

    Returns ``(count, counted)`` where ``counted`` is exactly the op
    meter the recursive kernel would have charged: the meter depends only
    on how many candidate bits each level visits — the number of cliques
    of each smaller order — and the level expansion computes those sizes
    as a side effect. Requires ``n >= 2`` and ``k <= 63`` (masks must fit
    one machine word); callers gate on that and fall back to the
    recursive kernel otherwise.
    """
    above = _above_masks(k)
    counted = 2 * k * k
    sets = masks & above  # depth-1 candidate sets, one per vertex
    if n == 2:
        counted += k * k
        return int(np.bitwise_count(sets).sum()), counted
    depth = 1
    while depth < n - 2:  # interior levels: 2k per visited bit
        parent, w = _expand_bits(sets, k)
        counted += 2 * k * len(w)
        sets = sets[parent] & masks[w] & above[w]
        depth += 1
    # depth == n - 2: flattened leaf level, 3k per bit + one popcount
    parent, w = _expand_bits(sets, k)
    counted += 3 * k * len(w)
    leaves = sets[parent] & masks[w] & above[w]
    return int(np.bitwise_count(leaves).sum()), counted


def _count_cliques(masks: list[int], k: int, n: int, ops: Optional[OpCounter]) -> int:
    """Count n-cliques in the graph given by neighbor bitmasks.

    Dispatches to the vectorized kernel when the masks fit a machine word
    and the graph is big enough for numpy to pay off; the recursive
    kernel below is the metering reference (tests assert both agree on
    counts *and* ops).
    """
    if _NP_MIN_K <= k <= 63 and n >= 2:
        total, counted = _count_cliques_np(
            np.array(masks, dtype=np.uint64), k, n)
        if ops is not None:
            ops.add(counted)
        return total
    return _count_cliques_py(masks, k, n, ops)


def _count_cliques_py(
    masks: list[int], k: int, n: int, ops: Optional[OpCounter]
) -> int:
    """Reference n-clique count (recursive, per-bit metering)."""
    if n == 1:
        return k
    if n < 1:
        return 0
    counted = 0  # local op meter, flushed once at the end

    def rec(candidates: int, depth: int) -> int:
        nonlocal counted
        if depth == n - 1:
            # Only one more vertex needed: any candidate completes a clique.
            counted += k
            return candidates.bit_count()
        total = 0
        m = candidates
        if depth == n - 2:
            # Flattened leaf level: one popcount per extension instead of
            # a recursive call per bit (metered identically: 2k for the
            # loop step + k for the leaf it replaces).
            while m:
                low = m & -m
                v = low.bit_length() - 1
                m &= m - 1
                counted += 3 * k
                total += (candidates & masks[v] & ~(low - 1) & ~low).bit_count()
            return total
        while m:
            low = m & -m
            v = low.bit_length() - 1
            m &= m - 1
            counted += 2 * k  # mask intersection + bookkeeping
            # Only extend with vertices above v to count each clique once.
            total += rec(candidates & masks[v] & ~(low - 1) & ~low, depth + 1)
        return total

    full = (1 << k) - 1
    total = 0
    for v in range(k):
        counted += 2 * k
        above = full & ~((1 << (v + 1)) - 1)
        total += rec(masks[v] & above, 1)
    if ops is not None:
        ops.add(counted)
    return total


def count_mono_cliques(
    coloring: Coloring, n: int, ops: Optional[OpCounter] = None
) -> int:
    """Number of monochromatic ``K_n`` (both colors) — the search energy.

    Zero means ``coloring`` is a counter-example for ``R(n, n) > k``.
    """
    k = coloring.k
    return (_count_cliques(coloring.red, k, n, ops)
            + _count_cliques(coloring.blue, k, n, ops))


def find_any_mono_clique(
    coloring: Coloring, n: int, ops: Optional[OpCounter] = None,
    start: int = 0,
) -> Optional[tuple[int, ...]]:
    """Return one monochromatic n-clique (bitset search), or None.

    Fast counterpart of :func:`repro.ramsey.verify.find_mono_clique` for
    use inside heuristics (min-conflicts repairs the clique it finds).
    ``start`` rotates the vertex scan so repeated calls don't always
    return the lexicographically first violation.
    """
    k = coloring.k
    counted = 0

    def rec(masks: list[int], chosen: list[int], candidates: int,
            need: int) -> Optional[tuple[int, ...]]:
        nonlocal counted
        if need == 0:
            return tuple(chosen)
        m = candidates
        while m:
            low = m & -m
            v = low.bit_length() - 1
            m &= m - 1
            counted += 2 * k
            found = rec(masks, chosen + [v],
                        candidates & masks[v] & ~(low - 1) & ~low, need - 1)
            if found is not None:
                return found
        return None

    blue = coloring.blue
    full = (1 << k) - 1
    for offset in range(k):
        v = (start + offset) % k
        counted += 2 * k
        for masks in (coloring.red, blue):
            found = rec(masks, [v], masks[v] & full, n - 1)
            if found is not None:
                if ops is not None:
                    ops.add(counted)
                return tuple(sorted(found))
    if ops is not None:
        ops.add(counted)
    return None


def _count_cliques_with_edge_in(
    masks: list[int], k: int, u: int, v: int, n: int,
    ops: Optional[OpCounter],
) -> int:
    """``K_n`` through edge (u, v) in the graph given by ``masks``.

    Mask-level core of :func:`count_mono_cliques_with_edge`, also called
    directly by the heuristics' zero-flip energy-delta path: because no
    mask excludes more than the self-loop bit, ``masks[u] & masks[v]``
    never contains u or v, so the count for the *flipped* edge color can
    be taken from the opposite-color masks without mutating the coloring
    at all. Op metering is identical either way for the same reason.
    """
    common = masks[u] & masks[v]
    counted = 2 * k
    if n == 2:
        if ops is not None:
            ops.add(counted)
        return 1  # the edge itself is the K_2
    # Count (n-2)-cliques inside `common`, in the subgraph induced on it.
    sub = [masks[w] & common for w in range(k)]
    counted += k

    def rec(candidates: int, need: int) -> int:
        nonlocal counted
        if need == 1:
            counted += k
            return candidates.bit_count()
        total = 0
        m = candidates
        if need == 2:
            # Flattened leaf level: one popcount per extension instead of
            # a recursive call per bit (metered identically: 2k for the
            # loop step + k for the leaf it replaces).
            while m:
                low = m & -m
                w = low.bit_length() - 1
                m &= m - 1
                counted += 3 * k
                total += (candidates & sub[w] & ~(low - 1) & ~low).bit_count()
            return total
        while m:
            low = m & -m
            w = low.bit_length() - 1
            m &= m - 1
            counted += 2 * k
            total += rec(candidates & sub[w] & ~(low - 1) & ~low, need - 1)
        return total

    total = rec(common, n - 2)
    if ops is not None:
        ops.add(counted)
    return total


def count_mono_cliques_with_edge(
    coloring: Coloring, u: int, v: int, n: int, ops: Optional[OpCounter] = None
) -> int:
    """Monochromatic ``K_n`` that *contain* edge (u, v).

    Equals the number of ``(n-2)``-cliques in the same-colored common
    neighborhood of u and v — the quantity heuristics use to compute the
    energy delta of flipping one edge in O(neighborhood) instead of
    recounting the whole graph.
    """
    masks = coloring.red if coloring.color(u, v) == RED else coloring.blue
    return _count_cliques_with_edge_in(masks, coloring.k, u, v, n, ops)
