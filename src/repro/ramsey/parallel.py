"""Parallelized search heuristic (§6, delivered).

The paper's future work: "to search for R6, we will need to parallelize
some of the individual heuristics, each of which we will implement as a
computational client ... we will develop ways in which EveryWare can be
used to couple tightly synchronized parallel codes."

This module is that coupling: a **coordinator** runs the tabu search's
decision loop while farming the expensive part of each step — evaluating
the energy delta of many candidate edge flips — to a set of
**evaluators**, one round per move:

1. the coordinator sends every evaluator the current coloring and a
   disjoint slice of candidate edges (``PAR_EVAL``);
2. evaluators compute real, op-counted deltas and return their best
   (``PAR_BEST``);
3. the coordinator applies the globally best non-tabu move and starts
   the next round.

This is a barrier-synchronized parallel code, so it exposes exactly the
open question §2.3 raises: progress is gated by the *slowest* evaluator
each round. Round time-outs are forecast per evaluator (dynamic
benchmarking); stragglers and dead evaluators are tolerated by closing
the round with whatever arrived.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.component import CancelTimer, Component, Effect, LogLine, Send, SetTimer, Stop
from ..core.forecasting.benchmarking import EventTimer, ForecastRegistry, event_tag
from ..core.linguafranca.messages import Message
from .graphs import Coloring, OpCounter, count_mono_cliques, count_mono_cliques_with_edge

__all__ = ["ParallelTabuCoordinator", "ParallelEvaluator", "PAR_EVAL", "PAR_BEST"]

PAR_EVAL = "PAR_EVAL"
PAR_BEST = "PAR_BEST"

T_ROUND = "par:round"


class ParallelEvaluator(Component):
    """Evaluates candidate edge flips on the current coloring.

    With a compute lane the evaluation round runs as an
    :class:`repro.parallel.EvalRound` kernel task — synchronously by
    default, or (``defer=True``) submitted at message delivery and
    harvested on a zero-delay timer, which lets every evaluator hit by
    the same barrier round get its task in flight before the first
    result is consumed. Either way the reply carries the same bytes the
    inline loop produces: kernels are bit-identical and op-metered.
    """

    #: Timer-key prefix for deferred lane completions.
    T_TASK = "par:task:"

    def __init__(self, name: str, lane=None, defer: bool = False) -> None:
        super().__init__(name)
        self.ops = OpCounter()
        self.rounds_served = 0
        self.lane = lane
        self.defer = bool(defer) and lane is not None
        self._deferred: dict[int, tuple] = {}  # ticket -> (sender, round)

    def _evaluate_inline(
        self, coloring: Coloring, edges: list, n: int
    ) -> tuple[Optional[tuple[int, int]], int]:
        best_edge: Optional[tuple[int, int]] = None
        best_delta = 0
        for u, v in edges:
            before = count_mono_cliques_with_edge(coloring, u, v, n, self.ops)
            coloring.flip(u, v)
            after = count_mono_cliques_with_edge(coloring, u, v, n, self.ops)
            coloring.flip(u, v)
            delta = after - before
            if best_edge is None or delta < best_delta:
                best_edge, best_delta = (u, v), delta
        return best_edge, best_delta

    def _reply(self, sender: str, round_no, best_edge, best_delta) -> list[Effect]:
        reply_body = {
            "round": round_no,
            "edge": list(best_edge) if best_edge else None,
            "delta": best_delta,
            "ops": self.ops.reset(),
        }
        return [Send(sender, Message(
            mtype=PAR_BEST, sender=self.contact, body=reply_body))]

    def on_message(self, message: Message, now: float) -> list[Effect]:
        if message.mtype != PAR_EVAL:
            return []
        body = message.body
        try:
            k = int(body["k"])
            n = int(body["n"])
            coloring = Coloring.from_hex(k, body["coloring"])
            edges = [(int(u), int(v)) for u, v in body["edges"]]
        except (KeyError, TypeError, ValueError):
            return []
        self.rounds_served += 1
        if self.lane is None:
            best_edge, best_delta = self._evaluate_inline(coloring, edges, n)
            return self._reply(message.sender, body.get("round"),
                               best_edge, best_delta)
        from ..parallel import EvalRound

        task = EvalRound(k, n, coloring.red, edges)
        if self.defer:
            ticket = self.lane.submit(task)
            self._deferred[ticket] = (message.sender, body.get("round"))
            return [SetTimer(f"{self.T_TASK}{ticket}", 0.0)]
        outcome = self.lane.run(task)
        self.ops.add(outcome.ops)
        return self._reply(message.sender, body.get("round"),
                           outcome.best_move, outcome.best_delta)

    def on_timer(self, key: str, now: float) -> list[Effect]:
        if not key.startswith(self.T_TASK):
            return []
        ticket = int(key[len(self.T_TASK):])
        pending = self._deferred.pop(ticket, None)
        if pending is None:
            return []
        sender, round_no = pending
        outcome = self.lane.result(ticket)
        if outcome is None:  # skipped/crashed past all fallbacks
            return []
        self.ops.add(outcome.ops)
        return self._reply(sender, round_no, outcome.best_move,
                           outcome.best_delta)


class ParallelTabuCoordinator(Component):
    """Distributed steepest-descent tabu over edge flips."""

    def __init__(
        self,
        name: str,
        k: int,
        n: int,
        evaluators: list[str],
        candidates_per_eval: int = 12,
        tenure: int = 32,
        seed: int = 0,
        max_rounds: Optional[int] = None,
        default_timeout: float = 15.0,
    ) -> None:
        super().__init__(name)
        if not evaluators:
            raise ValueError("need at least one evaluator")
        self.k = k
        self.n = n
        self.evaluators = list(evaluators)
        self.candidates_per_eval = candidates_per_eval
        self.tenure = tenure
        self.max_rounds = max_rounds
        self.default_timeout = default_timeout
        self._rng = np.random.default_rng(seed)
        self.ops = OpCounter()
        self.coloring = Coloring.random(k, self._rng)
        self.energy = count_mono_cliques(self.coloring, n, self.ops)
        self.best_energy = self.energy
        self.best_coloring = self.coloring.copy()
        self._tabu: dict[tuple[int, int], int] = {}
        self.round = 0
        self._responses: dict[str, dict] = {}
        self.rounds_closed = 0
        self.straggler_rounds = 0
        self.moves_applied = 0
        self.remote_ops = 0
        self.forecasts = ForecastRegistry()
        self.timer = EventTimer(self.forecasts)
        self.stopped = False
        #: Simulation time at which the search stopped (found or budget).
        self.finished_at: Optional[float] = None

    @property
    def found(self) -> bool:
        return self.best_energy == 0

    # -- rounds ------------------------------------------------------------
    def on_start(self, now: float) -> list[Effect]:
        return self._start_round(now)

    def _random_edges(self, count: int) -> list[tuple[int, int]]:
        edges = set()
        attempts = 0
        while len(edges) < count and attempts < count * 10:
            attempts += 1
            u = int(self._rng.integers(self.k))
            v = int(self._rng.integers(self.k - 1))
            if v >= u:
                v += 1
            edges.add((min(u, v), max(u, v)))
        return sorted(edges)

    def _round_timeout(self) -> float:
        """Barrier time-out: the slowest evaluator's forecast response."""
        timeouts = [
            self.forecasts.timeout(
                event_tag(ev, PAR_EVAL), multiplier=4.0,
                default=self.default_timeout, floor=0.5, ceiling=120.0)
            for ev in self.evaluators
        ]
        return max(timeouts)

    def _start_round(self, now: float) -> list[Effect]:
        self.round += 1
        self._responses = {}
        hexstr = self.coloring.to_hex()
        all_edges = self._random_edges(
            self.candidates_per_eval * len(self.evaluators))
        effects: list[Effect] = []
        per = max(len(all_edges) // len(self.evaluators), 1)
        for i, evaluator in enumerate(self.evaluators):
            chunk = all_edges[i * per : (i + 1) * per]
            if not chunk:
                continue
            self.timer.abandon(event_tag(evaluator, PAR_EVAL))
            self.timer.begin(event_tag(evaluator, PAR_EVAL), now)
            effects.append(Send(evaluator, Message(
                mtype=PAR_EVAL, sender=self.contact, body={
                    "round": self.round,
                    "k": self.k,
                    "n": self.n,
                    "coloring": hexstr,
                    "edges": [list(e) for e in chunk],
                })))
        effects.append(SetTimer(T_ROUND, self._round_timeout()))
        return effects

    def on_message(self, message: Message, now: float) -> list[Effect]:
        if message.mtype != PAR_BEST or self.stopped:
            return []
        if message.body.get("round") != self.round:
            return []  # straggler from a closed round
        evaluator = message.sender
        self.timer.end(event_tag(evaluator, PAR_EVAL), now)
        self._responses[evaluator] = message.body
        self.remote_ops += int(message.body.get("ops", 0))
        if len(self._responses) == len(self.evaluators):
            return [CancelTimer(T_ROUND), *self._close_round(now)]
        return []

    def on_timer(self, key: str, now: float) -> list[Effect]:
        if key != T_ROUND or self.stopped:
            return []
        if len(self._responses) < len(self.evaluators):
            self.straggler_rounds += 1
        return self._close_round(now)

    def _close_round(self, now: float) -> list[Effect]:
        self.rounds_closed += 1
        best_edge: Optional[tuple[int, int]] = None
        best_delta = 0
        for body in self._responses.values():
            edge = body.get("edge")
            if edge is None:
                continue
            u, v = int(edge[0]), int(edge[1])
            tabu_until = self._tabu.get((u, v), -1)
            delta = int(body.get("delta", 0))
            aspiration = self.energy + delta < self.best_energy
            if tabu_until >= self.round and not aspiration:
                continue
            if best_edge is None or delta < best_delta:
                best_edge, best_delta = (u, v), delta
        if best_edge is not None:
            u, v = best_edge
            # Verify the remote delta locally before applying: evaluators
            # are untrusted guests on shared machines (the persistent-state
            # sanity-check principle applied to moves).
            before = count_mono_cliques_with_edge(self.coloring, u, v, self.n, self.ops)
            self.coloring.flip(u, v)
            after = count_mono_cliques_with_edge(self.coloring, u, v, self.n, self.ops)
            self.energy += after - before
            self._tabu[best_edge] = self.round + self.tenure
            self.moves_applied += 1
            if self.energy < self.best_energy:
                self.best_energy = self.energy
                self.best_coloring = self.coloring.copy()
        effects: list[Effect] = []
        if self.found:
            self.stopped = True
            self.finished_at = now
            effects.append(LogLine(
                f"parallel search found a counter-example in "
                f"{self.rounds_closed} rounds"))
            effects.append(Stop("found"))
            return effects
        if self.max_rounds is not None and self.rounds_closed >= self.max_rounds:
            self.stopped = True
            self.finished_at = now
            effects.append(Stop("budget"))
            return effects
        effects.extend(self._start_round(now))
        return effects
