"""The Ramsey computational client (the "A" boxes in Figure 1).

A client:

* obtains work units from a scheduling server (``SCH_HELLO`` →
  ``SCH_WORK``) and reports progress and rate periodically
  (``SCH_REPORT`` → ``SCH_DIRECTIVE``), switching schedulers when its
  current one goes silent;
* runs its heuristic incrementally between messages through a pluggable
  :class:`ComputeEngine` — the *real* engine executes the actual
  op-counted search kernels, the *model* engine burns simulated host
  cycles at the host's effective speed (SC98-scale runs);
* synchronizes its best-so-far result through the Gossip service
  (volatile-but-replicated state, §3.1.2) with a "lower energy wins"
  comparator;
* checkpoints genuine counter-examples to the persistent state manager
  (persistent state) where they are independently verified; and
* forwards its performance records to a logging server before they are
  discarded (§3.1.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol

import numpy as np

from ..core.component import Component, Effect, LogLine, Send, SetTimer
from ..core.gossip.agent import GossipAgent
from ..core.policy import RetryPolicy
from ..core.gossip.state import StateRecord, StateStore
from ..core.linguafranca.messages import Message
from ..core.services.logging import LOG_APPEND
from ..core.services.persistent import PST_DENIED, PST_STORE, PST_STORE_OK
from ..core.services.scheduler import (
    SCH_ACK,
    SCH_DIRECTIVE,
    SCH_HELLO,
    SCH_REPORT,
    SCH_WORK,
)
from ..core.services.kinds import kind_of
from .graphs import OpCounter
from .heuristics import SearchSnapshot, TabuSearch, make_search
from .tasks import validate_unit

__all__ = [
    "RamseyClient",
    "ComputeEngine",
    "RealEngine",
    "ModelEngine",
    "EngineStatus",
    "ramsey_comparator",
    "RAMSEY_BEST",
]

RAMSEY_BEST = "RAMSEY_BEST"

T_WORK = "cli:work"
T_REPORT = "cli:report"
T_HELLO = "cli:hello"

# Labels on the client's reliable sends (routed in on_send_failed).
L_HELLO = "cli:hello"
L_CHECKPOINT = "cli:checkpoint"


def ramsey_comparator(a: StateRecord, b: StateRecord) -> int:
    """Freshness for RAMSEY_BEST records: a *better* search result wins
    regardless of recency — bigger problem solved first, then lower
    energy, then more ops invested; stamps only break exact ties."""
    ka = (a.data.get("k", 0), -a.data.get("energy", float("inf")),
          a.data.get("ops", 0.0), a.stamp, a.seq, a.origin)
    kb = (b.data.get("k", 0), -b.data.get("energy", float("inf")),
          b.data.get("ops", 0.0), b.stamp, b.seq, b.origin)
    return (ka > kb) - (ka < kb)


@dataclass
class EngineStatus:
    """Outcome of one compute slice."""

    ops_done: float
    energy: float
    best_energy: float
    found: Optional[dict] = None  # counter-example object, when newly found
    done: bool = False  # unit budget exhausted


class ComputeEngine(Protocol):
    """What the client drives between messages."""

    def load(self, unit: dict, rng: np.random.Generator) -> None: ...

    def advance(self, ops_budget: float) -> EngineStatus: ...

    def progress(self) -> dict: ...


class RealEngine:
    """Runs the actual op-counted heuristic kernels.

    Used by the runnable examples and the Java/throughput benchmarks; too
    slow (by design — it does the real math) for 300-host 12-hour
    simulations.

    With a compute ``lane`` each tabu advance is offloaded as one
    :class:`repro.parallel.StepBatch` — the search state migrates to a
    pool worker, steps there through the vectorized kernels, and comes
    back bit-identical to having stepped inline (the batch loop checks
    the same ops/steps/found boundaries between steps that the inline
    loop does). Non-tabu heuristics always step inline.
    """

    def __init__(self, max_steps_per_advance: int = 2000, lane=None) -> None:
        self.max_steps_per_advance = max_steps_per_advance
        self.lane = lane
        self.search = None
        self.unit: Optional[dict] = None
        self.ops = OpCounter()
        self._reported_found = False

    def load(self, unit: dict, rng: np.random.Generator) -> None:
        validate_unit(unit)
        self.unit = unit
        self.ops = OpCounter()
        self._reported_found = False
        self.search = make_search(
            unit["heuristic"], unit["k"], unit["n"], rng, ops=self.ops
        )
        resume = unit.get("resume")
        if isinstance(resume, dict) and "coloring" in resume:
            try:
                self.search.restore(SearchSnapshot.from_dict(resume))
            except (KeyError, ValueError, TypeError):
                pass

    def advance(self, ops_budget: float) -> EngineStatus:
        assert self.search is not None and self.unit is not None
        start_ops = self.ops.ops
        if self.lane is not None and isinstance(self.search, TabuSearch):
            from ..parallel import StepBatch

            outcome = self.lane.run(StepBatch(
                self.search.export_state(),
                max_steps=self.max_steps_per_advance,
                ops_budget=ops_budget))
            self.search = TabuSearch.from_state(outcome.state, ops=self.ops)
            self.ops.add(outcome.ops)
        else:
            steps = 0
            while (
                self.ops.ops - start_ops < ops_budget
                and steps < self.max_steps_per_advance
                and not self.search.found
            ):
                self.search.step()
                steps += 1
        done_ops = self.ops.ops - start_ops
        found = None
        if self.search.found and not self._reported_found:
            self._reported_found = True
            found = {
                "k": self.unit["k"],
                "n": self.unit["n"],
                "coloring": self.search.snapshot().best_coloring,
            }
        exhausted = self.ops.ops >= self.unit["ops_budget"] or self.search.found
        return EngineStatus(
            ops_done=float(done_ops),
            energy=float(self.search.energy),
            best_energy=float(self.search.best_energy),
            found=found,
            done=exhausted,
        )

    def progress(self) -> dict:
        assert self.search is not None
        return self.search.snapshot().to_dict()

    def apply_params(self, params: dict) -> bool:
        """Scheduler control directives (§3.1.1): algorithm-specific
        parameter pushes. Currently: ``reheat`` for annealing."""
        from .heuristics import Annealing

        if params.get("reheat") and isinstance(self.search, Annealing):
            self.search.temperature = self.search.t_start
            return True
        return False


class ModelEngine:
    """Synthetic search progress for SC98-scale simulation.

    Burns exactly the ops the host delivers; energy follows a calibrated
    decay toward a floor (for the paper's k=43, n=5 target the floor is
    positive: SC98 found no new bound, and neither does the model). The
    shape — fast early descent, long stubborn tail — matches what the
    real kernels produce on small instances.
    """

    def __init__(self, energy0: float = 5000.0, floor: float = 3.0,
                 decay_ops: float = 5e10) -> None:
        self.energy0 = energy0
        self.floor = floor
        self.decay_ops = decay_ops
        self.unit: Optional[dict] = None
        self.total_ops = 0.0
        self.energy = energy0
        self.best_energy = energy0
        self._rng: Optional[np.random.Generator] = None

    def load(self, unit: dict, rng: np.random.Generator) -> None:
        validate_unit(unit)
        self.unit = unit
        self._rng = rng
        resume = unit.get("resume")
        self.total_ops = float(resume.get("ops", 0.0)) if isinstance(resume, dict) else 0.0
        self._recompute()
        self.best_energy = self.energy

    def _recompute(self) -> None:
        import math

        decayed = (self.energy0 - self.floor) * math.exp(-self.total_ops / self.decay_ops)
        noise = 1.0
        if self._rng is not None:
            noise = 1.0 + 0.05 * float(self._rng.standard_normal())
        self.energy = max(self.floor, self.floor + decayed * max(noise, 0.0))

    def advance(self, ops_budget: float) -> EngineStatus:
        assert self.unit is not None
        self.total_ops += max(ops_budget, 0.0)
        self._recompute()
        self.best_energy = min(self.best_energy, self.energy)
        done = self.total_ops >= self.unit["ops_budget"]
        return EngineStatus(
            ops_done=max(ops_budget, 0.0),
            energy=self.energy,
            best_energy=self.best_energy,
            found=None,
            done=done,
        )

    def progress(self) -> dict:
        return {"ops": self.total_ops, "best_energy": self.best_energy}


class RamseyClient(Component):
    """One computational client process."""

    def __init__(
        self,
        name: str,
        schedulers: list[str],
        engine: ComputeEngine,
        infra: str = "unix",
        loggers: Optional[list[str]] = None,
        persistent: Optional[str] = None,
        gossip_well_known: Optional[list[str]] = None,
        work_period: float = 30.0,
        report_period: float = 60.0,
        hello_retry: float = 20.0,
        sched_dead_factor: float = 3.0,
        seed: int = 0,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        super().__init__(name)
        if not schedulers:
            raise ValueError("client needs at least one scheduler contact")
        self.schedulers = list(schedulers)
        self.engine = engine
        self.infra = infra
        self.loggers = list(loggers or [])
        self.persistent = persistent
        self.gossip_well_known = list(gossip_well_known or [])
        self.work_period = work_period
        self.report_period = report_period
        self.hello_retry = hello_retry
        self.sched_dead_factor = sched_dead_factor
        self.seed = seed
        #: Retransmission for hellos and checkpoints (driver-owned loop;
        #: the client only decides what a give-up means).
        self.retry = retry or RetryPolicy(max_attempts=3)
        self._sched_idx = 0
        self.unit: Optional[dict] = None
        self.store: Optional[StateStore] = None
        self.agent: Optional[GossipAgent] = None
        self._rng = np.random.default_rng(seed)
        self._last_work_mark = 0.0
        self._interval_ops = 0.0
        self._total_ops = 0.0
        self._last_directive = 0.0
        self._unit_done = False
        self.counter_examples_found = 0
        self.checkpoint_acks = 0
        self.checkpoint_denials = 0
        self.checkpoint_give_ups = 0
        #: Site label for per-site delivered-vs-available accounting
        #: (DESIGN §14); the live topology assigns it via node options.
        self.site = ""

    # -- helpers ------------------------------------------------------------
    @property
    def scheduler(self) -> str:
        return self.schedulers[self._sched_idx % len(self.schedulers)]

    def _rotate_scheduler(self) -> None:
        self._sched_idx += 1

    def _hello(self) -> list[Effect]:
        return [Send(self.scheduler, Message(
            mtype=SCH_HELLO, sender=self.contact, body={"infra": self.infra}),
            retry=self.retry, label=L_HELLO)]

    def _checkpoint(self, found: dict) -> list[Effect]:
        assert self.persistent is not None
        key = f"ramsey/r{found['n']}/k{found['k']}"
        return [Send(self.persistent, Message(
            mtype=PST_STORE, sender=self.contact,
            body={"key": key, "object": found}),
            retry=self.retry, label=L_CHECKPOINT)]

    # -- lifecycle ------------------------------------------------------------
    def on_start(self, now: float) -> list[Effect]:
        effects: list[Effect] = []
        if self.gossip_well_known:
            self.store = StateStore(self.contact)
            self.store.register(RAMSEY_BEST, comparator=ramsey_comparator)
            self.agent = GossipAgent(self.store, self.gossip_well_known,
                                     retry=self.retry)
            effects.extend(self.agent.on_start(now, self.contact))
        self._last_work_mark = now
        self._last_directive = now
        effects.extend(self._hello())
        effects.append(SetTimer(T_WORK, self.work_period))
        effects.append(SetTimer(T_REPORT, self.report_period))
        effects.append(SetTimer(T_HELLO, self.hello_retry))
        return effects

    # -- messages ------------------------------------------------------------
    def on_message(self, message: Message, now: float) -> list[Effect]:
        if self.agent is not None and GossipAgent.handles(message.mtype):
            return self.agent.on_message(message, now, self.contact)
        if message.mtype == SCH_WORK:
            self._last_directive = now
            # Acknowledge the assignment unconditionally — including
            # duplicates and mid-unit deliveries. The scheduler sends
            # unit-carrying assignments reliably and requeues the unit if
            # the ACK never arrives; a silent client would make it clone
            # work the client is actually running.
            ack = self._ack(message)
            if self.unit is not None and not self._unit_done:
                # Already mid-unit (e.g. restored from a checkpoint, or a
                # duplicate reply): keep the work in hand, don't discard it.
                return ack
            return ack + self._take_unit(message.body.get("unit"), now)
        if message.mtype == SCH_DIRECTIVE:
            self._last_directive = now
            ack = self._ack(message)
            action = message.body.get("action")
            if action in ("new_work", "migrate"):
                return ack + self._take_unit(message.body.get("unit"), now)
            params = message.body.get("params")
            if isinstance(params, dict) and hasattr(self.engine, "apply_params"):
                # Algorithm-aware control directive (§3.1.1): the scheduler
                # tunes the running heuristic (e.g. tells a stalled
                # annealer to reheat).
                if self.engine.apply_params(params):
                    return ack + [LogLine(f"applied scheduler params {params}")]
            return ack
        if message.mtype == PST_STORE_OK:
            self.checkpoint_acks += 1
            return []
        if message.mtype == PST_DENIED:
            self.checkpoint_denials += 1
            return [LogLine(
                f"persistent store denied: {message.body.get('reason')}",
                level="warning")]
        return []

    def _ack(self, message: Message) -> list[Effect]:
        """Reply ``SCH_ACK`` to a correlated (reliable) assignment."""
        if message.req_id is None:
            return []
        return [Send(message.sender, message.reply(
            SCH_ACK, sender=self.contact,
            body={"unit_id": (message.body.get("unit") or {}).get("id")}))]

    def _take_unit(self, unit: Optional[dict], now: float) -> list[Effect]:
        if unit is None:
            self.unit = None
            return []
        try:
            self.engine.load(unit, np.random.default_rng(
                (self.seed, int(unit.get("seed", 0)))))
        except (ValueError, KeyError) as exc:
            self.unit = None
            return [LogLine(f"rejected bad unit: {exc}", level="warning")]
        self.unit = unit
        self._unit_done = False
        self._last_work_mark = now
        tracer = self.telemetry.tracer
        if tracer.enabled and unit.get("trace"):
            # Join the job's end-to-end trace: the gateway's ingress
            # context rides inside the unit dict, so this incarnation's
            # work links back to the original POST /jobs.
            tracer.instant("job accept", now, component=self.name,
                           parent=tuple(unit["trace"]),
                           args={"unit_id": unit.get("id")})
        return []

    # -- timers ------------------------------------------------------------
    def on_timer(self, key: str, now: float) -> list[Effect]:
        if self.agent is not None and GossipAgent.handles_timer(key):
            return self.agent.on_timer(key, now, self.contact)
        if key == T_WORK:
            return self._work_slice(now) + [SetTimer(T_WORK, self.work_period)]
        if key == T_REPORT:
            return self._report(now) + [SetTimer(T_REPORT, self.report_period)]
        if key == T_HELLO:
            effects: list[Effect] = [SetTimer(T_HELLO, self.hello_retry)]
            silent = now - self._last_directive > self.sched_dead_factor * self.report_period
            if silent:
                # Current scheduler presumed dead: switch (the Condor lesson,
                # §5.4: clients must find a viable scheduler on their own).
                self._rotate_scheduler()
                self._last_directive = now
                effects.extend(self._hello())
                effects.append(LogLine(f"scheduler silent; trying {self.scheduler}"))
            elif self.unit is None:
                effects.extend(self._hello())
            return effects
        return []

    def on_send_failed(self, send: Send, now: float) -> list[Effect]:
        if self.agent is not None and GossipAgent.handles_fail(send.label):
            return self.agent.on_send_failed(send, now, self.contact)
        if send.label == L_HELLO:
            # Scheduler unreachable through the whole retry policy:
            # rotate immediately instead of waiting out the T_HELLO
            # silence watchdog (the Condor lesson, §5.4).
            self._rotate_scheduler()
            self._last_directive = now
            return [LogLine(f"scheduler {send.dst} unreachable; "
                            f"trying {self.scheduler}"),
                    *self._hello()]
        if send.label == L_CHECKPOINT:
            # A counter-example must never be lost to a transient outage
            # of the persistent state manager: keep resubmitting (the
            # store is idempotent per key).
            self.checkpoint_give_ups += 1
            return [LogLine("persistent store unreachable; "
                            "re-sending checkpoint", level="warning"),
                    Send(send.dst, send.message, retry=self.retry,
                         label=L_CHECKPOINT)]
        return []

    def _work_slice(self, now: float) -> list[Effect]:
        elapsed = now - self._last_work_mark
        self._last_work_mark = now
        if self.unit is None or self._unit_done or elapsed <= 0:
            return []
        assert self.runtime is not None
        ops_budget = self.runtime.speed() * elapsed
        tracer = self.telemetry.tracer
        work_span = None
        if tracer.enabled and self.unit.get("trace"):
            work_span = tracer.begin(
                "job work", component=self.name,
                parent=tuple(self.unit["trace"]), start=now, mtype="work")
        status = self.engine.advance(ops_budget)
        if work_span is not None:
            work_span.args["unit_id"] = self.unit.get("id")
            work_span.args["ops"] = float(status.ops_done)
            tracer.finish(work_span, self.runtime.now())
            if status.done:
                tracer.instant("job complete", self.runtime.now(),
                               component=self.name,
                               parent=tuple(self.unit["trace"]),
                               args={"unit_id": self.unit.get("id")})
        self._interval_ops += status.ops_done
        self._total_ops += status.ops_done
        effects: list[Effect] = []
        # Best-so-far gossip and counter-example checkpointing are
        # Ramsey-specific; other app kinds run through this same slice
        # loop but report results through the work queue alone.
        if self.store is not None and kind_of(self.unit) == "ramsey":
            best = self.store.get_data(RAMSEY_BEST)
            mine = {
                "k": self.unit["k"],
                "n": self.unit["n"],
                "energy": status.best_energy,
                "ops": self._total_ops,
                "origin": self.contact,
            }
            rec = StateRecord(RAMSEY_BEST, mine, now, self.contact, 0)
            cur = self.store.get(RAMSEY_BEST)
            if cur is None or ramsey_comparator(rec, cur) > 0:
                self.store.set_local(RAMSEY_BEST, mine, now)
        if status.found is not None:
            self.counter_examples_found += 1
            effects.append(LogLine(
                f"counter-example found for R({status.found['n']}) on "
                f"k={status.found['k']}"))
            if self.persistent is not None:
                effects.extend(self._checkpoint(status.found))
            if self.agent is not None and self.store is not None:
                effects.extend(self.agent.push(self.contact))
        if status.done:
            self._unit_done = True
        return effects

    def _report(self, now: float) -> list[Effect]:
        rate = self._interval_ops / self.report_period if self.report_period > 0 else 0.0
        effects: list[Effect] = []
        body = {
            "unit_id": self.unit["id"] if self.unit else None,
            "rate": rate,
            "ops": self._interval_ops,
            "infra": self.infra,
            "done": self._unit_done,
            "progress": self.engine.progress() if self.unit else {},
        }
        if self._unit_done and self.unit is not None:
            # Engines that mint a structured result (explore evaluations)
            # ship it verbatim; the classic engines report progress and
            # the getattr misses, keeping their reports byte-identical.
            produce = getattr(self.engine, "result", None)
            result = produce() if callable(produce) else None
            body["result"] = (result if result is not None
                              else {"progress": self.engine.progress()})
        effects.append(Send(self.scheduler, Message(
            mtype=SCH_REPORT, sender=self.contact, body=body)))
        # Forward the performance record before discarding it (§3.1.3).
        perf = {"k": "perf", "d": {
            "rate": rate, "ops": self._interval_ops, "infra": self.infra,
            "host": self.runtime.host_name() if self.runtime else "?",
        }}
        for logger in self.loggers:
            effects.append(Send(logger, Message(
                mtype=LOG_APPEND, sender=self.contact, body={"records": [perf]})))
        self._interval_ops = 0.0
        return effects
