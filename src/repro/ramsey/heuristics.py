"""Counter-example search heuristics (§3).

"We must use heuristic techniques to control the search process", since
exhaustive enumeration of the 2^903 colorings of K_43 is infeasible. The
application's heuristics perform local search in the space of colorings,
minimizing the *energy* — the number of monochromatic K_n — until it
reaches zero (a counter-example).

Three heuristics are provided, all incremental (one-edge-flip moves whose
energy delta is computed from the flipped edge's neighborhood only) and
all *sliceable*: clients call :meth:`step` in bounded batches so that
computation interleaves with EveryWare messaging, exactly as the paper's
clients interleaved work with scheduler/Gossip traffic.

* :class:`TabuSearch` — steepest-descent over a sampled candidate set
  with a tabu list and aspiration, plus random-restart on stall.
* :class:`Annealing` — Metropolis accept/reject with geometric cooling
  and reheat on stall.
* :class:`MinConflicts` — violation-directed repair: locate one
  monochromatic clique and flip its best edge (noisy greedy).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from .graphs import (
    RED,
    Coloring,
    OpCounter,
    _count_cliques_with_edge_in,
    count_mono_cliques,
    find_any_mono_clique,
)

__all__ = ["TabuSearch", "Annealing", "MinConflicts", "SearchSnapshot",
           "make_search"]


def _coloring_from_red(k: int, red: list[int]) -> Coloring:
    """Rebuild a Coloring from trusted red masks without the O(k^2)
    symmetry revalidation (state transfer moves live, known-good masks)."""
    c = Coloring.__new__(Coloring)
    c.k = k
    c.red = [int(m) for m in red]
    full = (1 << k) - 1
    c.blue = [full & ~c.red[v] & ~(1 << v) for v in range(k)]
    return c


@dataclass
class SearchSnapshot:
    """Serializable search progress (work-unit migration / checkpointing)."""

    k: int
    n: int
    coloring: str  # hex
    energy: int
    best_coloring: str
    best_energy: int
    steps: int

    def to_dict(self) -> dict:
        return {
            "k": self.k,
            "n": self.n,
            "coloring": self.coloring,
            "energy": self.energy,
            "best_coloring": self.best_coloring,
            "best_energy": self.best_energy,
            "steps": self.steps,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "SearchSnapshot":
        return cls(
            k=int(d["k"]),
            n=int(d["n"]),
            coloring=str(d["coloring"]),
            energy=int(d["energy"]),
            best_coloring=str(d["best_coloring"]),
            best_energy=int(d["best_energy"]),
            steps=int(d["steps"]),
        )


class _EdgeFlipSearch:
    """Shared machinery: incremental energy accounting over edge flips."""

    def __init__(
        self,
        k: int,
        n: int,
        rng: np.random.Generator,
        ops: Optional[OpCounter] = None,
        coloring: Optional[Coloring] = None,
    ) -> None:
        if n < 3:
            raise ValueError("Ramsey search needs n >= 3")
        if k < n:
            raise ValueError("k must be at least n")
        self.k = k
        self.n = n
        self.rng = rng
        self.ops = ops if ops is not None else OpCounter()
        self.coloring = coloring.copy() if coloring is not None else Coloring.random(k, rng)
        self.energy = count_mono_cliques(self.coloring, n, self.ops)
        self.best_energy = self.energy
        self.best_coloring = self.coloring.copy()
        self.steps = 0
        self.restarts = 0

    @property
    def found(self) -> bool:
        """True once a counter-example has been seen."""
        return self.best_energy == 0

    def _random_edge(self) -> tuple[int, int]:
        u = int(self.rng.integers(self.k))
        v = int(self.rng.integers(self.k - 1))
        if v >= u:
            v += 1
        return (u, v) if u < v else (v, u)

    def _flip_delta(self, u: int, v: int) -> int:
        """Energy change if edge (u, v) were flipped.

        Flipping (u, v) only changes bit v of the u-row masks and bit u of
        the v-row masks, and neither bit can appear in the common
        neighborhood ``masks[u] & masks[v]`` — so the clique count through
        the flipped edge equals the count through (u, v) in the
        *opposite*-color masks of the current state. Both counts (and
        their op metering) are therefore taken without mutating the
        coloring, where the original implementation flipped the edge
        twice and paid two full mask-row updates per probed candidate.
        """
        c = self.coloring
        if c.color(u, v) == RED:
            same, other = c.red, c.blue
        else:
            same, other = c.blue, c.red
        before = _count_cliques_with_edge_in(same, c.k, u, v, self.n, self.ops)
        after = _count_cliques_with_edge_in(other, c.k, u, v, self.n, self.ops)
        return after - before

    def _apply_flip(self, u: int, v: int, delta: int) -> None:
        self.coloring.flip(u, v)
        self.energy += delta
        if self.energy < self.best_energy:
            self.best_energy = self.energy
            self.best_coloring = self.coloring.copy()

    def _perturb(self, fraction: float = 0.1) -> None:
        """Random restart: kick a fraction of edges from the best state."""
        self.restarts += 1
        self.coloring = self.best_coloring.copy()
        n_edges = self.k * (self.k - 1) // 2
        kicks = max(1, int(fraction * n_edges))
        for _ in range(kicks):
            u, v = self._random_edge()
            self.coloring.flip(u, v)
        self.energy = count_mono_cliques(self.coloring, self.n, self.ops)
        if self.energy < self.best_energy:
            self.best_energy = self.energy
            self.best_coloring = self.coloring.copy()

    # -- batching & checkpointing ------------------------------------------
    def step(self) -> None:
        raise NotImplementedError

    def run(self, max_steps: int, target: int = 0) -> int:
        """Step until energy <= target or the budget runs out; returns the
        number of steps taken."""
        taken = 0
        while taken < max_steps and self.best_energy > target:
            self.step()
            taken += 1
        return taken

    def snapshot(self) -> SearchSnapshot:
        return SearchSnapshot(
            k=self.k,
            n=self.n,
            coloring=self.coloring.to_hex(),
            energy=self.energy,
            best_coloring=self.best_coloring.to_hex(),
            best_energy=self.best_energy,
            steps=self.steps,
        )

    def restore(self, snap: SearchSnapshot) -> None:
        """Resume from a snapshot (e.g. a migrated work unit)."""
        if (snap.k, snap.n) != (self.k, self.n):
            raise ValueError("snapshot is for a different problem size")
        self.coloring = Coloring.from_hex(snap.k, snap.coloring)
        self.best_coloring = Coloring.from_hex(snap.k, snap.best_coloring)
        # Recount rather than trust the snapshot: snapshots cross the wire.
        self.energy = count_mono_cliques(self.coloring, self.n, self.ops)
        self.best_energy = count_mono_cliques(self.best_coloring, self.n, self.ops)
        self.steps = snap.steps


class TabuSearch(_EdgeFlipSearch):
    """Sampled steepest descent with a tabu list and aspiration."""

    def __init__(
        self,
        k: int,
        n: int,
        rng: np.random.Generator,
        ops: Optional[OpCounter] = None,
        coloring: Optional[Coloring] = None,
        candidates: int = 24,
        tenure: int = 32,
        stall_limit: int = 400,
    ) -> None:
        super().__init__(k, n, rng, ops, coloring)
        self.candidates = candidates
        self.tenure = tenure
        self.stall_limit = stall_limit
        self._tabu: dict[tuple[int, int], int] = {}
        self._stall = 0

    def step(self) -> None:
        self.steps += 1
        best_move: Optional[tuple[int, int]] = None
        best_delta = 0
        seen: set[tuple[int, int]] = set()
        for _ in range(self.candidates):
            edge = self._random_edge()
            if edge in seen:
                continue
            seen.add(edge)
            delta = self._flip_delta(*edge)
            tabu_until = self._tabu.get(edge, -1)
            aspiration = self.energy + delta < self.best_energy
            if tabu_until >= self.steps and not aspiration:
                continue
            if best_move is None or delta < best_delta:
                best_move, best_delta = edge, delta
        if best_move is None:
            self._stall += 1
        else:
            self._apply_flip(*best_move, best_delta)
            self._tabu[best_move] = self.steps + self.tenure
            self._stall = 0 if best_delta < 0 else self._stall + 1
        if self._stall >= self.stall_limit:
            self._perturb()
            self._tabu.clear()
            self._stall = 0

    # -- round decomposition (compute-plane offload) -----------------------
    #
    # ``step()`` above is the reference implementation and stays the inline
    # path. ``prepare_round()`` + ``apply_round()`` split one step at the
    # kernel boundary so the candidate evaluation — the expensive middle —
    # can run on a :class:`repro.parallel` compute lane. The split is
    # bit-exact: the RNG draws do not depend on any evaluation result, so
    # drawing every candidate up front replays the same stream, and the
    # tabu/aspiration filter is captured as per-candidate flags plus the
    # aspiration margin and re-applied in draw order.

    def prepare_round(self) -> dict:
        """Advance to the next step and describe its evaluation round.

        Returns a kernel-ready round description; the caller evaluates it
        (inline or on a pool worker) and feeds the outcome to
        :meth:`apply_round`. Interleaving ``prepare_round``/``apply_round``
        with plain :meth:`step` calls is safe — state advances identically.
        """
        self.steps += 1
        edges: list[tuple[int, int]] = []
        seen: set[tuple[int, int]] = set()
        for _ in range(self.candidates):
            edge = self._random_edge()
            if edge in seen:
                continue
            seen.add(edge)
            edges.append(edge)
        return {
            "k": self.k,
            "n": self.n,
            "red": self.coloring.red,
            "edges": edges,
            "tabu": [self._tabu.get(e, -1) >= self.steps for e in edges],
            "aspiration_below": self.best_energy - self.energy,
        }

    def apply_round(
        self,
        best_move: Optional[tuple[int, int]],
        best_delta: int,
        ops_done: int = 0,
    ) -> None:
        """Apply the outcome of an evaluation round prepared by
        :meth:`prepare_round` (the back half of :meth:`step`)."""
        if ops_done:
            self.ops.add(ops_done)
        if best_move is None:
            self._stall += 1
        else:
            best_move = (int(best_move[0]), int(best_move[1]))
            self._apply_flip(*best_move, best_delta)
            self._tabu[best_move] = self.steps + self.tenure
            self._stall = 0 if best_delta < 0 else self._stall + 1
        if self._stall >= self.stall_limit:
            self._perturb()
            self._tabu.clear()
            self._stall = 0

    # -- exact state transfer (worker-resident step batches) ---------------
    def export_state(self) -> dict:
        """Full-fidelity state for migrating the search to another process.

        Unlike :class:`SearchSnapshot` (a wire checkpoint whose restore
        re-counts energies, charging extra ops), this captures *everything*
        — tabu list, stall counter, RNG stream position — so a search can
        hop processes and continue bit-identically to never having moved.
        The op counter is deliberately excluded: the host process owns it
        and accounts returned ``ops_done`` itself.
        """
        return {
            "k": self.k,
            "n": self.n,
            "candidates": self.candidates,
            "tenure": self.tenure,
            "stall_limit": self.stall_limit,
            "red": list(self.coloring.red),
            "best_red": list(self.best_coloring.red),
            "energy": self.energy,
            "best_energy": self.best_energy,
            "steps": self.steps,
            "restarts": self.restarts,
            "tabu": list(self._tabu.items()),
            "stall": self._stall,
            "rng_state": self.rng.bit_generator.state,
        }

    @classmethod
    def from_state(
        cls, state: dict, ops: Optional[OpCounter] = None
    ) -> "TabuSearch":
        """Reconstruct a search exported by :meth:`export_state`."""
        rng = np.random.default_rng()
        rng.bit_generator.state = state["rng_state"]
        search = cls.__new__(cls)
        search.k = int(state["k"])
        search.n = int(state["n"])
        search.rng = rng
        search.ops = ops if ops is not None else OpCounter()
        search.coloring = _coloring_from_red(search.k, state["red"])
        search.best_coloring = _coloring_from_red(search.k, state["best_red"])
        search.energy = int(state["energy"])
        search.best_energy = int(state["best_energy"])
        search.steps = int(state["steps"])
        search.restarts = int(state["restarts"])
        search.candidates = int(state["candidates"])
        search.tenure = int(state["tenure"])
        search.stall_limit = int(state["stall_limit"])
        search._tabu = {(int(u), int(v)): int(t)
                        for (u, v), t in state["tabu"]}
        search._stall = int(state["stall"])
        return search


class Annealing(_EdgeFlipSearch):
    """Metropolis single-flip annealing with geometric cooling."""

    def __init__(
        self,
        k: int,
        n: int,
        rng: np.random.Generator,
        ops: Optional[OpCounter] = None,
        coloring: Optional[Coloring] = None,
        t_start: float = 2.0,
        t_min: float = 0.02,
        cooling: float = 0.9995,
        stall_limit: int = 4000,
    ) -> None:
        super().__init__(k, n, rng, ops, coloring)
        self.temperature = t_start
        self.t_start = t_start
        self.t_min = t_min
        self.cooling = cooling
        self.stall_limit = stall_limit
        self._stall = 0

    def step(self) -> None:
        self.steps += 1
        u, v = self._random_edge()
        delta = self._flip_delta(u, v)
        accept = delta <= 0
        if not accept and self.temperature > 0:
            accept = self.rng.random() < math.exp(-delta / self.temperature)
        if accept:
            improved = self.energy + delta < self.best_energy
            self._apply_flip(u, v, delta)
            self._stall = 0 if improved else self._stall + 1
        else:
            self._stall += 1
        self.temperature = max(self.temperature * self.cooling, self.t_min)
        if self._stall >= self.stall_limit:
            # Reheat and kick: annealing's restart analog.
            self.temperature = self.t_start
            self._perturb()
            self._stall = 0


class MinConflicts(_EdgeFlipSearch):
    """Violation-directed repair: find one monochromatic clique, flip the
    best edge inside it.

    A different execution profile from the sampled-neighborhood methods
    (§4: "each heuristic has an execution profile that depends largely on
    the point in the search space"): near a solution, locating the few
    remaining violations dominates; far from one, repairs are cheap. With
    probability ``noise`` a random clique edge is flipped instead of the
    greedy best — the standard min-conflicts escape from plateaus.
    """

    def __init__(
        self,
        k: int,
        n: int,
        rng: np.random.Generator,
        ops: Optional[OpCounter] = None,
        coloring: Optional[Coloring] = None,
        noise: float = 0.15,
        stall_limit: int = 300,
    ) -> None:
        super().__init__(k, n, rng, ops, coloring)
        self.noise = noise
        self.stall_limit = stall_limit
        self._stall = 0

    def step(self) -> None:
        self.steps += 1
        if self.energy == 0:
            return  # already a counter-example
        start = int(self.rng.integers(self.k))
        clique = find_any_mono_clique(self.coloring, self.n, self.ops,
                                      start=start)
        if clique is None:
            # Tracked energy says violations exist but none found: recount
            # defensively (should not happen; counts are exact).
            self.energy = count_mono_cliques(self.coloring, self.n, self.ops)
            return
        edges = [(clique[i], clique[j])
                 for i in range(len(clique))
                 for j in range(i + 1, len(clique))]
        if self.rng.random() < self.noise:
            u, v = edges[int(self.rng.integers(len(edges)))]
            delta = self._flip_delta(u, v)
        else:
            u, v = edges[0]
            delta = None
            for a, b in edges:
                d = self._flip_delta(a, b)
                if delta is None or d < delta:
                    (u, v), delta = (a, b), d
            assert delta is not None
        prev_best = self.best_energy
        self._apply_flip(u, v, delta)
        self._stall = 0 if self.best_energy < prev_best else self._stall + 1
        if self._stall >= self.stall_limit:
            self._perturb()
            self._stall = 0


def make_search(
    heuristic: str,
    k: int,
    n: int,
    rng: np.random.Generator,
    ops: Optional[OpCounter] = None,
    coloring: Optional[Coloring] = None,
) -> _EdgeFlipSearch:
    """Factory used by work units: 'tabu', 'anneal', or 'minconflict'."""
    if heuristic == "tabu":
        return TabuSearch(k, n, rng, ops=ops, coloring=coloring)
    if heuristic == "anneal":
        return Annealing(k, n, rng, ops=ops, coloring=coloring)
    if heuristic == "minconflict":
        return MinConflicts(k, n, rng, ops=ops, coloring=coloring)
    raise ValueError(f"unknown heuristic {heuristic!r}")
