"""The Ramsey Number Search application (the paper's example Grid program)."""

from .client import (
    RAMSEY_BEST,
    ComputeEngine,
    EngineStatus,
    ModelEngine,
    RamseyClient,
    RealEngine,
    ramsey_comparator,
)
from .graphs import (
    BLUE,
    RED,
    Coloring,
    OpCounter,
    count_mono_cliques,
    count_mono_cliques_with_edge,
)
from .heuristics import Annealing, MinConflicts, SearchSnapshot, TabuSearch, make_search
from .known import KNOWN_RAMSEY, PALEY_WITNESSES, SEARCH_TARGETS, paley_coloring
from .tasks import make_unit, run_unit, unit_generator, validate_unit
from .verify import (
    counter_example_validator,
    find_mono_clique,
    is_counter_example,
    verify_counter_example_object,
)

__all__ = [
    "RAMSEY_BEST",
    "ComputeEngine",
    "EngineStatus",
    "ModelEngine",
    "RamseyClient",
    "RealEngine",
    "ramsey_comparator",
    "BLUE",
    "RED",
    "Coloring",
    "OpCounter",
    "count_mono_cliques",
    "count_mono_cliques_with_edge",
    "Annealing",
    "MinConflicts",
    "SearchSnapshot",
    "TabuSearch",
    "make_search",
    "KNOWN_RAMSEY",
    "PALEY_WITNESSES",
    "SEARCH_TARGETS",
    "paley_coloring",
    "make_unit",
    "run_unit",
    "unit_generator",
    "validate_unit",
    "counter_example_validator",
    "find_mono_clique",
    "is_counter_example",
    "verify_counter_example_object",
]
