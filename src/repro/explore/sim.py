"""The model-exploration subsystem's simulated-time twin.

Same shape as :func:`repro.control.sim.run_sim_serve`, different
workload: instead of synthetic users submitting noop jobs, an
:class:`MEDriverComponent` runs a real ME algorithm (sweep or hill
climber — the identical :mod:`repro.explore.drivers` objects the live
pump uses) against the *unchanged* :class:`GatewayComponent`, pushing
generations through ``POST /jobs/batch`` frames, tailing ``/events``,
and fetching finished job records — the sans-IO mirror of
:class:`~repro.explore.queue.ExploreQueue` + ``run_driver``.

:class:`ExploreWorker` plays the computational client: it *really
executes* each evaluation (``delay = ops_budget / speed`` simulated
seconds, then :func:`~repro.explore.evals.execute_unit`), so results —
and therefore the driver's decisions — are the true objective values. A
``corrupt_first`` knob makes the first worker falsify its first N
results, exercising the §3.1 rejection path end-to-end: the WorkQueue
distrusts the result, requeues the unit, and an honest re-execution
completes it — deterministically, restart included.

Everything runs on seeded RNG streams and the virtual clock, so
:func:`run_sim_explore` reports are byte-identical for the same seed.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Optional

from ..core.component import Component, Effect, Send, SetTimer
from ..core.linguafranca.messages import Message
from ..core.services.kinds import kind_of
from ..core.services.scheduler import SCH_REPORT
from ..core.simdriver import SimDriver
from ..core.telemetry import Telemetry
from ..simgrid.engine import Environment
from ..simgrid.host import Host, HostSpec
from ..simgrid.load import ConstantLoad
from ..simgrid.network import Network
from ..simgrid.rand import RngStreams
from ..control.sim import (
    GW_REQ,
    GW_RES,
    GatewayComponent,
    SimJobWorker,
    T_DONE,
)
from .drivers import make_driver
from .evals import EVAL_KIND, execute_unit
from . import engine as _engine  # noqa: F401  (registers the kind)

__all__ = ["ExploreWorker", "MEDriverComponent", "run_sim_explore"]

T_POLL = "me:poll"


class ExploreWorker(SimJobWorker):
    """A twin computational client that genuinely executes evaluations.

    ``speed`` is its delivered ops/s: an evaluation occupies the worker
    for ``ops_budget / speed`` simulated seconds before the (real,
    deterministic) result is reported. ``corrupt_first`` falsifies the
    first N results — the dishonest-host injector for the §3.1 path.
    """

    def __init__(self, name: str, gateway: str, speed: float = 40_000.0,
                 corrupt_first: int = 0, hello_retry: float = 1.0) -> None:
        super().__init__(name, gateway, hello_retry=hello_retry)
        self.speed = float(speed)
        self.corrupt_first = int(corrupt_first)
        self.results_corrupted = 0

    def _take(self, unit: Optional[dict], now: float) -> list[Effect]:
        if unit is not None and kind_of(unit) == EVAL_KIND:
            self.unit = unit
            delay = float(unit.get("ops_budget", 0.0)) / max(self.speed, 1.0)
            return [SetTimer(T_DONE, max(delay, 0.001))]
        return super()._take(unit, now)

    def on_timer(self, key: str, now: float) -> list[Effect]:
        if (key == T_DONE and self.unit is not None
                and kind_of(self.unit) == EVAL_KIND):
            unit, self.unit = self.unit, None
            self.units_done += 1
            result = execute_unit(unit)
            if self.results_corrupted < self.corrupt_first:
                self.results_corrupted += 1
                # A falsified value with a now-stale digest: exactly what
                # an unreliable (or hostile) host would report.
                result = {**result, "value": result["value"] + 1.0}
            return [Send(self.gateway, Message(
                mtype=SCH_REPORT, sender=self.contact,
                body={"unit_id": unit.get("id"), "done": True,
                      "rate": self.speed, "infra": "sim",
                      "result": result}))]
        return super().on_timer(key, now)

    def stats(self) -> dict:
        return {"units_done": self.units_done,
                "results_corrupted": self.results_corrupted}


class MEDriverComponent(Component):
    """The ME algorithm as a sim component (the EMEWS pump, event-driven).

    push initial batch → poll /events → fetch finished jobs → feed the
    driver → push follow-up generations, all over GW_REQ/GW_RES frames
    against the unchanged gateway router.
    """

    def __init__(self, name: str, gateway: str, driver,
                 poll_period: float = 0.25) -> None:
        super().__init__(name)
        self.gateway = gateway
        self.driver = driver
        self.poll_period = poll_period
        self._rid = 0
        #: rid -> ("batch",) | ("events",) | ("job", job_id)
        self._inflight: dict[int, tuple] = {}
        self._since = -1
        self._events_pending = False
        #: job id -> push sim-time.
        self.outstanding: dict[str, float] = {}
        self.pushed = 0
        self.popped = 0
        self.pushed_ids: list[str] = []
        self.pop_latencies: list[float] = []
        #: Sim-times at which follow-up generations went out (ME round
        #: trips) and at which the driver finished.
        self.rounds: list[float] = []
        self.finished_at: Optional[float] = None
        self.batch_rejected = 0

    # -- request plumbing -----------------------------------------------------
    def _request(self, tag: tuple, method: str, path: str,
                 body=None) -> Send:
        self._rid += 1
        self._inflight[self._rid] = tag
        return Send(self.gateway, Message(
            mtype=GW_REQ, sender=self.contact,
            body={"method": method, "path": path, "body": body,
                  "rid": self._rid}))

    def _push(self, specs: list[dict]) -> list[Effect]:
        if not specs:
            return []
        return [self._request(("batch",), "POST", "/jobs/batch",
                              {"specs": specs})]

    # -- lifecycle ------------------------------------------------------------
    def on_start(self, now: float) -> list[Effect]:
        return self._push(self.driver.initial_tasks()) + [
            SetTimer(T_POLL, self.poll_period)]

    def on_timer(self, key: str, now: float) -> list[Effect]:
        if key != T_POLL:
            return []
        if self.driver.finished():
            if self.finished_at is None:
                self.finished_at = round(now, 6)
            return []  # stop polling; the world can wind down
        effects: list[Effect] = [SetTimer(T_POLL, self.poll_period)]
        if not self._events_pending:
            self._events_pending = True
            effects.append(self._request(
                ("events",), "GET",
                f"/events?since={self._since}&limit=500"))
        return effects

    # -- responses ------------------------------------------------------------
    def on_message(self, message: Message, now: float) -> list[Effect]:
        if message.mtype != GW_RES:
            return []
        tag = self._inflight.pop(message.body.get("rid"), None)
        if tag is None:
            return []
        status = int(message.body.get("status", 0))
        doc = message.body.get("body")
        if tag[0] == "batch":
            return self._on_batch(status, doc, now)
        if tag[0] == "events":
            return self._on_events(status, doc, now)
        return self._on_job(tag[1], status, doc, now)

    def _on_batch(self, status: int, doc, now: float) -> list[Effect]:
        if status != 201 or not isinstance(doc, dict):
            self.batch_rejected += 1
            return []
        for job_id in doc.get("ids", []):
            self.outstanding[str(job_id)] = now
            self.pushed_ids.append(str(job_id))
        self.pushed += int(doc.get("count", 0))
        return []

    def _on_events(self, status: int, doc, now: float) -> list[Effect]:
        self._events_pending = False
        if status != 200 or not isinstance(doc, str):
            return []
        effects: list[Effect] = []
        for line in doc.splitlines():
            if not line.strip():
                continue
            event = json.loads(line)
            seq = event.get("seq")
            if isinstance(seq, int):
                self._since = max(self._since, seq)
            if (event.get("event") in ("done", "cancelled")
                    and event.get("job") in self.outstanding):
                effects.append(self._request(
                    ("job", event["job"]), "GET", f"/jobs/{event['job']}"))
        return effects

    def _on_job(self, job_id: str, status: int, doc,
                now: float) -> list[Effect]:
        if status != 200 or not isinstance(doc, dict):
            return []
        if doc.get("state") not in ("done", "cancelled"):
            return []
        pushed_at = self.outstanding.pop(job_id, None)
        if pushed_at is None:
            return []  # already consumed (duplicate event)
        self.popped += 1
        self.pop_latencies.append(round(now - pushed_at, 6))
        self.driver.observe(doc.get("spec") or {}, doc.get("result"))
        follow_up = self.driver.next_tasks()
        if follow_up:
            self.rounds.append(round(now, 6))
            return self._push(follow_up)
        return []

    def stats(self) -> dict:
        lat = sorted(self.pop_latencies)
        return {
            "pushed": self.pushed,
            "popped": self.popped,
            "outstanding": len(self.outstanding),
            "batch_rejected": self.batch_rejected,
            "rounds": self.rounds,
            "finished_at": self.finished_at,
            "pop_p50": lat[len(lat) // 2] if lat else None,
            "pop_max": lat[-1] if lat else None,
        }


def run_sim_explore(
    seed: int = 0,
    algo: str = "sweep",
    fn: str = "forecast",
    workers: int = 3,
    duration: float = 120.0,
    scale: float = 1.0,
    ops_budget: float = 20_000.0,
    worker_speed: float = 40_000.0,
    restart_after: Optional[float] = None,
    corrupt_first: int = 0,
    telemetry: Optional[Telemetry] = None,
) -> dict:
    """Run the ME twin; returns a JSON-safe, deterministic report (same
    seed ⇒ byte-identical ``json.dumps(..., sort_keys=True)``).

    The report carries the twin's own exactly-once checklist: the driver
    must finish inside ``duration``, every pushed evaluation must end
    ``done`` with the completion counter agreeing (nothing lost, nothing
    doubly accepted), every corrupted result must have been rejected and
    re-executed, and the simulated restart — when scheduled — must have
    requeued-not-dropped the in-flight generation.
    """
    env = Environment()
    streams = RngStreams(seed=seed)
    telemetry = telemetry if telemetry is not None else Telemetry()
    network = Network(env, streams, base_latency=0.01, jitter=0.1)
    network.attach_telemetry(telemetry)
    sites = ["ucsd", "utk", "uva", "ncsa"]

    def spawn(name: str, idx: int, port: str, component: Component) -> None:
        host = Host(env, HostSpec(
            name=name, site=sites[idx % len(sites)], infra="service",
            speed=2e7, load_model=ConstantLoad(1.0)), streams)
        network.add_host(host)
        host.start()
        SimDriver(env, network, host, port, component, streams).start()

    gateway = GatewayComponent("gw0", restart_after=restart_after)
    spawn("gw0", 0, "gw", gateway)
    contact = "gw0/gw"
    worker_components = [
        ExploreWorker(f"wrk{i}", contact, speed=worker_speed,
                      corrupt_first=corrupt_first if i == 0 else 0)
        for i in range(workers)]
    for i, wrk in enumerate(worker_components):
        spawn(f"wrk{i}", i + 1, "wrk", wrk)
    driver = make_driver(algo, seed=seed, fn=fn, ops_budget=ops_budget,
                         scale=scale)
    me = MEDriverComponent("me0", contact, driver)
    spawn("me0", workers + 1, "me", me)

    env.run(until=duration)

    work = gateway.work
    states = {job_id: work.jobs[job_id].state if job_id in work.jobs else None
              for job_id in me.pushed_ids}
    not_done = sorted(job_id for job_id, state in states.items()
                      if state != "done")
    stats = work.stats()
    violations: list[str] = []
    if me.finished_at is None:
        violations.append(
            f"driver did not finish inside {duration} simulated seconds "
            f"(popped {me.popped}/{me.pushed})")
    if me.outstanding:
        violations.append(
            f"{len(me.outstanding)} evaluation(s) still outstanding")
    if not_done:
        violations.append(
            f"{len(not_done)} pushed evaluation(s) not done: {not_done[:5]}")
    if stats["completed"] != me.pushed:
        violations.append(
            f"exactly-once broken: {stats['completed']} completions for "
            f"{me.pushed} pushed evaluations")
    if stats["results_rejected"] != corrupt_first:
        violations.append(
            f"expected {corrupt_first} rejected result(s), "
            f"saw {stats['results_rejected']}")
    if restart_after is not None and gateway.restarts != 1:
        violations.append(
            f"expected exactly one simulated restart, saw {gateway.restarts}")
    return {
        "config": {
            "seed": seed, "algo": algo, "fn": fn, "workers": workers,
            "duration": duration, "scale": scale, "ops_budget": ops_budget,
            "worker_speed": worker_speed, "restart_after": restart_after,
            "corrupt_first": corrupt_first,
        },
        "driver": driver.summary(),
        "me": me.stats(),
        "gateway": {
            "requests": gateway.core.requests,
            "rejected": gateway.core.rejected,
            "restarts": gateway.restarts,
            "requeued_on_restart": gateway.requeued_on_restart,
            "scheduler": asdict(gateway.stats),
            "work": stats,
        },
        "workers": {wrk.name: wrk.stats() for wrk in worker_components},
        "violations": violations,
        "metrics": telemetry.snapshot(),
    }
