"""Model-exploration algorithms (the "ME" side of the EMEWS pattern).

A driver is a pull-based strategy object — the queue side asks it what
to push next and feeds it consumed results:

* ``initial_tasks()`` — the opening batch of evaluation specs;
* ``observe(spec, result)`` — one consumed result (any arrival order);
* ``next_tasks()`` — follow-up specs, ``[]`` until the driver has seen
  everything it is waiting on (this is where generation N+1 is minted
  from generation N's consumed results);
* ``finished()`` / ``best()`` / ``summary()``.

The same driver object runs everywhere: the blocking live pump
(:func:`run_driver` over an :class:`~repro.explore.queue.ExploreQueue`)
and the deterministic simulated twin (an event-driven component feeding
it from GW_RES frames). Determinism contract: a driver's decisions
depend only on its constructor arguments and the *set* of results
observed per round — never on arrival order or on any ambient clock —
so same-seed runs are byte-identical on both planes.

Two algorithms ship, deliberately spanning the two ME shapes:

* :class:`GridSweep` — the deterministic parameter sweep (Nimble's
  forecasting sweep): every task known up front, pushed as one batch.
* :class:`HillClimber` — random-restart hill climbing: generation g+1
  is centered on each restart's best-so-far point and is only minted
  once generation g is fully consumed.
"""

from __future__ import annotations

import itertools
import random
from typing import Optional

from .evals import make_eval_spec

__all__ = ["GridSweep", "HillClimber", "make_driver", "run_driver"]


def _tag_key(spec: dict) -> tuple:
    tag = spec.get("tag") or {}
    return (int(tag.get("restart", 0)), int(tag.get("gen", 0)),
            int(tag.get("cand", 0)))


class GridSweep:
    """Deterministic cartesian parameter sweep: all tasks up front."""

    #: Default grid for the forecast objective (5 x 4 x 3 = 60 points).
    DEFAULT_GRID = {
        "bias": [-0.5, -0.25, 0.0, 0.25, 0.5],
        "damping": [0.2, 0.4, 0.6, 0.8],
        "nudging": [0.1, 0.5, 0.9],
    }

    def __init__(self, fn: str = "forecast", grid: Optional[dict] = None,
                 seed: int = 0, ops_budget: float = 20_000.0) -> None:
        self.fn = fn
        self.grid = {k: list(v) for k, v in
                     sorted((grid or self.DEFAULT_GRID).items())}
        self.seed = int(seed)
        self.ops_budget = float(ops_budget)
        names = list(self.grid)
        self._tasks = [
            make_eval_spec(fn, dict(zip(names, point)), seed=self.seed,
                           ops_budget=self.ops_budget, tag={"cand": i})
            for i, point in enumerate(
                itertools.product(*(self.grid[n] for n in names)))
        ]
        self.expected = len(self._tasks)
        self.consumed = 0
        self.failed = 0
        self._best: Optional[dict] = None

    def initial_tasks(self) -> list[dict]:
        return [dict(spec) for spec in self._tasks]

    def observe(self, spec: dict, result: Optional[dict]) -> None:
        self.consumed += 1
        value = (result or {}).get("value")
        if value is None:
            self.failed += 1
            return
        # Tie-break on the candidate index so arrival order never matters.
        key = (float(value), _tag_key(spec))
        if self._best is None or key < self._best["_key"]:
            self._best = {"params": dict(spec["params"]),
                          "value": float(value), "_key": key}

    def next_tasks(self) -> list[dict]:
        return []

    def finished(self) -> bool:
        return self.consumed >= self.expected

    def best(self) -> Optional[dict]:
        if self._best is None:
            return None
        return {"params": self._best["params"], "value": self._best["value"]}

    def summary(self) -> dict:
        return {
            "algo": "sweep",
            "fn": self.fn,
            "evals": self.consumed,
            "expected": self.expected,
            "failed": self.failed,
            "best": self.best(),
        }


class HillClimber:
    """Random-restart hill climbing, strictly generational.

    ``restarts`` independent climbers each hold a current point. Every
    generation proposes ``population`` candidates per restart (uniform
    steps of width ``step`` around the current point, clipped to the
    space); once the *whole* generation is consumed, each restart moves
    to its best candidate if it improves, otherwise decays its step.
    That full-barrier fold is the iterative-ME shape the tentpole asks
    for: generation N+1 provably depends on generation N's results.
    """

    #: Default search box for the forecast objective.
    DEFAULT_SPACE = {
        "bias": (-1.0, 1.0),
        "damping": (0.0, 1.0),
        "nudging": (0.0, 1.0),
    }

    def __init__(self, fn: str = "forecast", space: Optional[dict] = None,
                 restarts: int = 2, population: int = 4,
                 generations: int = 5, step: float = 0.4,
                 decay: float = 0.6, seed: int = 0,
                 ops_budget: float = 20_000.0) -> None:
        self.fn = fn
        self.space = {k: (float(lo), float(hi)) for k, (lo, hi) in
                      sorted((space or self.DEFAULT_SPACE).items())}
        self.restarts = int(restarts)
        self.population = int(population)
        self.generations = int(generations)
        self.decay = float(decay)
        self.seed = int(seed)
        self.ops_budget = float(ops_budget)
        self.rng = random.Random(f"hill:{seed}")
        self.gen = 0
        self.consumed = 0
        self.failed = 0
        self.moves = 0
        #: Per-restart climber state.
        self._current: list[dict] = [
            {name: self.rng.uniform(lo, hi)
             for name, (lo, hi) in self.space.items()}
            for _ in range(self.restarts)]
        self._value: list[Optional[float]] = [None] * self.restarts
        self._step: list[float] = [float(step)] * self.restarts
        #: The in-flight generation: (restart, cand) -> observed value.
        self._wave: dict[tuple[int, int], Optional[float]] = {}
        self._wave_params: dict[tuple[int, int], dict] = {}
        self._expected = 0
        self._done = False

    # -- task minting --------------------------------------------------------
    def _spec(self, restart: int, cand: int, params: dict) -> dict:
        self._wave_params[(restart, cand)] = dict(params)
        return make_eval_spec(
            self.fn, params, seed=self.seed, ops_budget=self.ops_budget,
            tag={"restart": restart, "gen": self.gen, "cand": cand})

    def initial_tasks(self) -> list[dict]:
        # Generation 0 scores each restart's seed point itself.
        self._wave.clear()
        self._wave_params.clear()
        tasks = [self._spec(r, 0, self._current[r])
                 for r in range(self.restarts)]
        self._expected = len(tasks)
        return tasks

    def observe(self, spec: dict, result: Optional[dict]) -> None:
        tag = spec.get("tag") or {}
        key = (int(tag.get("restart", 0)), int(tag.get("cand", 0)))
        value = (result or {}).get("value")
        self.consumed += 1
        if value is None:
            self.failed += 1
        self._wave[key] = None if value is None else float(value)

    def next_tasks(self) -> list[dict]:
        if self._done or len(self._wave) < self._expected:
            return []
        self._fold()
        if self.gen > self.generations:
            self._done = True
            return []
        self._wave.clear()
        self._wave_params.clear()
        tasks = []
        for r in range(self.restarts):
            for c in range(self.population):
                point = {}
                for name, (lo, hi) in self.space.items():
                    jitter = self.rng.uniform(-self._step[r], self._step[r])
                    point[name] = min(hi, max(lo,
                                              self._current[r][name] + jitter))
                tasks.append(self._spec(r, c, point))
        self._expected = len(tasks)
        return tasks

    def _fold(self) -> None:
        """Consume the finished generation: per restart, move to the best
        candidate if it improves, else decay the step. Order-independent:
        candidates are compared by (value, cand index)."""
        for r in range(self.restarts):
            scored = sorted(
                (value, cand) for (restart, cand), value in self._wave.items()
                if restart == r and value is not None)
            if not scored:
                continue
            best_value, best_cand = scored[0]
            if self._value[r] is None or best_value < self._value[r]:
                self._value[r] = best_value
                self._current[r] = self._wave_params[(r, best_cand)]
                self.moves += 1
            else:
                self._step[r] *= self.decay
        self.gen += 1

    def finished(self) -> bool:
        return self._done

    def best(self) -> Optional[dict]:
        scored = sorted(
            (value, r) for r, value in enumerate(self._value)
            if value is not None)
        if not scored:
            return None
        value, r = scored[0]
        return {"params": {k: round(v, 9)
                           for k, v in sorted(self._current[r].items())},
                "value": value, "restart": r}

    def summary(self) -> dict:
        return {
            "algo": "hill",
            "fn": self.fn,
            "evals": self.consumed,
            "failed": self.failed,
            "generations": self.gen,
            "moves": self.moves,
            "best": self.best(),
        }


def make_driver(algo: str, seed: int = 0, fn: str = "forecast",
                ops_budget: float = 20_000.0, scale: float = 1.0):
    """Build a driver by name — the CLI/harness/CI entry point. ``scale``
    shrinks or grows the default workload (0.5 halves the sweep grid and
    the climber's generations) so smokes stay fast."""
    if algo == "sweep":
        grid = GridSweep.DEFAULT_GRID
        if scale != 1.0:
            grid = {name: values[:max(2, int(round(len(values) * scale)))]
                    for name, values in grid.items()}
        return GridSweep(fn=fn, grid=grid, seed=seed, ops_budget=ops_budget)
    if algo == "hill":
        return HillClimber(
            fn=fn, seed=seed, ops_budget=ops_budget,
            generations=max(2, int(round(5 * scale))),
            population=max(2, int(round(4 * scale))))
    raise ValueError(f"unknown ME algorithm {algo!r} "
                     "(expected 'sweep' or 'hill')")


def run_driver(driver, queue, timeout: float = 120.0,
               poll_timeout: float = 5.0, clock=None) -> dict:
    """The blocking EMEWS pump: push → pop → observe → next until the
    driver is finished. Returns the driver summary plus round-trip
    bookkeeping (``rounds`` are the wall offsets at which a follow-up
    batch was pushed — the iterative-ME round-trip measure).
    """
    if clock is None:
        import time
        clock = time.monotonic
    t0 = clock()
    rounds: list[float] = []
    timed_out = False
    queue.push_tasks(driver.initial_tasks())
    while not driver.finished():
        if clock() - t0 > timeout:
            timed_out = True
            break
        for res in queue.pop_results(min_results=1, timeout=poll_timeout):
            driver.observe(res["spec"], res.get("result"))
        follow_up = driver.next_tasks()
        if follow_up:
            rounds.append(round(clock() - t0, 6))
            queue.push_tasks(follow_up)
    summary = driver.summary()
    summary["elapsed"] = round(clock() - t0, 6)
    summary["rounds"] = rounds
    summary["timed_out"] = timed_out
    return summary
