"""Model exploration: the toolkit's second first-class application.

EveryWare's generality claim, made executable (ROADMAP item 4, DESIGN
§16): an EMEWS EQ/Py-style model-exploration service where a search
algorithm pushes black-box evaluation tasks through a queue API
(:class:`ExploreQueue`: ``push_tasks`` / ``pop_results`` / ``done``) and
consumes results asynchronously — running entirely on the *unchanged*
scheduler/gateway/WorkQueue stack. The pieces:

* :mod:`~repro.explore.evals` — deterministic black-box objectives
  (sphere, rastrigin, a miniature forecast-skill model) and the §3.1
  recompute-and-distrust result check.
* :mod:`~repro.explore.engine` — the client-side ComputeEngine for
  ``explore.eval`` units; importing this module registers the kind.
* :mod:`~repro.explore.drivers` — the ME algorithms (:class:`GridSweep`,
  :class:`HillClimber`) and the blocking EMEWS pump
  (:func:`run_driver`).
* :mod:`~repro.explore.queue` — :class:`ExploreQueue` over the HTTP
  gateway.
* :mod:`~repro.explore.sim` — the byte-deterministic simulated twin
  (:func:`run_sim_explore`), restart and corrupted-result chaos
  included.
* :mod:`~repro.explore.serve` — ``repro explore``, the live harness
  (:func:`run_explore`) with SIGKILL chaos and the exactly-once verify
  sweep.
"""

from .drivers import GridSweep, HillClimber, make_driver, run_driver
from .engine import ExploreEngine
from .evals import (
    EVAL_FUNCTIONS,
    EVAL_KIND,
    check_eval_result,
    evaluate,
    execute_unit,
    make_eval_spec,
    validate_eval,
)
from .queue import ExploreQueue
from .serve import ExploreConfig, run_explore
from .sim import ExploreWorker, MEDriverComponent, run_sim_explore

__all__ = [
    "EVAL_FUNCTIONS",
    "EVAL_KIND",
    "ExploreConfig",
    "ExploreEngine",
    "ExploreQueue",
    "ExploreWorker",
    "GridSweep",
    "HillClimber",
    "MEDriverComponent",
    "check_eval_result",
    "evaluate",
    "execute_unit",
    "make_driver",
    "make_eval_spec",
    "run_driver",
    "run_explore",
    "run_sim_explore",
    "validate_eval",
]
