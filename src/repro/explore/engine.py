"""The client-side ComputeEngine for ``explore.eval`` units.

Same protocol the Ramsey engines speak
(:class:`~repro.ramsey.client.ComputeEngine`): ``load`` a unit, burn
the host's delivered ops through ``advance`` until the unit's budget is
exhausted, then surface the finished evaluation. The objective itself is
cheap deterministic math (:func:`~repro.explore.evals.evaluate`); the
``ops_budget`` is what the evaluation *costs on the grid* — it meters
how long a client is occupied, which is what the scheduler, forecasters,
and chaos machinery care about. Registering the kind here means any
process that imports :mod:`repro.explore` can both execute these units
(via :class:`~repro.core.services.kinds.KindEngine`) and distrust their
results (the gateway's WorkQueue check).
"""

from __future__ import annotations

from typing import Optional

from ..core.services.kinds import register_kind
from ..ramsey.client import EngineStatus
from .evals import EVAL_KIND, check_eval_result, execute_unit, validate_eval

__all__ = ["ExploreEngine"]


class ExploreEngine:
    """Meter ops against the unit budget; evaluate once at completion."""

    def __init__(self) -> None:
        self.unit: Optional[dict] = None
        self._ops = 0.0
        self._result: Optional[dict] = None
        self.units_done = 0

    def load(self, unit: dict, rng=None) -> None:
        validate_eval(unit)
        self.unit = unit
        self._ops = 0.0
        self._result = None

    def advance(self, ops_budget: float) -> EngineStatus:
        assert self.unit is not None
        burned = max(float(ops_budget), 0.0)
        self._ops += burned
        done = self._ops >= float(self.unit["ops_budget"])
        if done and self._result is None:
            self._result = execute_unit(self.unit)
            self.units_done += 1
        value = self._result["value"] if self._result is not None else 0.0
        return EngineStatus(ops_done=burned, energy=value,
                            best_energy=value, found=None, done=done)

    def progress(self) -> dict:
        out = {"kind": EVAL_KIND, "ops": self._ops}
        if self._result is not None:
            out["value"] = self._result["value"]
        return out

    def result(self) -> Optional[dict]:
        """The finished evaluation (what ``SCH_REPORT`` ships as the
        completion result), or None while the unit is still running."""
        return dict(self._result) if self._result is not None else None


register_kind(
    EVAL_KIND,
    validate=validate_eval,
    engine_factory=ExploreEngine,
    check_result=check_eval_result,
    description="model-exploration black-box evaluation (EMEWS-style)",
    replace=True,
)
