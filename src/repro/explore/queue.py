"""The EMEWS EQ/Py-style task queue over the job gateway.

:class:`ExploreQueue` is the ME algorithm's *only* interface to the
grid: ``push_tasks`` submits a batch of evaluation specs (one ``POST
/jobs/batch``, one journal flush), ``pop_results`` blocks until
completed evaluations are available, ``done`` closes the session with a
consistency check. Underneath it is nothing but the unchanged control
plane — the gateway journals the specs, the scheduler hands them to
whatever computational clients say HELLO, the WorkQueue distrusts and
accepts their reports — which is the point: the ME side needs no
EveryWare-specific machinery at all, just HTTP.

Result consumption tails the gateway's ``/events`` feed (the cheap
path: one poll notices any number of completions) and falls back to
directly probing outstanding job records whenever the feed goes quiet —
the events ring is bounded, so a burst larger than its capacity could
otherwise hide completions. Per-result submit→pop latency is recorded
for the bench.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Optional

__all__ = ["ExploreQueue"]

#: Terminal job states: popping one of these retires the outstanding id.
_TERMINAL = ("done", "cancelled")


class ExploreQueue:
    """Blocking push/pop facade over a gateway client (see module doc).

    ``client`` is anything :class:`~repro.control.client.GatewayClient`
    -shaped (``submit``/``submit_batch``/``job``/``events``). ``pump``,
    when given, is called on every poll iteration — the live harness
    hooks its collector/supervisor step loop in so the grid keeps
    running while the ME blocks.
    """

    def __init__(self, client, batch: bool = True, poll: float = 0.05,
                 probe_limit: int = 64,
                 clock: Callable[[], float] = time.monotonic,
                 pump: Optional[Callable[[], None]] = None) -> None:
        self.client = client
        self.batch = batch
        self.poll = poll
        self.probe_limit = probe_limit
        self.clock = clock
        self.pump = pump
        #: job id -> push timestamp (clock units).
        self.outstanding: dict[str, float] = {}
        self._ready: deque[dict] = deque()
        self._since = -1
        #: Every id ever pushed, in push order (the verify sweep's list).
        self.pushed_ids: list[str] = []
        self.pushed = 0
        self.popped = 0
        self.cancelled_seen = 0
        #: submit→pop latency per popped result, ms (bench fodder).
        self.pop_latencies_ms: list[float] = []

    # -- push ----------------------------------------------------------------
    def push_tasks(self, specs: list[dict]) -> list[str]:
        """Submit a batch of evaluation specs; returns the job ids."""
        specs = list(specs)
        if not specs:
            return []
        if self.batch:
            ids = self.client.submit_batch(specs)
        else:
            ids = [str(self.client.submit(spec)["id"]) for spec in specs]
        now = self.clock()
        for job_id in ids:
            self.outstanding[job_id] = now
        self.pushed_ids.extend(ids)
        self.pushed += len(ids)
        return ids

    # -- pop -----------------------------------------------------------------
    def _retire(self, job_id: str, doc: dict) -> None:
        pushed_at = self.outstanding.pop(job_id, None)
        latency_ms = (None if pushed_at is None
                      else round((self.clock() - pushed_at) * 1000.0, 3))
        if latency_ms is not None:
            self.pop_latencies_ms.append(latency_ms)
        if doc.get("state") == "cancelled":
            self.cancelled_seen += 1
        self._ready.append({
            "id": job_id,
            "state": doc.get("state"),
            "spec": doc.get("spec") or {},
            "result": doc.get("result"),
            "requeues": doc.get("requeues", 0),
            "latency_ms": latency_ms,
        })

    def _ingest_events(self) -> int:
        """One /events poll; returns how many outstanding jobs retired."""
        retired = 0
        while True:
            events = self.client.events(since=self._since, limit=500)
            for event in events:
                seq = event.get("seq")
                if isinstance(seq, int):
                    self._since = max(self._since, seq)
                if (event.get("event") in _TERMINAL
                        and event.get("job") in self.outstanding):
                    doc = self.client.job(event["job"])
                    if doc is not None and doc.get("state") in _TERMINAL:
                        self._retire(event["job"], doc)
                        retired += 1
            if len(events) < 500:
                return retired

    def _probe_outstanding(self) -> int:
        """Directly poll a bounded slice of outstanding job records — the
        safety net for completions the bounded events ring aged out."""
        retired = 0
        for job_id in list(self.outstanding)[:self.probe_limit]:
            doc = self.client.job(job_id)
            if doc is not None and doc.get("state") in _TERMINAL:
                self._retire(job_id, doc)
                retired += 1
        return retired

    def pop_results(self, min_results: int = 1,
                    timeout: float = 30.0) -> list[dict]:
        """Block until at least ``min_results`` results are ready (or
        nothing is outstanding, or ``timeout`` expires); returns *all*
        ready results. Each is ``{"id", "state", "spec", "result",
        "requeues", "latency_ms"}``.
        """
        deadline = self.clock() + timeout
        while (len(self._ready) < min_results and self.outstanding
               and self.clock() < deadline):
            if self._ingest_events() == 0:
                self._probe_outstanding()
            if len(self._ready) >= min_results:
                break
            if self.pump is not None:
                self.pump()
            time.sleep(self.poll)
        out = list(self._ready)
        self._ready.clear()
        self.popped += len(out)
        return out

    # -- session -------------------------------------------------------------
    def done(self) -> dict:
        """End the ME session; returns (and asserts nothing is lost in)
        the final accounting."""
        summary = self.stats()
        if self.outstanding:
            raise RuntimeError(
                f"ExploreQueue.done() with {len(self.outstanding)} "
                f"evaluations still outstanding: "
                f"{sorted(self.outstanding)[:5]}...")
        return summary

    def stats(self) -> dict:
        lat = sorted(self.pop_latencies_ms)
        def pct(p: float) -> Optional[float]:
            if not lat:
                return None
            return lat[min(len(lat) - 1, int(p * len(lat)))]
        return {
            "pushed": self.pushed,
            "popped": self.popped,
            "outstanding": len(self.outstanding),
            "cancelled_seen": self.cancelled_seen,
            "pop_p50_ms": pct(0.50),
            "pop_p99_ms": pct(0.99),
        }
