"""``repro explore``: the ME subsystem on the live plane.

Same world as ``repro serve`` — gateway + gossip + persistent + logger +
computational-client processes under the supervisor — but the external
workload is a real model-exploration algorithm instead of a synthetic
storm: the ME driver runs in *this* process, pushing evaluation batches
over HTTP through an :class:`~repro.explore.queue.ExploreQueue` and
consuming results, while the unchanged clients execute whatever kind
they are handed (their :class:`~repro.core.services.kinds.KindEngine`
dispatches ``explore.eval`` units to the ExploreEngine).

Chaos is the tentpole's live gate: SIGKILL a computational client
mid-sweep and the world must deliver every pushed evaluation anyway —
the scheduler reaps the dead client's assignment, requeues it, another
client (or the supervisor-restarted incarnation) re-executes, and the
WorkQueue accepts exactly one completion per evaluation. The report
carries the checklist: all pushed ids ``done``, completions == pushed,
the killed node restarted, and — whenever the kill landed mid-unit —
at least one requeue observed.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..control.client import GatewayClient
from ..control.http import HttpError
from ..live.collector import Collector
from ..live.ports import PortAllocator
from ..live.supervisor import RestartPolicy, Supervisor
from ..live.topology import Topology, build_manifest, serve_topology
from .drivers import make_driver, run_driver
from .queue import ExploreQueue
from . import engine as _engine  # noqa: F401  (registers the kind)

__all__ = ["ExploreConfig", "run_explore"]


@dataclass
class ExploreConfig:
    """Knobs for one live ``repro explore`` run."""

    algo: str = "sweep"
    fn: str = "forecast"
    clients: int = 2
    gossips: int = 1
    gateways: int = 1
    persistents: int = 1
    loggers: int = 1
    #: ME pump deadline (wall seconds) — the driver must finish inside.
    duration: float = 60.0
    #: Workload scale factor passed to :func:`make_driver`.
    scale: float = 1.0
    #: Grid cost per evaluation (~0.25 s at the topology's 300k ops/s).
    ops_budget: float = 75_000.0
    #: SIGKILL a node this many seconds in (None = no chaos).
    kill_at: Optional[float] = None
    #: Which node to kill (None = the first computational client).
    kill_node: Optional[str] = None
    #: Push each generation through POST /jobs/batch (False = one POST
    #: /jobs per task; the bench measures the difference).
    batch: bool = True
    seed: int = 0
    host: str = "127.0.0.1"

    def topology(self) -> Topology:
        return serve_topology(
            clients=self.clients, gossips=self.gossips,
            gateways=self.gateways, persistents=self.persistents,
            loggers=self.loggers, seed=self.seed)


def _check_explore(report: dict) -> list[str]:
    """The live ME checklist (the sim twin gates on byte-diffs; the live
    plane gates on these invariants)."""
    violations: list[str] = []
    summary = report["summary"]
    jobs = report["jobs"]
    if summary.get("timed_out"):
        violations.append(
            f"ME driver timed out after {summary.get('elapsed')}s "
            f"({jobs['done']}/{jobs['pushed']} evaluations done)")
    if jobs["pushed"] == 0:
        violations.append("the ME never got a single evaluation accepted")
    not_done = jobs["not_done"]
    if not_done:
        violations.append(
            f"{len(not_done)} pushed evaluation(s) not done: {not_done[:5]}")
    work = report.get("work_stats") or {}
    if work and work.get("completed", 0) < jobs["pushed"]:
        violations.append(
            f"exactly-once broken: {work.get('completed')} completions "
            f"for {jobs['pushed']} pushed evaluations")
    for chaos in report.get("chaos", []):
        node = report["nodes"].get(chaos["node"], {})
        if node.get("restarts", 0) < 1:
            violations.append(
                f"{chaos['node']} was killed but never restarted")
    return violations


def run_explore(
    config: ExploreConfig,
    out: Optional[str] = None,
    restart: Optional[RestartPolicy] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> dict:
    """Stand up the world, run the ME pump against it, verify, report."""
    def say(text: str) -> None:
        if progress is not None:
            progress(text)

    topology = config.topology()
    tmp = None
    if out is not None:
        os.makedirs(out, exist_ok=True)
        run_dir = out
    else:
        tmp = tempfile.TemporaryDirectory(prefix="repro-explore-")
        run_dir = tmp.name
    manifest_path = os.path.join(run_dir, "manifest.json")

    host = config.host
    collector = Collector(host=host)
    allocator = PortAllocator(host)
    queue: Optional[ExploreQueue] = None
    try:
        manifest = build_manifest(topology, collector.contact,
                                  host=host, allocator=allocator)
        manifest.write(manifest_path)
        sweep_grace = 30.0
        supervisor = Supervisor(
            manifest, manifest_path,
            deadline=config.duration + sweep_grace,
            collector=collector, restart=restart,
            log_dir=os.path.join(run_dir, "node-logs"))
        gateway_name = topology.by_role("gateway")[0].name
        http_contact = manifest.http_contact(gateway_name)
        say(f"world of {len(topology.nodes)} nodes; "
            f"gateway HTTP at {http_contact}")
        allocator.release()
        supervisor.spawn_all()

        kill_target = config.kill_node
        if kill_target is None:
            client_specs = topology.by_role("client")
            kill_target = client_specs[0].name if client_specs else None
        if config.kill_at is not None and kill_target not in supervisor.nodes:
            raise ValueError(f"kill_node {kill_target!r} not in topology")

        chaos: list[dict] = []
        state = {"killed": False, "health_at": 1.0, "t0": time.monotonic()}

        def pump() -> None:
            collector.step(0.005)
            supervisor.poll()
            now = supervisor.now()
            if now >= state["health_at"]:
                supervisor.check_health()
                state["health_at"] = now + 1.0
            if (config.kill_at is not None and not state["killed"]
                    and now >= config.kill_at):
                state["killed"] = True
                pid = supervisor.kill(kill_target)
                if pid is not None:
                    chaos.append({"t": round(now, 3), "node": kill_target,
                                  "pid": pid})
                    say(f"chaos: killed {kill_target} (pid {pid}) "
                        f"at t={now:.1f}s")

        driver = make_driver(config.algo, seed=config.seed, fn=config.fn,
                             ops_budget=config.ops_budget,
                             scale=config.scale)
        queue = ExploreQueue(GatewayClient(http_contact, timeout=3.0),
                             batch=config.batch, pump=pump)
        # Wait for the gateway to answer before the first push — the
        # nodes were spawned an instant ago and may still be binding.
        ready_deadline = time.monotonic() + 15.0
        while time.monotonic() < ready_deadline:
            pump()
            try:
                queue.client.health()
                break
            except HttpError:
                time.sleep(0.2)
        say(f"running {config.algo!r} over fn={config.fn!r} "
            f"(batch={config.batch})")
        summary = run_driver(driver, queue, timeout=config.duration,
                             poll_timeout=5.0)
        say(f"ME finished: {summary['evals']} evaluations consumed in "
            f"{summary['elapsed']:.1f}s, best={summary.get('best')}")

        # Verify sweep against the live gateway: every pushed id must be
        # done, exactly once (requeues allowed, extra completions not).
        states: dict[str, int] = {}
        not_done: list[str] = []
        requeues_total = 0
        work_stats: dict = {}
        with GatewayClient(http_contact, timeout=3.0) as verify:
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline:
                pump()
                try:
                    verify.health()
                    break
                except HttpError:
                    time.sleep(0.2)
            try:
                work_stats = verify.queue()
            except HttpError:
                work_stats = {}
            for job_id in queue.pushed_ids:
                try:
                    doc = verify.job(job_id)
                except HttpError:
                    doc = None
                state_name = str((doc or {}).get("state"))
                states[state_name] = states.get(state_name, 0) + 1
                requeues_total += int((doc or {}).get("requeues", 0))
                if state_name != "done":
                    not_done.append(job_id)

        for _ in range(20):
            pump()
        supervisor.drain(pump=pump)
        for _ in range(10):
            collector.step(0.01)

        nodes: dict[str, dict] = {}
        statuses = supervisor.statuses()
        for spec in topology.nodes:
            rec = collector.nodes.get(spec.name)
            nodes[spec.name] = {
                "role": spec.role,
                "contact": manifest.contact(spec.name),
                "hellos": rec.hellos if rec else 0,
                "reports": rec.reports if rec else 0,
                "stop_reason": rec.stop_reason if rec else None,
                "stats": dict(rec.stats) if rec else {},
                **statuses.get(spec.name, {}),
            }
        report = {
            "config": {
                "algo": config.algo, "fn": config.fn,
                "clients": config.clients, "duration": config.duration,
                "scale": config.scale, "ops_budget": config.ops_budget,
                "kill_at": config.kill_at, "kill_node": kill_target,
                "batch": config.batch, "seed": config.seed,
            },
            "topology": topology.to_dict(),
            "summary": summary,
            "queue": queue.stats(),
            "jobs": {
                "pushed": queue.pushed,
                "done": states.get("done", 0),
                "states": states,
                "not_done": sorted(not_done),
                "still_outstanding": sorted(queue.outstanding),
                "requeues_total": requeues_total,
            },
            "work_stats": work_stats,
            "nodes": nodes,
            "chaos": chaos,
            "metrics": collector.merged_metrics(),
        }
        report["violations"] = _check_explore(report)
        report["ok"] = not report["violations"]

        if out is not None:
            report_path = os.path.join(out, "explore_report.json")
            with open(report_path, "w", encoding="utf-8") as fh:
                json.dump(report, fh, indent=1, sort_keys=True)
                fh.write("\n")
            report["artifacts"] = {"manifest": manifest_path,
                                   "report": report_path}
        return report
    finally:
        if queue is not None:
            queue.client.close()
        allocator.release()
        collector.close()
        if tmp is not None:
            tmp.cleanup()
