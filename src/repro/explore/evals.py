"""Black-box evaluation functions for model exploration.

An explore *task* is a work-unit spec of kind ``explore.eval``::

    {"kind": "explore.eval", "fn": "forecast",
     "params": {"bias": 0.1, "damping": 0.6, "nudging": 0.4},
     "seed": 7, "ops_budget": 20000.0}

and its *result* is the deterministic objective value at those
parameters, plus a digest over the canonical (fn, params, seed, value)
tuple. Determinism is the load-bearing property: it makes evaluations
restart-safe (a requeued task re-executes to the identical result, no
checkpoint needed), it makes the simulated twin byte-identical, and it
gives the §3.1 distrust-remote-results discipline its teeth —
:func:`check_eval_result` simply *recomputes* the evaluation and rejects
any completion that disagrees. The recomputation is cheap pure-python
math; what the workers "pay" is the unit's ``ops_budget`` of grid time,
which is exactly the asymmetry that made re-verification practical for
the paper's counter-examples.

Objectives (all minimized, all seed-shifted so every restart/sweep
explores a genuinely different landscape):

* ``sphere`` — convex bowl; sanity-check landscape.
* ``rastrigin`` — the classic multimodal trap; exercises random
  restarts.
* ``forecast`` — a tiny damped-AR(1) forecast model scored by RMSE
  against a seeded synthetic truth series: the Nimble@ITCEcnoGrid
  parameter-sweep weather-forecasting workload in miniature
  (tune ``bias``/``damping``/``nudging`` to minimize forecast error).
"""

from __future__ import annotations

import json
import math
import zlib
from typing import Optional

from ..core.services.kinds import ResultCheckError

__all__ = [
    "EVAL_FUNCTIONS",
    "EVAL_KIND",
    "check_eval_result",
    "evaluate",
    "execute_unit",
    "make_eval_spec",
    "validate_eval",
]

EVAL_KIND = "explore.eval"

#: Decimal places kept on objective values: enough that distinct params
#: stay distinct, few enough that the JSON stays tidy and the digest is
#: over a canonical rendering.
VALUE_DECIMALS = 12


def _unit_hash(*parts) -> float:
    """Deterministic pseudo-random float in [0, 1) from a key tuple."""
    key = ":".join(str(p) for p in parts).encode("utf-8")
    return (zlib.crc32(key) & 0xFFFFFFFF) / 4294967296.0


def _offsets(fn: str, seed: int, names) -> dict:
    """Per-parameter optimum shifts in [-1, 1] — the seed moves the
    landscape so independent sweeps/restarts are not redundant."""
    return {name: _unit_hash(fn, seed, name) * 2.0 - 1.0
            for name in names}


def _sphere(params: dict, seed: int) -> float:
    off = _offsets("sphere", seed, sorted(params))
    return sum((float(v) - off[k]) ** 2 for k, v in params.items())


def _rastrigin(params: dict, seed: int) -> float:
    off = _offsets("rastrigin", seed, sorted(params))
    total = 10.0 * len(params)
    for k, v in params.items():
        x = float(v) - off[k]
        total += x * x - 10.0 * math.cos(2.0 * math.pi * x)
    return total


#: Forecast-model constants: truth persistence, observation quality
#: (the forecaster sees an imperfect shock estimate), series length.
_TRUTH_PERSISTENCE = 0.82
_OBS_QUALITY = 0.6
_FORECAST_STEPS = 64


def _forecast(params: dict, seed: int) -> float:
    """RMSE of a damped-persistence forecast against a seeded synthetic
    truth series — minimize over bias/damping/nudging."""
    bias = float(params.get("bias", 0.0))
    damping = float(params.get("damping", 0.5))
    nudging = float(params.get("nudging", 0.0))
    truth = 0.0
    model = 0.0
    err = 0.0
    for t in range(_FORECAST_STEPS):
        shock = _unit_hash("forecast", seed, t) * 2.0 - 1.0
        truth = _TRUTH_PERSISTENCE * truth + shock
        model = (damping * model + nudging * (truth - model) + bias
                 + _OBS_QUALITY * shock)
        err += (model - truth) ** 2
    return math.sqrt(err / _FORECAST_STEPS)


EVAL_FUNCTIONS = {
    "sphere": _sphere,
    "rastrigin": _rastrigin,
    "forecast": _forecast,
}


def make_eval_spec(fn: str, params: dict, seed: int = 0,
                   ops_budget: float = 20_000.0,
                   tag: Optional[dict] = None) -> dict:
    """Build one evaluation spec. ``tag`` is ME-algorithm bookkeeping
    (restart/generation/candidate indices); it rides the spec untouched
    and is excluded from the result digest."""
    spec = {
        "kind": EVAL_KIND,
        "fn": str(fn),
        "params": {str(k): float(v) for k, v in sorted(params.items())},
        "seed": int(seed),
        "ops_budget": float(ops_budget),
    }
    if tag is not None:
        spec["tag"] = dict(tag)
    return spec


def validate_eval(spec: dict) -> None:
    """Raise ValueError if the spec is not an executable evaluation."""
    if spec.get("kind") != EVAL_KIND:
        raise ValueError(f"not an {EVAL_KIND} spec: {spec.get('kind')!r}")
    fn = spec.get("fn")
    if fn not in EVAL_FUNCTIONS:
        raise ValueError(f"unknown evaluation function {fn!r}")
    params = spec.get("params")
    if not isinstance(params, dict) or not params:
        raise ValueError("params must be a non-empty object")
    for key, value in params.items():
        if not isinstance(key, str) or isinstance(value, bool) \
                or not isinstance(value, (int, float)):
            raise ValueError(f"param {key!r} must map a string to a number")
    if "seed" not in spec:
        raise ValueError("evaluation spec missing 'seed'")
    if float(spec.get("ops_budget", 0.0)) <= 0:
        raise ValueError("ops_budget must be positive")


def _digest(fn: str, params: dict, seed: int, value: float) -> str:
    payload = json.dumps(
        {"fn": fn, "params": params, "seed": seed, "value": value},
        sort_keys=True, separators=(",", ":"))
    return format(zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF, "08x")


def evaluate(spec: dict) -> dict:
    """Execute one evaluation; deterministic in the spec alone."""
    validate_eval(spec)
    params = {str(k): float(v) for k, v in sorted(spec["params"].items())}
    seed = int(spec["seed"])
    fn = str(spec["fn"])
    value = round(EVAL_FUNCTIONS[fn](params, seed), VALUE_DECIMALS)
    return {
        "kind": EVAL_KIND,
        "fn": fn,
        "params": params,
        "seed": seed,
        "value": value,
        "digest": _digest(fn, params, seed, value),
    }


def execute_unit(unit: dict) -> dict:
    """Execute a unit dict as handed out by the scheduler (spec plus
    ``id``/``trace`` extras, which evaluation ignores)."""
    return evaluate({k: v for k, v in unit.items()
                     if k not in ("id", "trace")})


def check_eval_result(spec: dict, result: Optional[dict]) -> None:
    """The kind's §3.1 sanity check: recompute the evaluation and reject
    any completion whose value or digest disagrees."""
    if not isinstance(result, dict):
        raise ResultCheckError("evaluation result is not an object")
    expected = evaluate({k: v for k, v in spec.items()
                         if k not in ("id", "trace")})
    if result.get("value") != expected["value"]:
        raise ResultCheckError(
            f"value {result.get('value')!r} disagrees with independent "
            f"re-evaluation {expected['value']!r}")
    if result.get("digest") != expected["digest"]:
        raise ResultCheckError(
            f"digest {result.get('digest')!r} disagrees with independent "
            f"re-evaluation {expected['digest']!r}")
