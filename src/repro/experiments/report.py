"""Rendering experiment results as the paper's tables and figures.

Terminal-friendly output: each figure becomes a data table (time series
rows exactly as the figure plots them) plus an ASCII sparkline so the
*shape* — the thing the reproduction is accountable for — is visible in
the bench logs committed to EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Sequence

import numpy as np

from .metrics import SeriesBundle, coefficient_of_variation
from .sc98 import SC98Results, offset_to_clock

__all__ = [
    "sparkline",
    "format_rate",
    "render_series_table",
    "render_fig2",
    "render_fig3a",
    "render_fig3b",
    "render_headlines",
    "render_grid_criteria",
    "render_trace_summary",
    "render_live_summary",
]

_BARS = " .:-=+*#%@"


def sparkline(values: Sequence[float], log: bool = False) -> str:
    """One character per value, deeper shade = higher value."""
    vals = np.asarray(values, dtype=float)
    vals = np.where(np.isfinite(vals), vals, 0.0)
    if log:
        vals = np.log10(np.maximum(vals, 1.0))
    lo, hi = float(vals.min()), float(vals.max())
    if hi <= lo:
        return _BARS[0] * len(vals)
    idx = ((vals - lo) / (hi - lo) * (len(_BARS) - 1)).round().astype(int)
    return "".join(_BARS[i] for i in idx)


def format_rate(value: float) -> str:
    """Engineering format matching the paper's axis labels (e.g. 2.39E+09)."""
    if not math.isfinite(value):
        return "nan"
    return f"{value:.2E}"


def render_series_table(
    times: Sequence[float],
    columns: dict[str, Sequence[float]],
    every: int = 6,
    rate_format: bool = True,
) -> str:
    """A figure's data as rows: one line per ``every``-th bucket."""
    names = list(columns)
    header = "time of day | " + " | ".join(f"{n:>10}" for n in names)
    lines = [header, "-" * len(header)]
    for i in range(0, len(times), every):
        cells = []
        for name in names:
            v = float(columns[name][i])
            cells.append(f"{format_rate(v) if rate_format else f'{v:10.1f}':>10}")
        lines.append(f"{offset_to_clock(float(times[i])):>11} | " + " | ".join(cells))
    return "\n".join(lines)


def render_fig2(results: SC98Results) -> str:
    """Figure 2: total sustained performance, 5-minute averages."""
    s = results.series
    out = ["Figure 2: Sustained Application Performance (5-minute averages)"]
    out.append(f"  shape: [{sparkline(s.total_rate)}]")
    out.append(render_series_table(s.times, {"total iops": s.total_rate}))
    return "\n".join(out)


def render_fig3a(results: SC98Results, log: bool = False) -> str:
    """Figure 3a (linear) / 4a (log): per-infrastructure delivered rate."""
    s = results.series
    title = "Figure 4a (log scale)" if log else "Figure 3a"
    out = [f"{title}: Program Performance by Infrastructure Type"]
    for name in sorted(s.rate_by_infra):
        out.append(f"  {name:>9}: [{sparkline(s.rate_by_infra[name], log=log)}]"
                   f"  peak={format_rate(float(np.max(s.rate_by_infra[name])))}")
    out.append(render_series_table(s.times, dict(sorted(s.rate_by_infra.items()))))
    return "\n".join(out)


def render_fig3b(results: SC98Results, log: bool = False) -> str:
    """Figure 3b (linear) / 4b (log): host count by infrastructure."""
    s = results.series
    title = "Figure 4b (log scale)" if log else "Figure 3b"
    out = [f"{title}: Host Count by Infrastructure Type"]
    for name in sorted(s.hosts_by_infra):
        series = s.hosts_by_infra[name]
        out.append(f"  {name:>9}: [{sparkline(series, log=log)}]"
                   f"  max={float(np.max(series)):.0f}")
    out.append(render_series_table(
        s.times, dict(sorted(s.hosts_by_infra.items())), rate_format=False))
    return "\n".join(out)


def render_headlines(results: SC98Results) -> str:
    """The §4.1 quoted numbers, paper vs. this run."""
    peak_t, peak = results.peak()
    lines = [
        "Headline numbers (paper -> this run):",
        f"  peak 5-min rate      : 2.39E+09 -> {format_rate(peak)}"
        f" at {offset_to_clock(peak_t)}",
        f"  judging dip (11:00+) : 1.10E+09 -> {format_rate(results.judging_dip())}",
        f"  recovery (11:10+)    : 2.00E+09 -> {format_rate(results.recovery())}",
    ]
    return "\n".join(lines)


def render_grid_criteria(results: SC98Results) -> str:
    """§7: quantify 'consistent' — total CV vs per-infrastructure CVs —
    plus the pervasive/dependable evidence."""
    s = results.series
    skip = max(2, len(s.total_rate) // 12)  # ignore start-up transient
    total_cv = coefficient_of_variation(s.total_rate, skip=skip)
    lines = ["Grid criteria (§7):"]
    lines.append(f"  consistent: total-rate CV = {total_cv:.3f}")
    for name in sorted(s.rate_by_infra):
        cv = coefficient_of_variation(s.rate_by_infra[name], skip=skip)
        lines.append(f"    {name:>9} CV = {cv:.3f}")
    infra_count = sum(
        1 for v in s.rate_by_infra.values() if float(np.nansum(v)) > 0)
    lines.append(f"  pervasive: {infra_count} infrastructures delivered cycles")
    return "\n".join(lines)


def render_trace_summary(telemetry) -> str:
    """Aggregate span statistics for a traced run: per-name counts and
    non-ok outcome tallies, plus the interesting counters. Deterministic
    (simulated-time data only), so it can ride in diffed reports."""
    tracer = telemetry.tracer
    by_name: dict[str, int] = {}
    outcomes: dict[str, int] = {}
    for span in tracer.spans:
        key = span.name.split(" ")[0]
        by_name[key] = by_name.get(key, 0) + 1
        out = span.outcome or "open"
        if out not in ("ok", "open"):
            outcomes[out] = outcomes.get(out, 0) + 1
    lines = [f"Trace summary ({len(tracer.spans)} spans):"]
    for key in sorted(by_name):
        lines.append(f"  {key:<14} {by_name[key]:>7}")
    if outcomes:
        lines.append("  non-ok outcomes:")
        for out in sorted(outcomes):
            lines.append(f"    {out:<18} {outcomes[out]:>5}")
    reliable = telemetry.metrics.counters_matching("reliable.")
    faults = telemetry.metrics.counters_matching("fault.")
    for section, values in (("reliable", reliable), ("faults", faults)):
        if values:
            lines.append(f"  {section}: " + ", ".join(
                f"{k.split('.', 1)[1]}={v}" for k, v in values.items()))
    return "\n".join(lines)


def render_live_summary(report: dict) -> str:
    """Human-readable summary of a live-plane run (`repro live`).

    Takes the :meth:`repro.live.LiveReport.to_dict` document: per-node
    supervision and telemetry accounting, chaos/recovery evidence, the
    counter-example verification tally, and the invariant verdict.
    """
    nodes = report.get("nodes", {})
    lines = [f"Live world summary ({len(nodes)} nodes, "
             f"{report.get('duration', 0):.0f}s wall):"]
    lines.append(f"  {'node':<10} {'role':<10} {'state':<8} "
                 f"{'reports':>7} {'restarts':>8}  stop")
    for name in sorted(nodes):
        node = nodes[name]
        lines.append(
            f"  {name:<10} {node.get('role', '?'):<10} "
            f"{node.get('state', '?'):<8} {node.get('reports', 0):>7} "
            f"{node.get('restarts', 0):>8}  {node.get('stop_reason') or '-'}")
    for chaos in report.get("chaos", []):
        lines.append(f"  chaos: killed {chaos['node']} "
                     f"(pid {chaos['pid']}) at t={chaos['t']:.1f}s")
    sched = [n for n in nodes.values() if n.get("role") == "scheduler"]
    if sched:
        assigned = sum(n.get("stats", {}).get("units_assigned", 0) for n in sched)
        completed = sum(n.get("stats", {}).get("units_completed", 0) for n in sched)
        requeued = sum(n.get("stats", {}).get("units_requeued", 0) for n in sched)
        reaps = sum(n.get("stats", {}).get("reaps", 0) for n in sched)
        lines.append(f"  work: {assigned} assigned, {completed} completed, "
                     f"{requeued} requeued, {reaps} reap(s)")
    examples = report.get("counter_examples", [])
    verified = sum(1 for e in examples if e.get("verified"))
    lines.append(f"  counter-examples in persistent state: {len(examples)} "
                 f"({verified} verified)")
    violations = report.get("violations", [])
    if violations:
        lines.append("  INVARIANT VIOLATIONS:")
        lines.extend(f"    - {v}" for v in violations)
    else:
        lines.append("  invariants: all hold")
    return "\n".join(lines)
