"""Robustness statistics for the reproduction's headline claims.

A single seeded run shows the paper's shapes; this module shows they are
not one seed's luck: :func:`seed_sweep` replays the scenario across
seeds, and :func:`bootstrap_ci` puts nonparametric confidence intervals
on the derived quantities (dip ratio, recovery ratio, smoothness CV).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from .metrics import coefficient_of_variation
from .sc98 import SC98Config, SC98Results, build_sc98, clock_to_offset

__all__ = ["bootstrap_ci", "SweepOutcome", "seed_sweep", "shape_metrics"]


def bootstrap_ci(
    values: Sequence[float],
    statistic: Callable[[np.ndarray], float] = np.mean,
    n_boot: int = 2000,
    alpha: float = 0.05,
    seed: int = 0,
) -> tuple[float, float, float]:
    """(point estimate, lower, upper) percentile-bootstrap interval."""
    data = np.asarray(values, dtype=float)
    if data.size == 0:
        raise ValueError("bootstrap over an empty sample")
    rng = np.random.default_rng(seed)
    point = float(statistic(data))
    if data.size == 1:
        return point, point, point
    stats = np.empty(n_boot)
    for i in range(n_boot):
        sample = data[rng.integers(0, data.size, size=data.size)]
        stats[i] = statistic(sample)
    lower = float(np.quantile(stats, alpha / 2))
    upper = float(np.quantile(stats, 1 - alpha / 2))
    return point, lower, upper


@dataclass
class SweepOutcome:
    """Per-seed shape metrics from one scenario replay."""

    seed: int
    peak: float
    dip: float
    recovery: float
    total_cv: float
    median_part_cv: float

    @property
    def dip_ratio(self) -> float:
        """Judging dip relative to the peak (paper: 1.1/2.39 ≈ 0.46)."""
        return self.dip / self.peak if self.peak else float("nan")

    @property
    def recovery_ratio(self) -> float:
        """Recovery relative to the peak (paper: 2.0/2.39 ≈ 0.84)."""
        return self.recovery / self.peak if self.peak else float("nan")


def shape_metrics(results: SC98Results) -> SweepOutcome:
    """Extract the seed-comparable shape quantities from one run."""
    s = results.series
    skip = max(2, len(s.total_rate) // 12)
    part_cvs = [coefficient_of_variation(v, skip=skip)
                for v in s.rate_by_infra.values()]
    _, peak = results.peak()
    return SweepOutcome(
        seed=results.config.seed,
        peak=peak,
        dip=results.judging_dip(),
        recovery=results.recovery(),
        total_cv=coefficient_of_variation(s.total_rate, skip=skip),
        median_part_cv=float(np.median(part_cvs)) if part_cvs else float("nan"),
    )


def seed_sweep(
    seeds: Sequence[int],
    scale: float = 0.15,
    duration: Optional[float] = None,
    config_overrides: Optional[dict] = None,
) -> list[SweepOutcome]:
    """Replay the SC98 scenario once per seed, collecting shape metrics."""
    outcomes = []
    for seed in seeds:
        kwargs = dict(scale=scale, seed=seed)
        if duration is not None:
            kwargs["duration"] = duration
        if config_overrides:
            kwargs.update(config_overrides)
        results = build_sc98(SC98Config(**kwargs)).run()
        outcomes.append(shape_metrics(results))
    return outcomes
