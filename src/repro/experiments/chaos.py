"""The chaos scenario matrix: attacking the stack the way SC98 did.

Three profiles, each a :class:`~repro.simgrid.faults.FaultPlan` against a
reduced Figure-1 world running *real* search kernels on small Ramsey
targets (n=4, k in {8, 9} — counter-examples are abundant below
R(4,4)=18, so persistent state actually accumulates and its survival can
be asserted):

* ``crash-heavy`` — machines die and reboot mid-run, including a Gossip
  mid-sync and the persistent state manager itself; recovery must lose
  no stored counter-example;
* ``partition-heavy`` — the network splits into site cliques twice and
  heals; the Gossip pool must re-merge (``resync_time``);
* ``infra-loss`` — whole infrastructures go dark and return (the Legion
  anecdote of §5), under duplicated/delayed traffic.

Every run is fully deterministic under its seed: the same
:class:`ChaosConfig` twice produces byte-identical reports, which is what
the ``chaos-smoke`` CI job asserts. Run one from the command line::

    PYTHONPATH=src python -m repro.experiments.chaos --profile crash-heavy
"""

from __future__ import annotations

import argparse
import json
from dataclasses import dataclass, field
from typing import Generator, Optional

from ..core.component import Component
from ..core.services.persistent import ValidationError
from ..core.simdriver import SimDriver
from ..core.telemetry import Telemetry
from ..infra.netsolve import NetSolveFarm
from ..infra.unixpool import UnixPool
from ..ramsey.client import RealEngine
from ..ramsey.verify import verify_counter_example_object
from ..simgrid.engine import Environment
from ..simgrid.faults import FaultPlan, HostCrash
from ..simgrid.network import Network
from ..simgrid.rand import RngStreams
from .scenario import ServiceCore, build_core, model_client_factory

__all__ = ["ChaosConfig", "ChaosReport", "ChaosWorld", "PROFILES",
           "build_plan", "run_chaos", "run_chaos_matrix"]

PROFILES = ("crash-heavy", "partition-heavy", "infra-loss")


@dataclass(frozen=True)
class ChaosConfig:
    """Knobs for one chaos run (defaults sized for tests and CI)."""

    seed: int = 4242
    duration: float = 2400.0
    #: Small targets with plentiful counter-examples (R(4,4)=18);
    #: scheduler i mints units for ks[i].
    n: int = 4
    ks: tuple[int, ...] = (8, 9)
    n_schedulers: int = 2
    n_gossips: int = 3
    unit_ops_budget: float = 4e5
    work_period: float = 20.0
    report_period: float = 60.0
    gossip_poll_period: float = 60.0
    gossip_sync_period: float = 45.0
    n_workstations: int = 4
    n_mpp_nodes: int = 2
    n_netsolve: int = 2
    engine_max_steps: int = 400
    #: Cadence of the post-heal convergence monitor.
    sample_period: float = 15.0


def build_plan(profile: str, cfg: ChaosConfig) -> FaultPlan:
    """The deterministic fault schedule for one profile."""
    plan = FaultPlan()
    if profile == "crash-heavy":
        # Background packet loss while machines die and reboot; the
        # Gossip crash lands mid-sync, the persistent-store crash tests
        # that reliable checkpoints ride out the outage.
        #
        # The t=0.02s crash lands between a client's first HELLO leaving
        # and the scheduler's reliable SCH_WORK reply arriving (latency
        # floor ~50 ms), so the assignment is guaranteed to retransmit
        # into a dead host, give up, and requeue — under tracing, that is
        # the fault → drop → retransmit → give-up → requeue span chain
        # the observability smoke asserts on.
        plan.crash(at=0.02, host="unix-ws0", reboot_after=120.0)
        plan.chaos(at=250.0, duration=600.0, drop=0.05)
        plan.crash(at=300.0, host="gossip1", reboot_after=240.0)
        plan.crash(at=350.0, host="unix-ws0", reboot_after=300.0)
        plan.crash(at=500.0, host="unix-ws1", reboot_after=400.0)
        plan.crash(at=650.0, host="unix-mpp0", reboot_after=300.0)
        plan.crash(at=700.0, host="netsolve-0", reboot_after=350.0)
        plan.crash(at=800.0, host="pst0", reboot_after=180.0)
    elif profile == "partition-heavy":
        plan.chaos(at=250.0, duration=800.0, delay=0.2, delay_max=3.0)
        plan.partition(at=300.0,
                       groups=[["ucsd", "paci", "paci-mpp"], ["utk", "uva"]],
                       heal_after=400.0)
        plan.partition(at=900.0,
                       groups=[["ucsd", "utk"], ["uva", "paci", "paci-mpp"]],
                       heal_after=300.0)
    elif profile == "infra-loss":
        plan.chaos(at=300.0, duration=500.0, duplicate=0.15, delay=0.1,
                   delay_max=2.0)
        plan.outage(at=400.0, infra="netsolve", restore_after=500.0)
        plan.outage(at=900.0, infra="unix", restore_after=400.0)
    else:
        raise ValueError(f"unknown chaos profile {profile!r} "
                         f"(want one of {PROFILES})")
    return plan


@dataclass
class ChaosReport:
    """Recovery metrics for one run; ``to_dict`` is JSON- and
    diff-stable so same-seed reruns compare byte-identical."""

    profile: str
    seed: int
    duration: float
    faults: dict = field(default_factory=dict)
    counter_example_keys: list[str] = field(default_factory=list)
    counter_examples_preserved: int = 0
    counter_examples_corrupted: int = 0
    work_lost: int = 0
    units_assigned: int = 0
    units_completed: int = 0
    resync_time: Optional[float] = None
    clients_started: int = 0
    clients_lost: int = 0
    active_hosts_end: int = 0
    reliable: dict = field(default_factory=dict)
    network: dict = field(default_factory=dict)
    persistent: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "profile": self.profile,
            "seed": self.seed,
            "duration": self.duration,
            "faults": dict(self.faults),
            "counter_example_keys": list(self.counter_example_keys),
            "counter_examples_preserved": self.counter_examples_preserved,
            "counter_examples_corrupted": self.counter_examples_corrupted,
            "work_lost": self.work_lost,
            "units_assigned": self.units_assigned,
            "units_completed": self.units_completed,
            "resync_time": self.resync_time,
            "clients_started": self.clients_started,
            "clients_lost": self.clients_lost,
            "active_hosts_end": self.active_hosts_end,
            "reliable": dict(self.reliable),
            "network": dict(self.network),
            "persistent": dict(self.persistent),
        }


class ChaosWorld:
    """A reduced EveryWare world with a fault plan armed against it."""

    def __init__(
        self,
        profile: str,
        cfg: Optional[ChaosConfig] = None,
        telemetry: Optional[Telemetry] = None,
        trace: bool = False,
    ) -> None:
        self.profile = profile
        self.cfg = cfg = cfg or ChaosConfig()
        self.env = Environment()
        self.streams = RngStreams(seed=cfg.seed)
        # One shared metrics registry + tracer for the whole world; every
        # driver inherits it through the network (``trace=True`` turns the
        # causal tracer on — note the trace header changes wire bytes, so
        # traced and untraced runs diverge; determinism holds per mode).
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        if trace:
            self.telemetry.tracer.enabled = True
        self.network = Network(self.env, self.streams,
                               base_latency=0.05, jitter=0.2)
        self.network.attach_telemetry(self.telemetry)
        self.core: ServiceCore = build_core(
            self.env, self.network, self.streams,
            n_schedulers=cfg.n_schedulers,
            n_gossips=cfg.n_gossips,
            n_loggers=1,
            n_persistents=1,
            n=cfg.n,
            ks=list(cfg.ks),
            unit_ops_budget=cfg.unit_ops_budget,
            report_period=cfg.report_period,
            gossip_poll_period=cfg.gossip_poll_period,
            gossip_sync_period=cfg.gossip_sync_period,
        )
        factory = model_client_factory(
            self.core,
            work_period=cfg.work_period,
            report_period=cfg.report_period,
            engine_factory=lambda: RealEngine(
                max_steps_per_advance=cfg.engine_max_steps),
        )
        self.unix = UnixPool(
            self.env, self.network, self.streams, factory, site="paci",
            n_workstations=cfg.n_workstations,
            n_mpp_nodes=cfg.n_mpp_nodes,
            with_tera_mta=False,
        )
        self.netsolve = NetSolveFarm(
            self.env, self.network, self.streams, factory, site="utk",
            n_servers=cfg.n_netsolve,
        )
        self.adapters = [self.unix, self.netsolve]
        for adapter in self.adapters:
            adapter.deploy()
        self.network.start()

        self.plan = build_plan(profile, cfg)
        self.plan.install(self.env, self.network, adapters=self.adapters)
        self._arm_service_supervisor()
        self.resync_time: Optional[float] = None
        self._arm_resync_monitor()

    # -- service supervision ------------------------------------------------
    def _service_components(self) -> dict[str, tuple[Component, str]]:
        m: dict[str, tuple[Component, str]] = {}
        for i, g in enumerate(self.core.gossips):
            m[f"gossip{i}"] = (g, "gossip")
        for i, s in enumerate(self.core.schedulers):
            m[f"sched{i}"] = (s, "sched")
        for i, lg in enumerate(self.core.loggers):
            m[f"logger{i}"] = (lg, "log")
        for i, p in enumerate(self.core.persistents):
            m[f"pst{i}"] = (p, "pst")
        return m

    def _arm_service_supervisor(self) -> None:
        """Service hosts have no adapter to relaunch their process after
        a planned reboot, so schedule the restart explicitly — the
        component object survives with all of its in-memory state, which
        is exactly what the crash-recovery assertions exercise."""
        services = self._service_components()
        for inj in self.plan.injectors:
            if not isinstance(inj, HostCrash) or inj.reboot_after is None:
                continue
            entry = services.get(inj.host)
            if entry is None:
                continue
            component, port = entry
            self.env.process(self._relaunch_service(
                inj.host, component, port, inj.at + inj.reboot_after + 1.0))

    def _relaunch_service(self, host_name: str, component: Component,
                          port: str, at: float) -> Generator:
        yield self.env.timeout(at)
        host = self.network.host(host_name)
        if not host.up:
            return
        driver = SimDriver(self.env, self.network, host, port,
                           component, self.streams)
        driver.start()
        self.core.service_drivers[driver.endpoint.contact] = driver

    # -- recovery monitoring ---------------------------------------------------
    def _gossips_converged(self) -> bool:
        """All live Gossips agree on the pool membership."""
        views = []
        for contact in self.core.gossip_contacts:
            driver = self.core.service_drivers.get(contact)
            if driver is None or not driver.running:
                continue
            gossip = driver.component
            if getattr(gossip, "clique", None) is None:
                return False
            views.append(tuple(sorted(gossip.clique.members)))
        return len(views) >= 2 and len(set(views)) == 1

    def _arm_resync_monitor(self) -> None:
        heal_at = self.plan.last_heal_time()
        if heal_at is None or heal_at >= self.cfg.duration:
            return

        def monitor() -> Generator:
            yield self.env.timeout(heal_at)
            while self.env.now < self.cfg.duration:
                yield self.env.timeout(self.cfg.sample_period)
                if self._gossips_converged():
                    self.resync_time = self.env.now - heal_at
                    return

        self.env.process(monitor())

    # -- running / reporting ------------------------------------------------
    def run(self) -> "ChaosReport":
        self.env.run(until=self.cfg.duration)
        return self.report()

    def report(self) -> "ChaosReport":
        pst = self.core.persistents[0]
        keys = [k for k in pst.backend.keys() if k.startswith("ramsey/")]
        preserved = corrupted = 0
        for key in keys:
            obj = pst.backend.get(key)
            try:
                verify_counter_example_object(obj or {})
                preserved += 1
            except ValidationError:
                corrupted += 1

        reliable = {"tracked": 0, "retries": 0, "resolved": 0, "give_ups": 0}
        drivers = list(self.core.service_drivers.values())
        for adapter in self.adapters:
            drivers.extend(adapter.drivers[name]
                           for name in sorted(adapter.drivers))
        for driver in drivers:
            tracker = driver.tracker
            if tracker is None:
                continue
            reliable["tracked"] += tracker.tracked
            reliable["retries"] += tracker.retries
            reliable["resolved"] += tracker.resolved
            reliable["give_ups"] += tracker.give_ups

        net = self.network.stats
        fs = self.plan.stats
        return ChaosReport(
            profile=self.profile,
            seed=self.cfg.seed,
            duration=self.cfg.duration,
            faults={
                "crashes": fs.crashes, "reboots": fs.reboots,
                "partitions": fs.partitions, "heals": fs.heals,
                "outages": fs.outages, "restores": fs.restores,
                "chaos_windows": fs.chaos_windows, "skipped": fs.skipped,
            },
            counter_example_keys=sorted(keys),
            counter_examples_preserved=preserved,
            counter_examples_corrupted=corrupted,
            work_lost=sum(s.stats.units_requeued for s in self.core.schedulers),
            units_assigned=sum(s.stats.units_assigned for s in self.core.schedulers),
            units_completed=sum(s.stats.units_completed for s in self.core.schedulers),
            resync_time=self.resync_time,
            clients_started=sum(a.clients_started for a in self.adapters),
            clients_lost=sum(a.clients_lost for a in self.adapters),
            active_hosts_end=sum(a.active_host_count() for a in self.adapters),
            reliable=reliable,
            network={
                "delivered": net.delivered,
                "dropped_down": net.dropped_down,
                "dropped_partition": net.dropped_partition,
                "dropped_fault": net.dropped_fault,
                "duplicated_fault": net.duplicated_fault,
                "delayed_fault": net.delayed_fault,
            },
            persistent={"stores": pst.stats.stores, "denials": pst.stats.denials},
        )


def run_chaos(
    profile: str,
    cfg: Optional[ChaosConfig] = None,
    telemetry: Optional[Telemetry] = None,
    trace: bool = False,
) -> ChaosReport:
    """Build, attack, and run one world; return its recovery report.

    Pass a :class:`Telemetry` (or ``trace=True``) to collect the world's
    metrics/spans — e.g. ``repro trace --scenario chaos``."""
    return ChaosWorld(profile, cfg, telemetry=telemetry, trace=trace).run()


def run_chaos_matrix(cfg: Optional[ChaosConfig] = None) -> dict[str, dict]:
    """Run every profile under the same config; reports keyed by profile."""
    return {profile: run_chaos(profile, cfg).to_dict() for profile in PROFILES}


def main(argv: Optional[list[str]] = None) -> None:
    parser = argparse.ArgumentParser(
        description="Run the chaos scenario matrix and print JSON reports.")
    parser.add_argument("--profile", choices=PROFILES + ("all",),
                        default="all")
    parser.add_argument("--seed", type=int, default=4242)
    parser.add_argument("--duration", type=float, default=2400.0)
    args = parser.parse_args(argv)
    cfg = ChaosConfig(seed=args.seed, duration=args.duration)
    if args.profile == "all":
        out = run_chaos_matrix(cfg)
    else:
        out = {args.profile: run_chaos(args.profile, cfg).to_dict()}
    print(json.dumps(out, sort_keys=True, indent=2))


if __name__ == "__main__":
    main()
