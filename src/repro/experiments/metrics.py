"""Measurement plane for the SC98-style experiments.

The paper reports five-minute averages of delivered integer operations
(Figs. 2–4) computed from its logging facilities; this module does the
same: performance records accumulated by the logging servers are bucketed
into fixed windows, per infrastructure and in total, and host counts are
sampled by a collector process that walks the adapters on the same
cadence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Iterable, Optional

import numpy as np

from ..core.services.logging import LoggingServer
from ..infra.base import InfraAdapter
from ..simgrid.engine import Environment

__all__ = ["TimeBuckets", "HostCountSampler", "collect_rate_series",
           "coefficient_of_variation", "SeriesBundle"]


class TimeBuckets:
    """Fixed-width accumulation buckets over [start, start + n*width)."""

    def __init__(self, start: float, width: float, n: int) -> None:
        if width <= 0 or n <= 0:
            raise ValueError("width and n must be positive")
        self.start = start
        self.width = width
        self.n = n
        self.sums = np.zeros(n)
        self.counts = np.zeros(n, dtype=int)

    def index_for(self, t: float) -> Optional[int]:
        idx = int((t - self.start) // self.width)
        return idx if 0 <= idx < self.n else None

    def add(self, t: float, value: float) -> bool:
        idx = self.index_for(t)
        if idx is None:
            return False
        self.sums[idx] += value
        self.counts[idx] += 1
        return True

    def add_many(self, ts: Iterable[float], values: Iterable[float]) -> int:
        """Accumulate many (t, value) pairs in one vectorized pass.

        Returns how many landed in range. Equivalent to calling
        :meth:`add` per pair — including bit-identical float sums:
        ``np.add.at`` is unbuffered and applies its operands in element
        order, so each bucket receives its values in the same order the
        scalar loop would have added them.
        """
        ts = np.asarray(ts, dtype=float)
        values = np.asarray(values, dtype=float)
        if ts.shape != values.shape:
            raise ValueError("ts and values must have the same length")
        if ts.size == 0:
            return 0
        idx = ((ts - self.start) // self.width).astype(int)
        mask = (idx >= 0) & (idx < self.n)
        idx = idx[mask]
        np.add.at(self.sums, idx, values[mask])
        np.add.at(self.counts, idx, 1)
        return int(idx.size)

    def times(self) -> np.ndarray:
        """Bucket start times."""
        return self.start + self.width * np.arange(self.n)

    def rates(self) -> np.ndarray:
        """Per-bucket sum / width — e.g. ops accumulated => ops/second."""
        return self.sums / self.width

    def means(self) -> np.ndarray:
        """Per-bucket mean of added values (NaN for empty buckets)."""
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(self.counts > 0, self.sums / self.counts, np.nan)


@dataclass
class SeriesBundle:
    """Everything the figures need, keyed per infrastructure."""

    times: np.ndarray
    total_rate: np.ndarray
    rate_by_infra: dict[str, np.ndarray]
    hosts_by_infra: dict[str, np.ndarray]

    def infra_names(self) -> list[str]:
        return sorted(set(self.rate_by_infra) | set(self.hosts_by_infra))


class HostCountSampler:
    """Simulation process sampling adapters' active host counts."""

    def __init__(
        self,
        env: Environment,
        adapters: Iterable[InfraAdapter],
        start: float,
        width: float,
        n: int,
    ) -> None:
        self.env = env
        self.adapters = list(adapters)
        self.buckets = {
            a.name: TimeBuckets(start, width, n) for a in self.adapters
        }
        self._start = start
        self._width = width
        self._n = n

    def start_sampling(self, samples_per_bucket: int = 5) -> None:
        self.env.process(self._run(samples_per_bucket))

    def _run(self, samples_per_bucket: int) -> Generator:
        interval = self._width / samples_per_bucket
        if self.env.now < self._start:
            yield self.env.timeout(self._start - self.env.now)
        end = self._start + self._width * self._n
        while self.env.now < end:
            for adapter in self.adapters:
                self.buckets[adapter.name].add(
                    self.env.now, float(adapter.active_host_count())
                )
            yield self.env.timeout(interval)

    def counts_by_infra(self) -> dict[str, np.ndarray]:
        """Average active host count per bucket, per infrastructure."""
        out = {}
        for name, buckets in self.buckets.items():
            means = buckets.means()
            out[name] = np.nan_to_num(means, nan=0.0)
        return out


def collect_rate_series(
    loggers: Iterable[LoggingServer],
    start: float,
    width: float,
    n: int,
) -> tuple[np.ndarray, dict[str, np.ndarray]]:
    """Bucket delivered-ops records from the logging servers.

    Returns (total ops/sec series, per-infra ops/sec series). Records are
    ``kind == 'perf'`` with ``data = {ops, infra, ...}``; each record's ops
    are attributed to the bucket of its server-side receive stamp, exactly
    as the paper's report facilities logged client reports.
    """
    # Gather per-record scalars first (in server/record order), then land
    # them in the bucket arrays in one add_many per series: the batch is
    # ~10x faster than one indexed numpy add per record and sums each
    # bucket in the same record order, so the figures are bit-identical.
    stamps: list[float] = []
    opses: list[float] = []
    by_infra: dict[str, tuple[list[float], list[float]]] = {}
    for server in loggers:
        for rec in server.by_kind("perf"):
            ops = float(rec.data.get("ops", 0.0))
            infra = str(rec.data.get("infra", "unknown"))
            stamps.append(rec.stamp)
            opses.append(ops)
            entry = by_infra.get(infra)
            if entry is None:
                entry = by_infra[infra] = ([], [])
            entry[0].append(rec.stamp)
            entry[1].append(ops)
    total = TimeBuckets(start, width, n)
    total.add_many(stamps, opses)
    per_infra: dict[str, TimeBuckets] = {}
    for infra, (its, iops) in by_infra.items():
        buckets = per_infra[infra] = TimeBuckets(start, width, n)
        buckets.add_many(its, iops)
    return total.rates(), {name: b.rates() for name, b in per_infra.items()}


def coefficient_of_variation(series: np.ndarray, skip: int = 0) -> float:
    """CV (std/mean) of a rate series — the paper's §7 "consistent"
    criterion quantified: the total should vary far less than the parts."""
    values = np.asarray(series, dtype=float)[skip:]
    values = values[np.isfinite(values)]
    if len(values) == 0:
        return float("nan")
    mean = values.mean()
    if mean == 0:
        return float("inf")
    return float(values.std() / mean)
