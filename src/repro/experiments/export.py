"""Export experiment results to CSV/JSON for external plotting.

The paper's figures are Excel-style time-series charts; these exports
put the regenerated series in a form any plotting tool ingests: one
rates CSV (total + per-infrastructure iops), one host-count CSV, and a
headline JSON with the §4.1 numbers.
"""

from __future__ import annotations

import csv
import io
import json
import os

from .sc98 import SC98Results, offset_to_clock

__all__ = ["rates_csv", "hosts_csv", "headlines_json", "write_results"]


def rates_csv(results: SC98Results) -> str:
    """CSV: time offset, wall clock, total iops, per-infrastructure iops."""
    s = results.series
    names = sorted(s.rate_by_infra)
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["offset_s", "clock", "total_iops", *names])
    for i, t in enumerate(s.times):
        writer.writerow([
            f"{float(t):.0f}",
            offset_to_clock(float(t)),
            f"{float(s.total_rate[i]):.6g}",
            *[f"{float(s.rate_by_infra[n][i]):.6g}" for n in names],
        ])
    return buf.getvalue()


def hosts_csv(results: SC98Results) -> str:
    """CSV: time offset, wall clock, active host count per infrastructure."""
    s = results.series
    names = sorted(s.hosts_by_infra)
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["offset_s", "clock", *names])
    for i, t in enumerate(s.times):
        writer.writerow([
            f"{float(t):.0f}",
            offset_to_clock(float(t)),
            *[f"{float(s.hosts_by_infra[n][i]):.3g}" for n in names],
        ])
    return buf.getvalue()


def headlines_json(results: SC98Results) -> str:
    peak_t, peak = results.peak()
    payload = {
        "paper": {"peak": 2.39e9, "judging_dip": 1.1e9, "recovery": 2.0e9},
        "run": {
            "peak": peak,
            "peak_clock": offset_to_clock(peak_t),
            "judging_dip": results.judging_dip(),
            "recovery": results.recovery(),
            "scale": results.config.scale,
            "seed": results.config.seed,
        },
    }
    return json.dumps(payload, indent=2, allow_nan=True)


def write_results(results: SC98Results, directory: str) -> list[str]:
    """Write all exports under ``directory``; returns the paths written."""
    os.makedirs(directory, exist_ok=True)
    outputs = {
        "rates.csv": rates_csv(results),
        "hosts.csv": hosts_csv(results),
        "headlines.json": headlines_json(results),
    }
    paths = []
    for name, text in outputs.items():
        path = os.path.join(directory, name)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
        paths.append(path)
    return paths
