"""Big-pool world builder: thousand-host Gossip pools for scale runs.

The paper ran EveryWare on a few dozen machines; the point of the
digest/delta sync plane (DESIGN §15) is that the *same* Gossip code keeps
working when the pool grows by two orders of magnitude. This module
builds those worlds: ``build_pool`` stands up 64–10,000 hosts spread
across simulated sites, one :class:`~repro.core.gossip.GossipServer` per
host, pre-seeded to a converged state so experiments measure *incremental
divergence* (what anti-entropy is for), not a start-up flood.

Scale choices worth knowing about:

* every server is constructed with the full contact list as its
  ``well_known`` universe, and the clique token cadence is stretched so
  membership is established by one initial token round — at a thousand
  nodes the O(pool)-sized token is the one message that cannot ride the
  digest plane, so it is sent rarely and liveness is tracked by the SWIM
  suspicion tables instead;
* seeded records are **shared** frozen :class:`StateRecord` objects
  (memory stays O(hosts + records), not O(hosts x records));
* ``run_until_converged`` drives the simulation in sync-period steps and
  declares convergence when every member's digest root agrees — the same
  O(1) root comparison the protocol itself uses;
* ``export_state`` returns a deterministic JSON-able snapshot, so two
  same-seed runs must produce byte-identical exports (the reproducibility
  gate used by ``benchmarks/bench_gossip.py`` and the CI gossip-smoke
  job).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

from ..core.gossip.server import GossipServer
from ..core.gossip.state import ComparatorRegistry, StateRecord
from ..core.simdriver import SimDriver
from ..simgrid.engine import Environment
from ..simgrid.faults import FaultPlan
from ..simgrid.host import Host, HostSpec
from ..simgrid.load import ConstantLoad
from ..simgrid.network import Network
from ..simgrid.rand import RngStreams

__all__ = [
    "PoolConfig",
    "BigPool",
    "build_pool",
    "inject_write",
    "run_until_converged",
    "export_state",
    "export_json",
    "gossip_rollup",
    "churn_plan",
]


@dataclass
class PoolConfig:
    """Knobs for a scale world. Defaults build a 1,024-host pool."""

    n_hosts: int = 1024
    n_sites: int = 16
    #: Pre-seeded (already converged) state records per member.
    n_records: int = 32
    seed: int = 11
    sync_mode: str = "digest"
    fanout: int = 2
    shard_size: int = 32
    intershard_period: int = 2
    poll_period: float = 30.0
    sync_period: float = 10.0
    #: Clique cadence: one probe/token round near t=0 establishes the
    #: membership view; after that SWIM owns liveness. Keep both larger
    #: than the experiment horizon unless clique dynamics are the thing
    #: under test.
    token_period: float = 600.0
    token_timeout: float = 1500.0
    jitter: float = 0.0
    #: Windowed-engine lookahead; None runs the plain serial loop.
    window: Optional[float] = None


@dataclass
class BigPool:
    """A built world plus handles to every pool member."""

    config: PoolConfig
    env: Environment
    network: Network
    streams: RngStreams
    servers: list[GossipServer] = field(default_factory=list)
    contacts: list[str] = field(default_factory=list)
    hosts: list[Host] = field(default_factory=list)
    drivers: list[SimDriver] = field(default_factory=list)
    seeded: list[StateRecord] = field(default_factory=list)

    def run(self, until: float) -> None:
        if self.config.window is not None:
            self.env.run_windowed(until, window=self.config.window)
        else:
            self.env.run(until=until)

    def active_servers(self) -> list[GossipServer]:
        """Members whose driver process is still alive — a crashed host's
        frozen digest must not count against pool convergence."""
        return [g for g, d in zip(self.servers, self.drivers) if d.running]

    def roots(self) -> list[int]:
        return [g.digest.root for g in self.active_servers()]

    def converged(self) -> bool:
        roots = self.roots()
        return all(r == roots[0] for r in roots)


def build_pool(config: Optional[PoolConfig] = None, **overrides) -> BigPool:
    """Stand up the world described by ``config`` (keyword overrides
    build a config in place: ``build_pool(n_hosts=256)``)."""
    if config is None:
        config = PoolConfig(**overrides)
    elif overrides:
        raise ValueError("pass either a PoolConfig or keyword overrides")
    env = Environment()
    streams = RngStreams(seed=config.seed)
    network = Network(env, streams, jitter=config.jitter)
    pool = BigPool(config=config, env=env, network=network, streams=streams)
    width = len(str(max(config.n_hosts - 1, 1)))
    contacts = [f"pg{i:0{width}d}/gossip" for i in range(config.n_hosts)]
    comparators = ComparatorRegistry()
    records = [
        StateRecord(mtype=f"POOL_STATE_{j:04d}",
                    data={"v": j, "blob": "x" * 48},
                    stamp=0.0, origin="seed/gossip", seq=1)
        for j in range(config.n_records)
    ]
    for i in range(config.n_hosts):
        name = f"pg{i:0{width}d}"
        host = Host(env, HostSpec(
            name=name,
            site=f"site{i % config.n_sites:02d}",
            infra="pool",
            load_model=ConstantLoad(1.0),
        ), streams)
        network.add_host(host)
        pool.hosts.append(host)
        server = GossipServer(
            name,
            well_known=contacts,
            comparators=comparators,
            poll_period=config.poll_period,
            sync_period=config.sync_period,
            token_period=config.token_period,
            token_timeout=config.token_timeout,
            sync_mode=config.sync_mode,
            fanout=config.fanout,
            shard_size=config.shard_size,
            intershard_period=config.intershard_period,
        )
        # Shared record objects: every member starts converged.
        server.seed_records(records)
        driver = SimDriver(env, network, host, "gossip", server, streams)
        driver.start()
        pool.drivers.append(driver)
        pool.servers.append(server)
    pool.contacts = contacts
    pool.seeded = records
    return pool


def inject_write(pool: BigPool, node: int = 0, tag: str = "POOL_HOT",
                 seq: int = 1) -> StateRecord:
    """Make one member adopt a fresh record (a local write), hot for
    rumor-mongering. Everything downstream — how long until every root
    agrees again — is the measurement."""
    server = pool.servers[node % len(pool.servers)]
    record = StateRecord(
        mtype=tag,
        data={"writer": server.name, "seq": seq},
        stamp=pool.env.now,
        origin=f"{server.name}/gossip",
        seq=seq,
    )
    server.seed_records([record], hot=True)
    return record


def run_until_converged(
    pool: BigPool,
    deadline: float,
    step: Optional[float] = None,
) -> dict:
    """Advance the simulation until every member's digest root agrees
    (checked once per ``step``, default the sync period). Returns
    ``{"converged", "time", "rounds"}`` with time/rounds measured from
    the call, in sync-round units."""
    step = step if step is not None else pool.config.sync_period
    start = pool.env.now
    while pool.env.now < start + deadline:
        pool.run(until=min(pool.env.now + step, start + deadline))
        if pool.converged():
            elapsed = pool.env.now - start
            return {"converged": True, "time": elapsed,
                    "rounds": elapsed / pool.config.sync_period}
    elapsed = pool.env.now - start
    return {"converged": pool.converged(), "time": elapsed,
            "rounds": elapsed / pool.config.sync_period}


_STAT_FIELDS = (
    "polls_sent", "states_received", "updates_sent", "records_adopted",
    "comparisons", "evictions", "syncs_sent", "digest_rounds",
    "digests_sent", "digest_acks", "deltas_sent", "delta_records",
    "sync_comparisons", "bytes_sent", "bytes_full_equiv",
    "tombstones_created", "tombstones_applied", "suspicions",
    "refutations", "deaths",
)


def export_state(pool: BigPool) -> dict:
    """Deterministic snapshot of the pool: per-member digest identity and
    the aggregate protocol counters. Two same-seed runs of the same
    scenario must serialize this identically (``json.dumps(...,
    sort_keys=True)``) — the reproducibility gate."""
    members = [
        {"contact": contact, "root": server.digest.root,
         "count": server.digest.count,
         "up": driver.running,
         "members": len(server.pool_members()),
         "registry": sorted(server.registry),
         "tombstones": sorted(server.tombstones)}
        for contact, server, driver in zip(
            pool.contacts, pool.servers, pool.drivers)
    ]
    totals = {name: sum(getattr(g.stats, name) for g in pool.servers)
              for name in _STAT_FIELDS}
    totals["bytes_saved"] = sum(g.stats.bytes_saved for g in pool.servers)
    return {
        "n_hosts": pool.config.n_hosts,
        "seed": pool.config.seed,
        "sync_mode": pool.config.sync_mode,
        "now": pool.env.now,
        "members": members,
        "totals": totals,
    }


def export_json(pool: BigPool) -> str:
    return json.dumps(export_state(pool), sort_keys=True,
                      separators=(",", ":"))


def gossip_rollup(servers: list[GossipServer]) -> dict:
    """Pool-wide sync-plane rollup in the shape ``POST /telemetry/gossip``
    accepts (:meth:`repro.control.client.GatewayClient.publish_gossip`):
    aggregate GossipStats plus per-state suspicion transition counts, so
    a live gateway's Prometheus ``/metrics`` can expose the anti-entropy
    plane of a pool running in another process."""
    suspicion: dict[str, int] = {}
    for server in servers:
        if server.suspicion is None:
            continue
        for state, count in server.suspicion.transitions.items():
            suspicion[state] = suspicion.get(state, 0) + count
    return {
        "digest_rounds": sum(g.stats.digest_rounds for g in servers),
        "delta_records": sum(g.stats.delta_records for g in servers),
        "bytes_sent": sum(g.stats.bytes_sent for g in servers),
        "bytes_saved": sum(g.stats.bytes_saved for g in servers),
        "tombstones_created": sum(
            g.stats.tombstones_created for g in servers),
        "evictions": sum(g.stats.evictions for g in servers),
        "members": len(servers),
        "registered": sum(len(g.registry) for g in servers),
        "suspicion": suspicion,
    }


def churn_plan(config: PoolConfig, start: float = 60.0,
               n_crashes: int = 4, reboot_after: float = 120.0,
               partition_at: Optional[float] = None,
               heal_after: float = 90.0) -> FaultPlan:
    """A deterministic churn schedule for converge-under-churn runs:
    a handful of spread-out host crashes (with reboots) plus one
    site-level partition/heal. Hosts are picked by index arithmetic, not
    randomness, so the same config always churns the same way."""
    plan = FaultPlan()
    width = len(str(max(config.n_hosts - 1, 1)))
    stride = max(config.n_hosts // max(n_crashes, 1), 1)
    for c in range(n_crashes):
        idx = (c * stride + stride // 2) % config.n_hosts
        plan.crash(at=start + 10.0 * c, host=f"pg{idx:0{width}d}",
                   reboot_after=reboot_after)
    if partition_at is None:
        partition_at = start + 30.0
    cut = max(config.n_sites // 4, 1)
    island = tuple(f"site{s:02d}" for s in range(cut))
    plan.partition(at=partition_at, groups=[island], heal_after=heal_after)
    return plan
