"""The observability smoke scenario: a traced fault→requeue causal chain.

A deliberately small world whose whole point is the *trace* it leaves
behind: one scheduler handing out work units reliably, one logging
server, and two clients — one of which the fault plan crashes before its
first assignment can reach it. Under tracing, the run must produce a
causally linked span chain

    fault crashes ─▸ drop dropped_down ─▸ (call SCH_WORK) ─▸ retransmit*
                                                        └▸ send-failed ─▸ requeue unit

i.e. the requeued unit's spans walk back through the retransmissions of
the reliable assignment to the injected fault that killed its recipient.
:func:`requeue_chains` extracts and validates exactly that chain; the
``observability-smoke`` CI job additionally asserts the exported Chrome
trace is byte-identical across same-seed reruns.

Run it from the command line via ``repro trace`` (see
:mod:`repro.cli`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.services.logging import LoggingServer
from ..core.services.scheduler import QueueWorkSource, SchedulerServer
from ..core.simdriver import SimDriver
from ..core.telemetry import Span, Telemetry
from ..ramsey.client import ModelEngine, RamseyClient
from ..ramsey.tasks import unit_generator
from ..simgrid.engine import Environment
from ..simgrid.faults import FaultPlan
from ..simgrid.host import Host, HostSpec
from ..simgrid.load import ConstantLoad
from ..simgrid.network import Network
from ..simgrid.rand import RngStreams

__all__ = ["ObserveConfig", "ObserveWorld", "run_observe", "requeue_chains"]


@dataclass(frozen=True)
class ObserveConfig:
    """Knobs for the traced smoke run (CI-sized defaults)."""

    seed: int = 7
    duration: float = 420.0
    #: Crash the doomed client's host before the scheduler's first
    #: assignment can be delivered (network latency floor is ~50 ms), so
    #: the reliable send is guaranteed to retransmit into a dead host.
    crash_at: float = 0.02
    reboot_after: float = 180.0
    n_clients: int = 2
    work_period: float = 15.0
    report_period: float = 30.0
    unit_ops_budget: float = 1e9


class ObserveWorld:
    """Scheduler + logger + clients, one of them doomed."""

    def __init__(
        self,
        cfg: Optional[ObserveConfig] = None,
        telemetry: Optional[Telemetry] = None,
        trace: bool = True,
    ) -> None:
        self.cfg = cfg = cfg or ObserveConfig()
        self.env = Environment()
        self.streams = RngStreams(seed=cfg.seed)
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        if trace:
            self.telemetry.tracer.enabled = True
        self.network = Network(self.env, self.streams,
                               base_latency=0.05, jitter=0.2)
        self.network.attach_telemetry(self.telemetry)

        def add_host(name: str, site: str) -> Host:
            host = Host(self.env, HostSpec(
                name=name, site=site, infra="observe", speed=2e7,
                load_model=ConstantLoad(1.0)), self.streams)
            self.network.add_host(host)
            host.start()
            return host

        self.work = QueueWorkSource(generator=unit_generator(
            8, 4, base_seed=100, ops_budget=cfg.unit_ops_budget))
        self.scheduler = SchedulerServer(
            "sched0", self.work,
            report_period=cfg.report_period,
            reap_period=4 * cfg.report_period,
        )
        sched_host = add_host("sched0", "ucsd")
        SimDriver(self.env, self.network, sched_host, "sched",
                  self.scheduler, self.streams).start()

        self.logger = LoggingServer("logger0")
        log_host = add_host("logger0", "ucsd")
        SimDriver(self.env, self.network, log_host, "log",
                  self.logger, self.streams).start()

        self.clients: list[RamseyClient] = []
        for i in range(cfg.n_clients):
            host = add_host(f"cli{i}", "utk")
            client = RamseyClient(
                name=f"cli{i}",
                schedulers=["sched0/sched"],
                engine=ModelEngine(),
                infra="observe",
                loggers=["logger0/log"],
                work_period=cfg.work_period,
                report_period=cfg.report_period,
                hello_retry=60.0,
                seed=i,
            )
            SimDriver(self.env, self.network, host, "cli",
                      client, self.streams).start()
            self.clients.append(client)
        self.network.start()

        # cli0 dies in the window between its HELLO leaving and the
        # scheduler's reliable SCH_WORK reply arriving.
        self.plan = FaultPlan().crash(
            at=cfg.crash_at, host="cli0", reboot_after=cfg.reboot_after)
        self.plan.install(self.env, self.network)

    def run(self) -> dict:
        self.env.run(until=self.cfg.duration)
        return self.report()

    def report(self) -> dict:
        """Diff-stable summary (simulated time and counters only)."""
        return {
            "scenario": "observe",
            "seed": self.cfg.seed,
            "duration": self.cfg.duration,
            "spans": len(self.telemetry.tracer.spans),
            "requeue_chains": requeue_chains(self.telemetry),
            "metrics": self.telemetry.metrics.snapshot(),
        }


def requeue_chains(telemetry: Telemetry) -> list[dict]:
    """Extract every requeue's causal chain back to its root cause.

    For each ``requeue unit`` span, walk its ancestry to the reliable
    assignment's ``call`` span, collect that call's retransmission
    instants, the fault-attributed drops on the same trace, and resolve
    the fault spans they point at. The result is JSON-stable (ids,
    names, simulated times)."""
    tracer = telemetry.tracer
    index = tracer.by_span_id()
    chains: list[dict] = []
    for requeue in tracer.named("requeue unit"):
        call: Optional[Span] = None
        for anc in tracer.ancestry(requeue):
            if anc.name.startswith("call "):
                call = anc
                break
        if call is None:
            continue
        retransmits = [s for s in tracer.spans
                       if s.outcome == "retransmit"
                       and s.parent_id == call.span_id]
        drops = [s for s in tracer.spans
                 if s.trace_id == call.trace_id
                 and s.name.startswith("drop ")
                 and "fault_span" in s.args]
        faults = []
        for drop in drops:
            fault = index.get(drop.args["fault_span"])
            if fault is not None and fault not in faults:
                faults.append(fault)
        chains.append({
            "unit_id": requeue.args.get("unit_id"),
            "client": requeue.args.get("client"),
            "requeued_at": requeue.start,
            "call": call.name,
            "call_span": call.span_id,
            "call_outcome": call.outcome,
            "retransmits": len(retransmits),
            "drops": [s.name for s in drops],
            "faults": [s.name for s in faults],
        })
    return chains


def run_observe(
    cfg: Optional[ObserveConfig] = None,
    telemetry: Optional[Telemetry] = None,
    trace: bool = True,
) -> tuple[dict, Telemetry]:
    """Build and run the smoke world; return (report, telemetry)."""
    world = ObserveWorld(cfg, telemetry=telemetry, trace=trace)
    report = world.run()
    return report, world.telemetry
