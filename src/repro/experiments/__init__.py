"""Experiment harness: the SC98 scenario, metrics, and figure rendering."""

from .export import headlines_json, hosts_csv, rates_csv, write_results
from .stats import SweepOutcome, bootstrap_ci, seed_sweep, shape_metrics
from .metrics import (
    HostCountSampler,
    SeriesBundle,
    TimeBuckets,
    coefficient_of_variation,
    collect_rate_series,
)
from .report import (
    format_rate,
    render_fig2,
    render_fig3a,
    render_fig3b,
    render_grid_criteria,
    render_headlines,
    render_series_table,
    sparkline,
)
from .sc98 import (
    SC98Config,
    SC98Results,
    SC98World,
    build_sc98,
    clock_to_offset,
    offset_to_clock,
)
from .scenario import ServiceCore, build_core, model_client_factory

__all__ = [
    "SweepOutcome",
    "bootstrap_ci",
    "seed_sweep",
    "shape_metrics",
    "headlines_json",
    "hosts_csv",
    "rates_csv",
    "write_results",
    "HostCountSampler",
    "SeriesBundle",
    "TimeBuckets",
    "coefficient_of_variation",
    "collect_rate_series",
    "format_rate",
    "render_fig2",
    "render_fig3a",
    "render_fig3b",
    "render_grid_criteria",
    "render_headlines",
    "render_series_table",
    "sparkline",
    "SC98Config",
    "SC98Results",
    "SC98World",
    "build_sc98",
    "clock_to_offset",
    "offset_to_clock",
    "ServiceCore",
    "build_core",
    "model_client_factory",
]
