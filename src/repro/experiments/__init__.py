"""Experiment harness: the SC98 scenario, metrics, and figure rendering."""

from .export import headlines_json, hosts_csv, rates_csv, write_results
from .stats import SweepOutcome, bootstrap_ci, seed_sweep, shape_metrics
from .metrics import (
    HostCountSampler,
    SeriesBundle,
    TimeBuckets,
    coefficient_of_variation,
    collect_rate_series,
)
from .report import (
    format_rate,
    render_fig2,
    render_fig3a,
    render_fig3b,
    render_grid_criteria,
    render_headlines,
    render_series_table,
    sparkline,
)
from .sc98 import (
    SC98Config,
    SC98Results,
    SC98World,
    build_sc98,
    clock_to_offset,
    offset_to_clock,
)
from .scenario import ServiceCore, build_core, model_client_factory

#: Chaos-matrix names resolved lazily (PEP 562) so that running
#: ``python -m repro.experiments.chaos`` does not import the module
#: twice (once via this package, once via runpy).
_CHAOS_EXPORTS = {
    "PROFILES",
    "ChaosConfig",
    "ChaosReport",
    "build_plan",
    "run_chaos",
    "run_chaos_matrix",
}


def __getattr__(name):
    if name in _CHAOS_EXPORTS:
        from . import chaos

        return getattr(chaos, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "SweepOutcome",
    "bootstrap_ci",
    "seed_sweep",
    "shape_metrics",
    "headlines_json",
    "hosts_csv",
    "rates_csv",
    "write_results",
    "HostCountSampler",
    "SeriesBundle",
    "TimeBuckets",
    "coefficient_of_variation",
    "collect_rate_series",
    "format_rate",
    "render_fig2",
    "render_fig3a",
    "render_fig3b",
    "render_grid_criteria",
    "render_headlines",
    "render_series_table",
    "sparkline",
    "SC98Config",
    "SC98Results",
    "SC98World",
    "build_sc98",
    "clock_to_offset",
    "offset_to_clock",
    "ServiceCore",
    "build_core",
    "model_client_factory",
    "PROFILES",
    "ChaosConfig",
    "ChaosReport",
    "build_plan",
    "run_chaos",
    "run_chaos_matrix",
]
