"""The SC98 High-Performance Computing Challenge scenario (§4).

Builds the full experiment the paper reports: the Figure-1 service
topology, all seven infrastructure adapters, the ambient-load story of
the twelve hours leading up to the judging (23:36:56 → 11:36:56 PST), and
the measurement plane that regenerates Figures 2, 3(a–c) and 4(a–c).

The judging-time forcing function follows §4.1: at 11:00 competing
projects claimed resources and SCInet load spiked, halving-and-worse the
application's deliverable compute and inflating network latencies; by
11:10 (the live demonstration) conditions had partially recovered, but
the floor stayed busier than overnight.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..core.telemetry import Telemetry
from ..infra.base import InfraAdapter
from ..infra.condor import CondorPool
from ..infra.globus import GlobusSites
from ..infra.java import JavaApplets
from ..infra.legion import LegionNet
from ..infra.netsolve import NetSolveFarm
from ..infra.nt import NTSupercluster
from ..infra.unixpool import UnixPool
from ..simgrid.engine import Environment
from ..simgrid.load import ComposedLoad, EventSchedule, MeanRevertingLoad, ScheduledEvent
from ..simgrid.network import Network
from ..simgrid.rand import RngStreams
from .metrics import HostCountSampler, SeriesBundle, collect_rate_series
from .scenario import ServiceCore, build_core, model_client_factory

__all__ = ["SC98Config", "SC98World", "build_sc98", "clock_to_offset", "offset_to_clock"]

#: The run starts at 23:36:56 PST (first x label of Fig. 2).
START_CLOCK = (23, 36, 56)


def clock_to_offset(hh: int, mm: int = 0, ss: int = 0) -> float:
    """Seconds from run start (23:36:56) to the given PST wall-clock time
    on the judging morning."""
    start = START_CLOCK[0] * 3600 + START_CLOCK[1] * 60 + START_CLOCK[2]
    t = hh * 3600 + mm * 60 + ss
    if t < start:
        t += 24 * 3600  # past midnight
    return float(t - start)


def offset_to_clock(offset: float) -> str:
    """Format a run offset as the wall-clock label the paper's x axes use."""
    start = START_CLOCK[0] * 3600 + START_CLOCK[1] * 60 + START_CLOCK[2]
    t = int(start + offset) % (24 * 3600)
    return f"{t // 3600:d}:{(t % 3600) // 60:02d}:{t % 60:02d}"


@dataclass
class SC98Config:
    """Scenario knobs. ``scale`` shrinks host counts (and the measurement
    duration is set separately) so tests can run small."""

    seed: int = 1998
    duration: float = 12 * 3600.0
    bucket: float = 300.0  # the paper's five-minute averages
    scale: float = 1.0
    k: int = 43  # the R(5,5) search target of §3
    n: int = 5
    report_period: float = 150.0
    work_period: float = 150.0
    judging: bool = True
    #: Client compute engine: "model" burns simulated cycles (SC98-scale
    #: runs), "real" executes the op-counted search kernels.
    engine: str = "model"
    #: Compute-lane workers for the real engine (0 = inline lane, the
    #: default substrate). Kernel results are bit-identical either way,
    #: so this knob changes wall-clock speed only — never outcomes.
    compute_pool: int = 0
    #: Step cap per real-engine advance (lowered for smoke runs).
    max_steps_per_advance: int = 2000
    #: Conservative parallel DES: drive the run in lookahead-sized
    #: windows with compute-lane barriers (see repro.simgrid.pdes).
    #: Byte-identical outcomes to the serial run by construction — the
    #: parity contract is enforced by tests and CI.
    parallel_des: bool = False
    #: Optional window override (may only shrink the derived lookahead).
    des_window: Optional[float] = None
    #: Ablation A1: forecast-driven vs static service time-outs.
    dynamic_timeouts: bool = True
    #: Ablation A2: place schedulers inside the Condor pool.
    condor_scheduler_in_pool: bool = False
    #: Ablation A5: NT startup sleep spread (seconds).
    nt_startup_sleep_max: float = 40.0
    nt_lsf_kill_threshold: float = 45.0

    @property
    def n_buckets(self) -> int:
        return int(self.duration // self.bucket)

    def scaled(self, count: int, minimum: int = 1) -> int:
        return max(int(round(count * self.scale)), minimum)


@dataclass
class SC98Results:
    """Figure-ready data."""

    config: SC98Config
    series: SeriesBundle
    lsf_kills: int = 0
    condor_reclamations: int = 0
    legion_translated: int = 0
    gossip_stats: list = field(default_factory=list)
    scheduler_stats: list = field(default_factory=list)

    # -- headline numbers (§4.1) --------------------------------------------
    def peak(self) -> tuple[float, float]:
        """(time offset, ops/sec) of the best five-minute average."""
        idx = int(np.argmax(self.series.total_rate))
        return float(self.series.times[idx]), float(self.series.total_rate[idx])

    def rate_at(self, offset: float) -> float:
        idx = np.searchsorted(self.series.times, offset, side="right") - 1
        idx = min(max(idx, 0), len(self.series.total_rate) - 1)
        return float(self.series.total_rate[idx])

    def judging_dip(self) -> float:
        """Lowest five-minute average in the judging window (11:00–11:15)."""
        t0, t1 = clock_to_offset(11, 0), clock_to_offset(11, 15)
        mask = (self.series.times >= t0) & (self.series.times <= t1)
        if not mask.any():
            return float("nan")
        return float(self.series.total_rate[mask].min())

    def recovery(self) -> float:
        """Rate around the 11:10 demonstration (11:10–11:25 best bucket)."""
        t0, t1 = clock_to_offset(11, 10), clock_to_offset(11, 25)
        mask = (self.series.times >= t0) & (self.series.times <= t1)
        if not mask.any():
            return float("nan")
        return float(self.series.total_rate[mask].max())


class SC98World:
    """A fully wired SC98 experiment ready to run."""

    def __init__(self, config: SC98Config,
                 telemetry: Optional[Telemetry] = None) -> None:
        self.config = config
        self.env = Environment()
        self.streams = RngStreams(seed=config.seed)
        # Shared world registry/tracer (drivers inherit via the network).
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        c = config

        # --- ambient stories -------------------------------------------------
        judging_events = []
        if c.judging:
            t_judge = clock_to_offset(11, 0)
            t_test = clock_to_offset(9, 36)
            judging_events = [
                # §4.1: the best sustained rate came "during a test an hour
                # before the competition" (09:51–09:56) — competitors idled
                # between overnight runs and the demo, freeing resources.
                ScheduledEvent(t_test, t_test + 24 * 60, factor=1.18, ramp=300),
                # Judging at 11:00: competitors claim resources — sharp
                # loss, partial recovery over ~8 minutes...
                ScheduledEvent(t_judge, t_judge + 300, factor=0.42, ramp=480),
                # ...onto a busier-than-overnight floor for the rest of the
                # morning.
                ScheduledEvent(t_judge + 300, max(c.duration, t_judge + 600),
                               factor=0.95),
            ]
        self.judging_schedule = EventSchedule(judging_events)

        congestion_events = []
        if c.judging:
            t_judge = clock_to_offset(11, 0)
            congestion_events = [
                # SCInet reconfigured on the fly; latencies ballooned.
                ScheduledEvent(t_judge - 120, t_judge + 600, factor=0.3, ramp=300),
            ]
        self.network = Network(
            self.env,
            self.streams,
            base_latency=0.08,
            jitter=0.3,
            congestion_model=ComposedLoad(
                MeanRevertingLoad(mean=0.85, sigma=0.002),
                EventSchedule(congestion_events),
            ),
        )
        self.network.attach_telemetry(self.telemetry)

        # --- the Figure-1 service topology ------------------------------------
        self.core: ServiceCore = build_core(
            self.env,
            self.network,
            self.streams,
            n_schedulers=3,
            n_gossips=3,
            n_loggers=2,
            n_persistents=1,
            k=c.k,
            n=c.n,
            report_period=c.report_period,
        )
        for gossip in self.core.gossips:
            gossip.dynamic_timeouts = c.dynamic_timeouts

        # --- the compute plane ------------------------------------------------
        # Real-engine clients offload tabu step batches to this lane;
        # `compute_pool` workers execute the vectorized kernels on real
        # OS processes. Outcomes are bit-identical to serial: simulated
        # time is charged from exact op counts, never wall time.
        self.compute_lane = None
        engine_factory = None
        if c.engine == "real":
            from ..parallel import make_lane
            from ..ramsey.client import RealEngine

            self.compute_lane = make_lane(
                c.compute_pool, clock=lambda: self.env.now)

            def engine_factory() -> RealEngine:
                return RealEngine(
                    max_steps_per_advance=c.max_steps_per_advance,
                    lane=self.compute_lane)

        factory = model_client_factory(
            self.core,
            work_period=c.work_period,
            report_period=c.report_period,
            engine_factory=engine_factory,
        )

        # --- the seven infrastructures ---------------------------------------
        common = dict(ambient=self.judging_schedule)
        self.unix = UnixPool(
            self.env, self.network, self.streams, factory, site="paci",
            n_workstations=c.scaled(32), n_mpp_nodes=c.scaled(32),
            with_tera_mta=True, **common)
        self.condor = CondorPool(
            self.env, self.network, self.streams, factory, site="wisc",
            n_hosts=c.scaled(120), **common)
        self.nt = NTSupercluster(
            self.env, self.network, self.streams, factory, site="nt",
            clusters={"ncsa": c.scaled(64), "ucsd": c.scaled(32)},
            startup_sleep_max=c.nt_startup_sleep_max,
            lsf_kill_threshold=c.nt_lsf_kill_threshold,
            **common)
        self.globus = GlobusSites(
            self.env, self.network, self.streams, factory, site="globus",
            sites={"isi": c.scaled(6), "anl": c.scaled(6)}, **common)

        legion_routes = {
            "SCH": self.core.scheduler_contacts[0],
            "PST": self.core.persistent_contacts[0],
            "LOG": self.core.logger_contacts[0],
        }
        self.legion = LegionNet(
            self.env, self.network, self.streams,
            model_client_factory(
                self.core,
                work_period=c.work_period,
                report_period=c.report_period,
                scheduler_override=["legion-gateway/xlate"],
                logger_override=["legion-gateway/xlate"],
                persistent_override="legion-gateway/xlate",
            ),
            site="uva",
            n_hosts=c.scaled(20),
            translator_routes=legion_routes,
            **common)
        self.netsolve = NetSolveFarm(
            self.env, self.network, self.streams, factory, site="utk",
            n_servers=c.scaled(3), **common)

        def java_rate(t: float) -> float:
            # Overnight trickle; a crowd once the exhibit floor opens.
            base = 1.0 / 1200.0 if t < clock_to_offset(8, 0) else 1.0 / 300.0
            return base * max(c.scale, 0.05)

        self.java = JavaApplets(
            self.env, self.network, self.streams, factory, site="internet",
            rate_fn=java_rate, session_mean=30 * 60.0, jit_fraction=0.5,
            **common)

        self.adapters: list[InfraAdapter] = [
            self.unix, self.condor, self.nt, self.globus,
            self.legion, self.netsolve, self.java,
        ]

        if c.condor_scheduler_in_pool:
            self._move_schedulers_into_condor_pool()

        self.sampler = HostCountSampler(
            self.env, self.adapters, start=0.0, width=c.bucket, n=c.n_buckets)
        #: Synchronization stats of the last parallel-DES run (None for
        #: serial runs).
        self.pdes_stats: Optional[dict] = None

    def _move_schedulers_into_condor_pool(self) -> None:
        """Ablation A2: schedulers live on (reclaimable) Condor hosts.

        Deployed during :meth:`run` after the Condor hosts exist; clients
        are rewired to the in-pool contacts."""
        self._condor_sched_pending = True

    def run(self) -> SC98Results:
        self.network.start()
        for adapter in self.adapters:
            adapter.deploy()
        if getattr(self, "_condor_sched_pending", False):
            self._deploy_condor_schedulers()
        self.sampler.start_sampling()
        if self.compute_lane is not None and self.compute_lane.workers > 0:
            # Harvest pool completions (and refresh queue-depth gauges)
            # at every event boundary while the world runs.
            self.env.drain_hook = self.compute_lane.drain
        try:
            if self.config.parallel_des:
                from ..simgrid.pdes import WindowedRunner

                runner = WindowedRunner(
                    self.env, self.network, lane=self.compute_lane,
                    window=self.config.des_window)
                self.pdes_stats = runner.run(until=self.config.duration)
            else:
                self.env.run(until=self.config.duration)
        finally:
            self.env.drain_hook = None
            self.close()
        return self.results()

    def close(self) -> None:
        """Release the compute lane (worker processes, shared memory)."""
        if self.compute_lane is not None:
            self.compute_lane.close()

    def _deploy_condor_schedulers(self) -> None:
        from ..core.services.scheduler import SchedulerServer
        from ..core.simdriver import SimDriver
        from ..ramsey.tasks import unit_generator
        from ..core.services.scheduler import QueueWorkSource

        contacts = []
        for i, host in enumerate(self.condor.hosts[: len(self.core.schedulers)]):
            work = QueueWorkSource(generator=unit_generator(
                self.config.k, self.config.n, base_seed=5000 + i, ops_budget=1e12))
            sched = SchedulerServer(
                f"condor-sched{i}", work, report_period=self.config.report_period)
            SimDriver(self.env, self.network, host, "sched", sched, self.streams).start()
            self.core.schedulers.append(sched)
            contacts.append(f"{host.name}/sched")
        # Rewire: future clients use only the in-pool schedulers.
        self.core.scheduler_contacts = contacts

    def results(self) -> SC98Results:
        c = self.config
        total, per_infra = collect_rate_series(
            self.core.loggers, start=0.0, width=c.bucket, n=c.n_buckets)
        series = SeriesBundle(
            times=np.arange(c.n_buckets) * c.bucket,
            total_rate=total,
            rate_by_infra=per_infra,
            hosts_by_infra=self.sampler.counts_by_infra(),
        )
        return SC98Results(
            config=c,
            series=series,
            lsf_kills=self.nt.lsf_kills,
            condor_reclamations=self.condor.reclamations,
            legion_translated=self.legion.translator.translated
            if self.legion.translator else 0,
            gossip_stats=[g.stats for g in self.core.gossips],
            scheduler_stats=[s.stats for s in self.core.schedulers],
        )


def build_sc98(config: Optional[SC98Config] = None) -> SC98World:
    return SC98World(config or SC98Config())
