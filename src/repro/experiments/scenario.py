"""Scenario construction: the Figure-1 service topology plus client wiring.

``build_core`` stands up the application-specific services — scheduling
servers ("S"), Gossips ("G"), persistent state managers ("P"), and
logging servers ("L") — on well-known hosts, and ``model_client_factory``
produces the configured computational clients ("A") that the
infrastructure adapters launch and relaunch according to their own
semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..core.gossip.server import GossipServer
from ..core.gossip.state import ComparatorRegistry
from ..core.services.logging import LoggingServer
from ..core.services.persistent import PersistentStateServer
from ..core.services.scheduler import QueueWorkSource, SchedulerServer
from ..core.simdriver import SimDriver
from ..infra.base import ClientFactory
from ..ramsey.client import RAMSEY_BEST, ModelEngine, RamseyClient, ramsey_comparator
from ..ramsey.tasks import unit_generator
from ..ramsey.verify import counter_example_validator
from ..simgrid.engine import Environment
from ..simgrid.host import Host, HostSpec
from ..simgrid.load import ConstantLoad
from ..simgrid.network import Network
from ..simgrid.rand import RngStreams

__all__ = ["ServiceCore", "build_core", "model_client_factory"]


@dataclass
class ServiceCore:
    """Handles to the deployed well-known services."""

    env: Environment
    network: Network
    streams: RngStreams
    schedulers: list[SchedulerServer] = field(default_factory=list)
    scheduler_contacts: list[str] = field(default_factory=list)
    gossips: list[GossipServer] = field(default_factory=list)
    gossip_contacts: list[str] = field(default_factory=list)
    loggers: list[LoggingServer] = field(default_factory=list)
    logger_contacts: list[str] = field(default_factory=list)
    persistents: list[PersistentStateServer] = field(default_factory=list)
    persistent_contacts: list[str] = field(default_factory=list)
    work_sources: list[QueueWorkSource] = field(default_factory=list)
    service_hosts: list[Host] = field(default_factory=list)
    #: Live service drivers, keyed by "host/port" contact (replaced on
    #: relaunch after a fault-injected reboot).
    service_drivers: dict[str, SimDriver] = field(default_factory=dict)


def build_core(
    env: Environment,
    network: Network,
    streams: RngStreams,
    n_schedulers: int = 3,
    n_gossips: int = 3,
    n_loggers: int = 2,
    n_persistents: int = 1,
    k: int = 43,
    n: int = 5,
    unit_ops_budget: float = 1e12,
    report_period: float = 150.0,
    gossip_poll_period: float = 120.0,
    gossip_sync_period: float = 90.0,
    service_sites: Optional[list[str]] = None,
    ks: Optional[list[int]] = None,
) -> ServiceCore:
    """Deploy the well-known services on stable service hosts.

    Services live on dedicated, reliable hosts (the paper stationed its
    Gossips "at well-known addresses around the country" and kept
    persistent state at SDSC).

    ``ks`` optionally gives each scheduler its own problem size
    (scheduler ``i`` mints units for ``ks[i % len(ks)]``); the chaos
    scenarios use it to spread the search over several small targets so
    distinct counter-example keys reach the persistent store.
    """
    core = ServiceCore(env=env, network=network, streams=streams)
    sites = service_sites or ["ucsd", "utk", "uva", "ncsa"]

    def service_host(name: str, idx: int) -> Host:
        host = Host(env, HostSpec(
            name=name,
            site=sites[idx % len(sites)],
            infra="service",
            speed=2e7,
            load_model=ConstantLoad(1.0),
        ), streams)
        network.add_host(host)
        host.start()
        core.service_hosts.append(host)
        return host

    comparators = ComparatorRegistry()
    comparators.register(RAMSEY_BEST, ramsey_comparator)

    gossip_contacts = [f"gossip{i}/gossip" for i in range(n_gossips)]
    for i in range(n_gossips):
        host = service_host(f"gossip{i}", i)
        gossip = GossipServer(
            f"gossip{i}",
            well_known=gossip_contacts,
            comparators=comparators,
            poll_period=gossip_poll_period,
            sync_period=gossip_sync_period,
        )
        driver = SimDriver(env, network, host, "gossip", gossip, streams)
        driver.start()
        core.service_drivers[driver.endpoint.contact] = driver
        core.gossips.append(gossip)
    core.gossip_contacts = gossip_contacts

    for i in range(n_schedulers):
        host = service_host(f"sched{i}", i)
        sched_k = ks[i % len(ks)] if ks else k
        work = QueueWorkSource(generator=unit_generator(
            sched_k, n, base_seed=1000 * (i + 1), ops_budget=unit_ops_budget))
        sched = SchedulerServer(
            f"sched{i}", work,
            report_period=report_period,
            reap_period=2 * report_period,
        )
        driver = SimDriver(env, network, host, "sched", sched, streams)
        driver.start()
        core.service_drivers[driver.endpoint.contact] = driver
        core.schedulers.append(sched)
        core.work_sources.append(work)
        core.scheduler_contacts.append(f"sched{i}/sched")

    for i in range(n_loggers):
        host = service_host(f"logger{i}", i)
        logger = LoggingServer(f"logger{i}")
        driver = SimDriver(env, network, host, "log", logger, streams)
        driver.start()
        core.service_drivers[driver.endpoint.contact] = driver
        core.loggers.append(logger)
        core.logger_contacts.append(f"logger{i}/log")

    for i in range(n_persistents):
        host = service_host(f"pst{i}", i)
        pst = PersistentStateServer(f"pst{i}")
        pst.add_validator(counter_example_validator)
        driver = SimDriver(env, network, host, "pst", pst, streams)
        driver.start()
        core.service_drivers[driver.endpoint.contact] = driver
        core.persistents.append(pst)
        core.persistent_contacts.append(f"pst{i}/pst")

    return core


def model_client_factory(
    core: ServiceCore,
    work_period: float = 150.0,
    report_period: float = 150.0,
    engine_factory: Optional[Callable[[], object]] = None,
    scheduler_override: Optional[list[str]] = None,
    logger_override: Optional[list[str]] = None,
    persistent_override: Optional[str] = None,
) -> ClientFactory:
    """A ClientFactory wiring model-engine clients into the service core.

    Clients spread across schedulers and loggers round-robin by index;
    overrides support special routing (e.g. Legion's translator)."""

    def factory(host: Host, infra: str, idx: int) -> RamseyClient:
        schedulers = scheduler_override or _rotated(core.scheduler_contacts, idx)
        loggers = logger_override or [core.logger_contacts[idx % len(core.logger_contacts)]]
        persistent = persistent_override or (
            core.persistent_contacts[0] if core.persistent_contacts else None)
        engine = engine_factory() if engine_factory is not None else ModelEngine()
        return RamseyClient(
            name=f"{infra}-cli{idx}",
            schedulers=schedulers,
            engine=engine,
            infra=infra,
            loggers=loggers,
            persistent=persistent,
            gossip_well_known=core.gossip_contacts,
            work_period=work_period,
            report_period=report_period,
            hello_retry=60.0,
            seed=idx,
        )

    return factory


def _rotated(items: list[str], idx: int) -> list[str]:
    if not items:
        return []
    shift = idx % len(items)
    return items[shift:] + items[:shift]
