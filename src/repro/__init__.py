"""EveryWare: a toolkit for Computational Grid programs.

Reproduction of "Running EveryWare on the Computational Grid" (SC'99).

The supported import surface is :mod:`repro.api` — a curated facade
re-exporting the component model, retry/timeout policies, drivers,
simulated-grid substrate (including fault injection), services, and the
prebuilt experiment scenarios. Deep module paths keep working but are
not part of the compatibility contract.

Subpackages
-----------
``repro.api``
    The curated public facade: import from here.
``repro.core``
    The EveryWare toolkit: the portable lingua franca, NWS-style
    forecasting services, the Gossip distributed state exchange, and the
    application-level services (schedulers, persistent state, logging).
``repro.simgrid``
    The simulated Computational Grid substrate (discrete-event engine,
    hosts, network, load and failure models).
``repro.infra``
    Behavioral adapters for the seven infrastructures of the SC98 run:
    Unix, Globus, Legion, Condor, NT, Java, NetSolve.
``repro.ramsey``
    The Ramsey Number Search application.
``repro.experiments``
    The SC98 scenario and the harness that regenerates the paper's
    figures and headline numbers.
"""

__version__ = "1.0.0"

__all__ = ["api", "core", "simgrid", "infra", "ramsey", "experiments"]
