"""The supervisor-side telemetry collector for live worlds.

Every live node ships wall-clock observability to the supervisor over
the same lingua franca the application speaks:

* ``COL_HELLO`` — once per process incarnation: node name, pid,
  incarnation number, and the node's wall-clock epoch (``time.time()``
  at driver start), which the collector uses to place that node's span
  timestamps on its own timeline;
* ``COL_REPORT`` — periodic (and once more during graceful drain):
  a sequence number, the node's full metrics snapshot, the spans opened
  since the previous ship, buffered log lines, and role-specific stats.

The :class:`Collector` merges these into the same artifact formats the
simulation already emits — a metrics snapshot (:func:`merge_snapshots`
shape), a :class:`~repro.core.telemetry.Tracer` whose spans live on one
common timeline (so :func:`~repro.core.telemetry.export_chrome_trace`
works unchanged), and a time-ordered log.

Report interarrival gaps are fed to the forecasting machinery per node —
:meth:`silent_nodes` is the paper's forecast-driven liveness test (§2.2)
applied to the deployment plane: a node is suspect when its silence
exceeds the *forecast* gap by a safety multiplier, not a hardcoded
constant.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from ..core.forecasting.benchmarking import ForecastRegistry, event_tag
from ..core.linguafranca.messages import Message
from ..core.linguafranca.tcp import TcpServer
from ..core.telemetry import Span, Tracer, merge_snapshots

__all__ = ["COL_HELLO", "COL_REPORT", "Collector", "NodeRecord"]

COL_HELLO = "COL_HELLO"
COL_REPORT = "COL_REPORT"

#: Stream name for per-node report interarrival forecasting.
HEARTBEAT = "COL_REPORT"


@dataclass
class NodeRecord:
    """Everything the collector knows about one live node."""

    name: str
    contact: str = ""
    pid: int = 0
    incarnation: int = 0
    #: Node wall epoch (``time.time()`` at driver start) per the latest
    #: incarnation; span timestamps ship relative to it.
    epoch: float = 0.0
    #: Wall epoch per incarnation. Reports carry their incarnation, so a
    #: straggler from a dead life that lands *after* the successor's
    #: hello is still shifted by the epoch it was actually timed against.
    epochs: dict = field(default_factory=dict)
    hellos: int = 0
    reports: int = 0
    last_seq: int = -1
    #: Highest sequence number seen per incarnation: dedup (reconnect
    #: resends) is per-life, since every restart resets the counter.
    last_seqs: dict = field(default_factory=dict)
    #: Every span id already merged — flight-dump recovery re-offers
    #: spans the periodic shipper already delivered, and must be
    #: idempotent.
    span_ids: set = field(default_factory=set)
    #: Log-line identity keys already merged (same idempotence story).
    log_keys: set = field(default_factory=set)
    flight_dumps: int = 0
    flight_spans: int = 0
    #: Collector-clock time of the last report (for liveness).
    last_report: Optional[float] = None
    #: Latest full metrics snapshot (cumulative on the node side).
    metrics: dict = field(default_factory=dict)
    #: Last snapshot seen per incarnation: a restart resets the node's
    #: counters, so earlier lives must be merged in, not overwritten —
    #: their sends were already counted by every peer that received them.
    metrics_history: dict = field(default_factory=dict)
    #: Accumulated spans, already shifted onto the collector timeline.
    spans: list[Span] = field(default_factory=list)
    #: Accumulated log lines: dicts ``{"t", "component", "level", "text"}``
    #: with ``t`` on the collector timeline.
    logs: list[dict] = field(default_factory=list)
    #: Role-specific stats from the latest report.
    stats: dict = field(default_factory=dict)
    stop_reason: Optional[str] = None
    final_reports: int = 0
    duplicate_reports: int = 0


class Collector:
    """Merges per-node telemetry shipments into world-level artifacts."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self.server = TcpServer(host, port, self._handle)
        self.nodes: dict[str, NodeRecord] = {}
        self.forecasts = ForecastRegistry()
        #: Wall epoch of the collector itself: the merged timeline's zero.
        self.epoch = time.time()
        self._t0 = time.monotonic()
        self.bad_messages = 0

    @property
    def contact(self) -> str:
        return self.server.contact

    def now(self) -> float:
        """Seconds since the collector started (the merged timeline)."""
        return time.monotonic() - self._t0

    def step(self, timeout: float = 0.05) -> int:
        """Pump the collector's reactor once."""
        return self.server.step(timeout)

    def close(self) -> None:
        self.server.close()

    # -- ingestion ------------------------------------------------------------
    def _record(self, name: str) -> NodeRecord:
        rec = self.nodes.get(name)
        if rec is None:
            rec = self.nodes[name] = NodeRecord(name=name)
        return rec

    def _handle(self, message: Message) -> Optional[Message]:
        body = message.body
        name = body.get("node")
        if not isinstance(name, str) or not name:
            self.bad_messages += 1
            return None
        if message.mtype == COL_HELLO:
            rec = self._record(name)
            rec.hellos += 1
            rec.contact = message.sender
            rec.pid = int(body.get("pid", 0))
            rec.incarnation = int(body.get("incarnation", 0))
            rec.epoch = float(body.get("epoch", time.time()))
            rec.epochs[rec.incarnation] = rec.epoch
            # A fresh incarnation restarts the node-side sequence space.
            rec.last_seq = -1
            rec.last_seqs.setdefault(rec.incarnation, -1)
            rec.stop_reason = None
            return None
        if message.mtype == COL_REPORT:
            self._ingest_report(self._record(name), body)
            return None
        self.bad_messages += 1
        return None

    def _ingest_report(self, rec: NodeRecord, body: dict) -> None:
        seq = int(body.get("seq", 0))
        incarnation = int(body.get("incarnation", rec.incarnation))
        # Dedup is per-incarnation: restarts reset the node-side counter,
        # and a dead life's straggler (still in flight while the
        # successor says hello) must not be mistaken for a resend.
        if seq <= rec.last_seqs.get(incarnation, -1):
            rec.duplicate_reports += 1
            return
        rec.last_seqs[incarnation] = seq
        if incarnation == rec.incarnation:
            rec.last_seq = seq
        rec.reports += 1
        now = self.now()
        if rec.last_report is not None:
            # Forecast-driven liveness: learn this node's shipping cadence.
            self.forecasts.record(event_tag(rec.name, HEARTBEAT),
                                  now - rec.last_report)
        rec.last_report = now
        metrics = body.get("metrics")
        if isinstance(metrics, dict):
            rec.metrics = metrics
            rec.metrics_history[incarnation] = metrics
        stats = body.get("stats")
        if isinstance(stats, dict):
            rec.stats = stats
        # Spans/logs ship with node-relative timestamps; place them on
        # the collector timeline via the epoch of the incarnation that
        # actually timed them.
        shift = rec.epochs.get(incarnation, rec.epoch) - self.epoch
        self._merge_spans(rec, body.get("spans", ()), shift)
        self._merge_logs(rec, body.get("logs", ()), shift)
        if body.get("final"):
            rec.final_reports += 1
            rec.stop_reason = str(body.get("stop_reason", "") or "") or None

    def _merge_spans(self, rec: NodeRecord, spans, shift: float) -> int:
        merged = 0
        for d in spans:
            try:
                span = Span.from_dict(d)
            except (KeyError, TypeError, ValueError):
                self.bad_messages += 1
                continue
            if span.span_id in rec.span_ids:
                continue
            rec.span_ids.add(span.span_id)
            span.start += shift
            if span.end is not None:
                span.end += shift
            rec.spans.append(span)
            merged += 1
        return merged

    def _merge_logs(self, rec: NodeRecord, lines, shift: float) -> int:
        merged = 0
        for line in lines:
            if not isinstance(line, dict):
                continue
            t = float(line.get("t", 0.0)) + shift
            entry = {
                "t": t,
                "node": rec.name,
                "component": str(line.get("component", rec.name)),
                "level": str(line.get("level", "info")),
                "text": str(line.get("text", "")),
            }
            key = (round(t, 6), entry["component"], entry["level"],
                   entry["text"])
            if key in rec.log_keys:
                continue
            rec.log_keys.add(key)
            rec.logs.append(entry)
            merged += 1
        return merged

    def ingest_flight(self, dump: dict) -> int:
        """Merge a dead incarnation's flight-recorder dump (the
        :func:`~repro.obs.flight.load_flight` shape). Idempotent against
        the periodic shipments: spans the collector already holds are
        skipped by span id, so recovery only contributes the tail the
        crash cut off. Returns the number of spans actually added."""
        name = str(dump.get("node", "") or "")
        if not name:
            self.bad_messages += 1
            return 0
        rec = self._record(name)
        incarnation = int(dump.get("incarnation", 0))
        epoch = float(dump.get("epoch", 0.0) or 0.0)
        rec.epochs.setdefault(incarnation, epoch or rec.epoch)
        shift = rec.epochs[incarnation] - self.epoch
        added = self._merge_spans(rec, dump.get("spans", ()), shift)
        self._merge_logs(rec, dump.get("logs", ()), shift)
        rec.flight_dumps += 1
        rec.flight_spans += added
        return added

    # -- liveness ------------------------------------------------------------
    def silent_nodes(
        self,
        multiplier: float = 6.0,
        default: float = 5.0,
        floor: float = 1.0,
        ceiling: float = 30.0,
    ) -> list[str]:
        """Nodes whose silence exceeds the forecast report gap.

        The deadline per node is ``forecast(gap) * multiplier`` clamped
        to ``[floor, ceiling]`` (``default`` before any history) — the
        same dynamic time-out discovery the services use, applied to the
        deployment plane. Nodes that already shipped a final report are
        not suspect: they stopped on purpose.
        """
        now = self.now()
        suspects = []
        for name in sorted(self.nodes):
            rec = self.nodes[name]
            if rec.last_report is None or rec.final_reports:
                continue
            deadline = self.forecasts.timeout(
                event_tag(name, HEARTBEAT), multiplier=multiplier,
                default=default, floor=floor, ceiling=ceiling)
            if now - rec.last_report > deadline:
                suspects.append(name)
        return suspects

    # -- merged artifacts -----------------------------------------------------
    def node_order(self) -> list[str]:
        return sorted(self.nodes)

    def merged_metrics(self) -> dict:
        """Every incarnation of every node merged into one snapshot
        (:func:`merge_snapshots` semantics: counters add, so a restarted
        node contributes each of its lives exactly once)."""
        snapshots = []
        for name in self.node_order():
            rec = self.nodes[name]
            history = rec.metrics_history or {0: rec.metrics}
            snapshots.extend(history[i] for i in sorted(history))
        return merge_snapshots(snapshots)

    def merged_tracer(self) -> Tracer:
        """One tracer holding every node's spans on the common timeline
        (start-time ordered), ready for the existing exporters."""
        tracer = Tracer(enabled=False)
        spans: list[Span] = []
        for name in self.node_order():
            spans.extend(self.nodes[name].spans)
        spans.sort(key=lambda s: (s.start, s.trace_id, s.span_id))
        tracer.spans = spans
        return tracer

    def merged_logs(self) -> list[dict]:
        lines: list[dict] = []
        for name in self.node_order():
            lines.extend(self.nodes[name].logs)
        lines.sort(key=lambda d: d["t"])
        return lines
