"""The ``repro live-node`` entrypoint: one world process.

A node process is the thinnest possible wrapper around the sans-IO
programming model: read the manifest, build this node's :class:`Component`
exactly as the simulation's scenario builder would (same classes, same
wiring — only the contact strings are ``host:port`` now), run it under
:class:`~repro.core.netdriver.NetDriver` on the preallocated port, and
piggyback a telemetry shipper on the driver's reactor loop. SIGTERM from
the supervisor turns into a graceful drain: the reactor stops at the next
turn, drain hooks flush one final ``COL_REPORT``, and the sockets close.
"""

from __future__ import annotations

import os
import time
from dataclasses import asdict
from typing import Optional

from ..core.component import Component
from ..core.gossip.state import ComparatorRegistry
from ..core.gossip.server import GossipServer
from ..core.linguafranca.messages import Message
from ..core.netdriver import NetDriver
from ..core.services.logging import LoggingServer
from ..core.services.persistent import (
    DirectoryBackend,
    PersistentStateServer,
)
from ..core.services.kinds import KindEngine
from ..core.services.scheduler import QueueWorkSource, SchedulerServer
from ..core.telemetry import Telemetry
from ..control.gateway import GatewayCore, render_payload
from ..control.http import HttpServer
from ..control.workqueue import FileJournal, WorkQueue
# The id-partition constants live with the span-origin decoder so trace
# tooling and the nodes that mint the ids can never drift apart.
from ..obs.jobtrace import ID_BLOCK, MAX_INCARNATIONS
from ..obs.flight import FlightRecorder, flight_path
from ..ramsey.client import RAMSEY_BEST, RamseyClient, RealEngine, ramsey_comparator
from ..ramsey.tasks import unit_generator
from ..ramsey.verify import counter_example_validator
from .collector import COL_HELLO, COL_REPORT
from .topology import Manifest

__all__ = ["build_component", "run_node", "node_stats",
           "ID_BLOCK", "MAX_INCARNATIONS"]


def _rotated(items: list[str], idx: int) -> list[str]:
    if not items:
        return []
    shift = idx % len(items)
    return items[shift:] + items[:shift]


def build_component(manifest: Manifest, name: str,
                    data_dir: Optional[str] = None) -> Component:
    """Build the sans-IO component for node ``name`` from the manifest.

    The same classes the simulation deploys (`scenario.build_core` /
    `model_client_factory`), wired with live ``host:port`` contacts.
    ``data_dir`` is where durable node state lives (the gateway's job
    journal); without it a gateway runs journal-less, losing accepted
    jobs on restart — fine for unit tests, never for ``repro serve``.
    """
    topo = manifest.topology
    spec = topo.named(name)
    idx = topo.index_of(name)
    opts = spec.options
    if spec.role == "gossip":
        comparators = ComparatorRegistry()
        comparators.register(RAMSEY_BEST, ramsey_comparator)
        return GossipServer(
            name,
            well_known=manifest.contacts_for("gossip"),
            comparators=comparators,
            poll_period=topo.gossip_poll_period,
            sync_period=topo.gossip_sync_period,
        )
    if spec.role == "scheduler":
        sched_rank = [s.name for s in topo.by_role("scheduler")].index(name)
        work = QueueWorkSource(generator=unit_generator(
            int(opts.get("k", topo.k)), topo.n,
            base_seed=topo.seed + 1000 * (sched_rank + 1),
            ops_budget=topo.unit_ops_budget))
        # Reap checks every report period: with wall-clock restarts the
        # reap-the-dead-client deadline races the supervisor's restart
        # backoff, and a coarse reap tick would let the restarted
        # client's hello win and silently resume the orphaned unit.
        return SchedulerServer(
            name, work,
            report_period=topo.report_period,
            reap_period=topo.report_period,
            dead_factor=float(opts.get("dead_factor", 4.0)),
        )
    if spec.role == "gateway":
        # A gateway IS a scheduler downward: its work source is the
        # durable WorkQueue the HTTP routers fill, and clients pull via
        # the usual SCH_* protocol. The journal (replayed in the
        # constructor) is what makes a SIGKILL lose no accepted job.
        journal = None
        if data_dir is not None:
            journal = FileJournal(
                os.path.join(data_dir, f"{name}.journal.jsonl"))
        work = WorkQueue(journal=journal, prefix=f"{name}-job")
        return SchedulerServer(
            name, work,
            report_period=topo.report_period,
            reap_period=topo.report_period,
            dead_factor=float(opts.get("dead_factor", 4.0)),
        )
    if spec.role == "persistent":
        backend = None
        backend_dir = opts.get("backend_dir")
        if backend_dir:
            backend = DirectoryBackend(str(backend_dir))
        pst = PersistentStateServer(name, backend=backend)
        pst.add_validator(counter_example_validator)
        return pst
    if spec.role == "logger":
        return LoggingServer(name)
    if spec.role == "client":
        # Clients execute whichever app kind the scheduler hands them:
        # the KindEngine dispatches per-unit (ramsey units to the tuned
        # RealEngine below, explore.* units to the registry-built
        # ExploreEngine — registered by the import side effect here).
        from ..explore import engine as _explore_engine  # noqa: F401
        client = RamseyClient(
            name=name,
            schedulers=_rotated(manifest.contacts_for("scheduler")
                                + manifest.contacts_for("gateway"), idx),
            engine=KindEngine(engines={"ramsey": RealEngine(
                max_steps_per_advance=int(
                    opts.get("max_steps_per_advance", 2000)))}),
            infra=str(opts.get("infra", "live")),
            loggers=_rotated(manifest.contacts_for("logger"), idx)[:1],
            persistent=(manifest.contacts_for("persistent") or [None])[0],
            gossip_well_known=manifest.contacts_for("gossip"),
            work_period=topo.work_period,
            report_period=topo.report_period,
            hello_retry=topo.hello_retry,
            seed=topo.seed + idx,
        )
        client.site = str(opts.get("site", ""))
        return client
    raise ValueError(f"unknown node role {spec.role!r}")


def node_stats(component: Component) -> dict:
    """Role-specific stats shipped in each ``COL_REPORT`` (JSON-safe)."""
    if isinstance(component, SchedulerServer):
        stats = asdict(component.stats)
        stats["active_clients"] = len(component.clients)
        try:
            stats["queue_depth"] = len(component.work)  # type: ignore[arg-type]
        except TypeError:
            pass
        if isinstance(component.work, WorkQueue):
            stats["jobs"] = component.work.stats()
        return stats
    if isinstance(component, PersistentStateServer):
        stats = asdict(component.stats)
        stats["keys"] = component.backend.keys()
        return stats
    if isinstance(component, LoggingServer):
        return {"records": len(component.records)}
    if isinstance(component, GossipServer):
        stats = asdict(component.stats)
        stats["registered"] = len(component.registry)
        if component.clique is not None:
            stats["clique_size"] = len(component.pool_members())
        return stats
    if isinstance(component, RamseyClient):
        return {
            "counter_examples_found": component.counter_examples_found,
            "checkpoint_acks": component.checkpoint_acks,
            "checkpoint_denials": component.checkpoint_denials,
            "checkpoint_give_ups": component.checkpoint_give_ups,
            "unit_id": component.unit.get("id") if component.unit else None,
            "site": component.site,
            "total_ops": component._total_ops,
        }
    return {}


class _Shipper:
    """Ships telemetry snapshots/spans/logs to the collector, riding the
    driver's reactor loop (tick hook) and drain path (drain hook)."""

    def __init__(self, driver: NetDriver, manifest: Manifest, name: str,
                 incarnation: int, ship_period: float) -> None:
        self.driver = driver
        self.name = name
        self.incarnation = incarnation
        self.ship_period = ship_period
        host, _, port = manifest.collector.rpartition(":")
        self._col = (host, int(port)) if host and port else None
        #: Wall clock matching the driver's t=0 (set just after driver
        #: construction, so span timestamps map onto wall time).
        self.epoch = time.time() - driver.now()
        self.seq = 0
        self.sent = 0
        self.errors = 0
        self._cursor = 0  # first tracer span not yet considered
        self._pending: list = []  # spans seen but still open at last ship
        self._logs: list[dict] = []
        self._last_ship = driver.now()

    # -- driver hooks --------------------------------------------------------
    def log_sink(self, now: float, component: str, level: str, text: str) -> None:
        self._logs.append({"t": now, "component": component,
                           "level": level, "text": text})

    def tick(self) -> None:
        if self.driver.now() - self._last_ship >= self.ship_period:
            self.ship()

    def drain(self) -> None:
        self.ship(final=True)

    # -- shipping ------------------------------------------------------------
    def hello(self) -> None:
        self._send(COL_HELLO, {
            "node": self.name,
            "pid": os.getpid(),
            "incarnation": self.incarnation,
            "epoch": self.epoch,
        })

    @property
    def cursor(self) -> int:
        """Absolute index of the first span not yet taken (trim bound)."""
        return self._cursor

    def _take_spans(self, final: bool) -> list[dict]:
        tracer = self.driver.telemetry.tracer
        fresh = tracer.spans[max(self._cursor - tracer.dropped, 0):]
        self._cursor = tracer.dropped + len(tracer.spans)
        candidates = self._pending + fresh
        if final:
            self._pending = []
            return [s.to_dict() for s in candidates]
        # Open spans wait: `finish` mutates in place, so a span shipped
        # early would be frozen open in the merged trace.
        out, still_open = [], []
        for span in candidates:
            (out if span.end is not None else still_open).append(span)
        self._pending = still_open
        return [s.to_dict() for s in out]

    def ship(self, final: bool = False) -> None:
        self._last_ship = self.driver.now()
        self.seq += 1
        logs, self._logs = self._logs, []
        body = {
            "node": self.name,
            "seq": self.seq,
            "incarnation": self.incarnation,
            "metrics": self.driver.telemetry.snapshot(),
            "spans": self._take_spans(final),
            "logs": logs,
            "stats": node_stats(self.driver.component),
            "driver": {
                "send_errors": self.driver.send_errors,
                "handler_errors": self.driver.handler_errors,
                "reconnects": self.driver.reconnects,
            },
        }
        if final:
            body["final"] = True
            body["stop_reason"] = self.driver.stop_reason or ""
        self._send(COL_REPORT, body)

    def _send(self, mtype: str, body: dict) -> None:
        if self._col is None:
            return
        # Asynchronous fire-and-forget: the frame leaves on the driver's
        # own reactor loop, so shipping never stalls the component. The
        # collector being away must never take a node down — delivery
        # failures land in driver.send_errors, not here.
        self.driver.post(
            f"{self._col[0]}:{self._col[1]}",
            Message(mtype=mtype, sender=self.driver.contact, body=body),
            timeout=2.0)
        self.sent += 1


def _bind_driver(component: Component, host: str, port: int,
                 telemetry: Telemetry, speed: float,
                 attempts: int = 20, delay: float = 0.1) -> NetDriver:
    """Bind the node's preallocated port, riding out the window where a
    crashed predecessor's socket is still being torn down."""
    last: Optional[OSError] = None
    for _ in range(attempts):
        try:
            return NetDriver(component, host=host, port=port,
                             telemetry=telemetry, speed=speed)
        except OSError as exc:
            last = exc
            time.sleep(delay)
    raise last if last is not None else OSError("bind failed")


def run_node(
    manifest_path: str,
    name: str,
    deadline: float,
    incarnation: int = 0,
) -> int:
    """Run one node to its deadline (or until told to stop); returns an
    exit code. This is what ``repro live-node`` calls."""
    manifest = Manifest.load(manifest_path)
    topo = manifest.topology
    spec = topo.named(name)
    idx = topo.index_of(name)
    host, _, port = manifest.contact(name).rpartition(":")
    telemetry = Telemetry(
        trace=topo.trace,
        id_base=((idx + 1) * MAX_INCARNATIONS
                 + incarnation % MAX_INCARNATIONS) * ID_BLOCK)
    data_dir = os.path.dirname(os.path.abspath(manifest_path))
    component = build_component(manifest, name, data_dir=data_dir)
    speed = topo.speed if spec.role == "client" else 0.0
    driver = _bind_driver(component, host, int(port), telemetry, speed)
    shipper = _Shipper(driver, manifest, name, incarnation,
                       topo.ship_period)
    tick_hooks = [shipper.tick]
    flight: Optional[FlightRecorder] = None
    if topo.trace:
        # Flight recorder: the node's black box. Every closed span and
        # log line also lands in a bounded on-disk spool, flushed per
        # record, so a SIGKILLed incarnation leaves its last N records
        # behind for the supervisor to recover (DESIGN §14).
        flight = FlightRecorder(
            flight_path(data_dir, name, incarnation),
            telemetry=telemetry, node=name, incarnation=incarnation,
            epoch=shipper.epoch, capacity=topo.flight_capacity)
        tick_hooks.append(flight.tick)
        driver.log_sink = _fan_out_logs(
            [shipper.log_sink, flight.observe_log])
    else:
        driver.log_sink = shipper.log_sink
    if spec.role == "gateway":
        server = _attach_gateway(driver, manifest, name)
        tick_hooks.append(server.poll_parked)
    if topo.trace:
        # Once both cursor-holders have taken a span it can leave memory;
        # without this a busy traced node grows its span list (and gen-2
        # GC pauses) without bound for the life of the process.
        def _trim_spans() -> None:
            upto = shipper.cursor
            if flight is not None:
                upto = min(upto, flight.cursor)
            telemetry.tracer.trim(upto)

        tick_hooks.append(_trim_spans)
    driver.tick_hook = (tick_hooks[0] if len(tick_hooks) == 1
                        else _fan_out(tick_hooks))
    driver.drain_hooks.insert(0, shipper.drain)
    if flight is not None:
        # After the shipper's final report (so the seal records spans the
        # collector already has — recovery is idempotent), before the
        # server/journal close hooks appended by _attach_gateway.
        driver.drain_hooks.insert(
            1, lambda: flight.seal(driver.stop_reason or "deadline"))
    driver.install_signal_handlers()
    shipper.hello()
    try:
        driver.run(deadline)
    finally:
        driver.shutdown()
        if flight is not None:
            flight.close()
    return 0


def _fan_out(hooks: list) -> "callable":
    def dispatch() -> None:
        for hook in hooks:
            hook()
    return dispatch


def _fan_out_logs(sinks: list) -> "callable":
    def dispatch(now: float, component: str, level: str, text: str) -> None:
        for sink in sinks:
            sink(now, component, level, text)
    return dispatch


#: Cap on ``GET /events?wait=`` long-polls, seconds of driver time.
MAX_EVENT_WAIT = 30.0


def _attach_gateway(driver: NetDriver, manifest: Manifest,
                    name: str) -> HttpServer:
    """Hang the HTTP listener off the gateway node's reactor loop.

    One process, one selector loop, two protocols: lingua-franca SCH_*
    frames on the node's world port, HTTP/1.1 on its second preallocated
    port. The router is the sans-IO :class:`GatewayCore`; this wrapper
    owns the clocks (wall latency for histograms, driver time for job
    timestamps) and the ``GET /events?wait=`` long-poll: a poll with
    nothing new returns ``None`` to park the connection, and the reactor
    retries parked requests every tick (``server.poll_parked``) until
    fresh events arrive or the wait deadline passes."""
    work: WorkQueue = driver.component.work
    work.clock = driver.now
    core = GatewayCore(name, work, telemetry=driver.telemetry,
                       started_at=driver.now())
    #: Long-poll deadlines keyed by id(request) — HttpRequest is
    #: __slots__-frozen, so the park state lives here, not on it.
    poll_deadlines: dict[int, float] = {}

    def _long_poll_wait(request) -> bool:
        """True when this request should park instead of answering."""
        path, _, query = request.path.partition("?")
        if request.method != "GET" or path.rstrip("/") != "/events":
            return False
        params = {}
        for pair in query.split("&"):
            key, _, value = pair.partition("=")
            params[key] = value
        try:
            since = int(params.get("since", "-1"))
            wait = float(params.get("wait", "0"))
        except ValueError:
            return False  # let the router 400 it
        if wait <= 0 or core.events.latest_seq > since:
            poll_deadlines.pop(id(request), None)
            return False
        deadline = poll_deadlines.setdefault(
            id(request), driver.now() + min(wait, MAX_EVENT_WAIT))
        if driver.now() >= deadline:
            poll_deadlines.pop(id(request), None)
            return False  # waited long enough: answer empty
        return True

    def app(request):
        if _long_poll_wait(request):
            return None
        t0 = time.monotonic()
        status, payload, route = core.handle(
            request.method, request.path, request.body, driver.now())
        core.observe_latency(route, (time.monotonic() - t0) * 1000.0)
        return render_payload(status, payload, route, close=request.close)

    http_host, _, http_port = manifest.http_contact(name).rpartition(":")
    last: Optional[OSError] = None
    for _ in range(20):
        try:
            server = HttpServer(http_host, int(http_port), app,
                                loop=driver.loop)
            break
        except OSError as exc:  # predecessor's socket still tearing down
            last = exc
            time.sleep(0.1)
    else:
        raise last if last is not None else OSError("http bind failed")
    driver.drain_hooks.append(server.close)
    driver.drain_hooks.append(work.close)
    return server
