"""Localhost port allocation for the bootstrap manifest.

The supervisor must know every node's contact address *before* any node
process exists (clients need scheduler/gossip contacts at construction
time, gossips need the full well-known pool). So ports are allocated up
front: one listening socket per node is bound to port 0, the kernel's
choice is recorded, and the sockets are held open until the whole batch
is allocated — holding them is what keeps the kernel from handing the
same port out twice within one allocation round. They are released just
before the node processes spawn; :class:`~..core.linguafranca.tcp.TcpServer`
binds with ``SO_REUSEADDR``, so the immediate rebind is safe.
"""

from __future__ import annotations

import socket

__all__ = ["PortAllocator"]


class PortAllocator:
    """Reserve distinct localhost ports; release them on demand."""

    def __init__(self, host: str = "127.0.0.1") -> None:
        self.host = host
        self._held: list[socket.socket] = []
        self.allocated: list[int] = []

    def allocate(self, n: int = 1) -> list[int]:
        """Reserve ``n`` fresh ports (held open until :meth:`release`)."""
        ports = []
        for _ in range(n):
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((self.host, 0))
            port = sock.getsockname()[1]
            self._held.append(sock)
            ports.append(port)
            self.allocated.append(port)
        return ports

    def release(self) -> None:
        """Close the held sockets so node processes can bind the ports."""
        for sock in self._held:
            try:
                sock.close()
            except OSError:
                pass
        self._held.clear()

    def __enter__(self) -> "PortAllocator":
        return self

    def __exit__(self, *exc) -> None:
        self.release()
