"""The live deployment plane: the EveryWare world as real OS processes.

The paper's headline result was not a simulation — EveryWare ran the
Ramsey Number Search *live* at SC98 across seven infrastructures
(§3–4). This package is the subsystem that stands up, supervises, and
observes a complete EveryWare world on real sockets:

* :mod:`.topology` — declarative world specs (:class:`NodeSpec`,
  :class:`Topology`, :func:`sc98_topology`) and the bootstrap/discovery
  **manifest** every node reads at startup;
* :mod:`.ports` — localhost port allocation for the manifest;
* :mod:`.node` — the ``repro live-node`` entrypoint: build the node's
  sans-IO component from the manifest, run it under
  :class:`~repro.core.netdriver.NetDriver`, ship telemetry;
* :mod:`.collector` — the wire protocol nodes use to ship wall-clock
  telemetry snapshots and log lines, and the supervisor-side state that
  merges them into the same Chrome-trace/metrics/report formats the
  simulation already emits;
* :mod:`.supervisor` — process spawning, forecast-driven health checks,
  restart policies with backoff, chaos kills, graceful drain;
* :mod:`.harness` — ``run_live``: topology in, merged report out.

The sim-vs-live contract: components are byte-for-byte the same code
that runs under :class:`~repro.core.simdriver.SimDriver`; only the
driver, the clock, and the addressing (``host:port`` instead of
``host/port``) change. See DESIGN.md §11.
"""

from .collector import Collector, NodeRecord
from .harness import LiveReport, check_invariants, run_live
from .node import build_component, run_node
from .ports import PortAllocator
from .supervisor import RestartPolicy, Supervisor
from .topology import (
    Manifest,
    NodeSpec,
    Topology,
    build_manifest,
    sc98_topology,
    serve_topology,
)

__all__ = [
    "Collector",
    "NodeRecord",
    "LiveReport",
    "check_invariants",
    "run_live",
    "build_component",
    "run_node",
    "PortAllocator",
    "RestartPolicy",
    "Supervisor",
    "Manifest",
    "NodeSpec",
    "Topology",
    "build_manifest",
    "sc98_topology",
    "serve_topology",
]
