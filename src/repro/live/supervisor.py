"""Process supervision for live worlds.

The :class:`Supervisor` owns the OS-process side of the deployment
plane: it spawns one ``repro live-node`` process per manifest entry,
watches for exits, restarts crashed nodes under a bounded-backoff
:class:`RestartPolicy` (fresh incarnation number, so tracer id spaces
and collector sequence spaces never collide), exposes the chaos knob
(:meth:`kill`) the harness uses to demonstrate recovery on real
sockets, and drains the world gracefully — SIGTERM first so every node
flushes a final telemetry report, SIGKILL only for stragglers.

Health checking rides the collector's forecast-driven liveness test
(§2.2): :meth:`check_health` asks the collector which nodes have been
silent longer than their *forecast* report gap allows, and (optionally)
treats a live-but-silent process as crashed.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import IO, Optional

from ..obs.flight import flight_path, load_flight
from .collector import Collector
from .topology import Manifest

__all__ = ["RestartPolicy", "Supervisor", "ManagedNode"]


@dataclass(frozen=True)
class RestartPolicy:
    """Bounded restarts with multiplicative backoff.

    The default first-restart backoff deliberately exceeds the
    schedulers' reap deadline (``dead_factor * report_period``, 2s at
    the default topology settings): a crashed client must be declared
    dead — its unit requeued — *before* its replacement reappears at
    the same contact, or the hello would silently adopt the orphan.
    """

    max_restarts: int = 3
    backoff: float = 3.0
    backoff_factor: float = 1.5
    backoff_cap: float = 10.0

    def delay(self, restarts_so_far: int) -> float:
        """Seconds to wait before restart number ``restarts_so_far + 1``."""
        return min(self.backoff * (self.backoff_factor ** restarts_so_far),
                   self.backoff_cap)


@dataclass
class ManagedNode:
    """Supervisor-side state for one manifest entry."""

    name: str
    proc: Optional[subprocess.Popen] = None
    log: Optional[IO[bytes]] = None
    incarnation: int = 0
    restarts: int = 0
    spawns: int = 0
    kills: int = 0
    #: Supervisor-clock time a pending restart fires (None = not pending).
    restart_at: Optional[float] = None
    exit_codes: list[int] = field(default_factory=list)
    state: str = "new"  # new | running | backoff | stopped | failed
    #: Incarnations whose flight-recorder spool was recovered post-mortem.
    flights_recovered: list[int] = field(default_factory=list)

    @property
    def pid(self) -> Optional[int]:
        return self.proc.pid if self.proc is not None else None

    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None


class Supervisor:
    """Spawns and supervises one process per node in the manifest."""

    def __init__(
        self,
        manifest: Manifest,
        manifest_path: str,
        deadline: float,
        collector: Optional[Collector] = None,
        restart: Optional[RestartPolicy] = None,
        log_dir: Optional[str] = None,
        python: Optional[str] = None,
    ) -> None:
        self.manifest = manifest
        self.manifest_path = manifest_path
        self.collector = collector
        self.restart = restart if restart is not None else RestartPolicy()
        self.log_dir = log_dir
        self.python = python or sys.executable
        self._t0 = time.monotonic()
        #: Supervisor-clock time the whole world should be gone.
        self.deadline = deadline
        self.nodes: dict[str, ManagedNode] = {
            spec.name: ManagedNode(name=spec.name)
            for spec in manifest.topology.nodes
        }
        self.draining = False
        #: Nodes the forecast-driven health check flagged while their
        #: process was still alive (name -> count).
        self.suspicions: dict[str, int] = {}
        #: Where dead incarnations' flight-recorder dumps go: defaults to
        #: the collector's :meth:`~.collector.Collector.ingest_flight`,
        #: replaceable for tests. ``None`` disables recovery.
        self.flight_sink = (collector.ingest_flight
                            if collector is not None else None)
        #: Nodes' data dir (flight spools live beside the manifest, the
        #: same convention run_node uses for journals).
        self._data_dir = os.path.dirname(os.path.abspath(manifest_path))

    def now(self) -> float:
        return time.monotonic() - self._t0

    # -- spawning ------------------------------------------------------------
    def _child_env(self) -> dict[str, str]:
        env = dict(os.environ)
        # Children must import the same `repro` this supervisor runs.
        pkg_root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        prior = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (pkg_root + os.pathsep + prior
                             if prior else pkg_root)
        return env

    def _open_log(self, node: ManagedNode) -> int | IO[bytes]:
        if self.log_dir is None:
            return subprocess.DEVNULL
        os.makedirs(self.log_dir, exist_ok=True)
        path = os.path.join(self.log_dir,
                            f"{node.name}.{node.incarnation}.log")
        node.log = open(path, "wb")
        return node.log

    def spawn(self, name: str) -> ManagedNode:
        """Start (or restart) the process for ``name``."""
        node = self.nodes[name]
        remaining = max(self.deadline - self.now(), 0.5)
        cmd = [
            self.python, "-m", "repro", "live-node",
            "--manifest", self.manifest_path,
            "--node", name,
            "--deadline", f"{remaining:.3f}",
            "--incarnation", str(node.incarnation),
        ]
        log = self._open_log(node)
        node.proc = subprocess.Popen(
            cmd, stdout=log, stderr=subprocess.STDOUT,
            stdin=subprocess.DEVNULL, env=self._child_env())
        node.spawns += 1
        node.restart_at = None
        node.state = "running"
        return node

    def spawn_all(self) -> None:
        """Stand up the whole world (manifest order: services before
        clients — :func:`~.topology.sc98_topology` lists them that way,
        though clients retry hellos and would survive any order)."""
        for spec in self.manifest.topology.nodes:
            self.spawn(spec.name)

    # -- supervision ---------------------------------------------------------
    def poll(self) -> None:
        """One supervision turn: reap exits, schedule/execute restarts."""
        now = self.now()
        for node in self.nodes.values():
            if node.proc is not None and node.proc.poll() is not None:
                node.exit_codes.append(node.proc.returncode)
                node.proc = None
                if node.log is not None:
                    node.log.close()
                    node.log = None
                self._recover_flight(node)
                if self.draining or now >= self.deadline:
                    node.state = "stopped"
                elif node.restarts < self.restart.max_restarts:
                    node.restart_at = now + self.restart.delay(node.restarts)
                    node.state = "backoff"
                else:
                    node.state = "failed"
            if (node.restart_at is not None and now >= node.restart_at
                    and not self.draining):
                node.incarnation += 1
                node.restarts += 1
                self.spawn(node.name)

    def _recover_flight(self, node: ManagedNode) -> None:
        """Post-mortem: pull the reaped incarnation's flight-recorder
        spool off disk and hand it to the sink (collector). A SIGKILLed
        process never got to flush its final telemetry report — the
        spool is where its last moments live. Idempotent downstream
        (the collector dedups by span id), so recovering a *graceful*
        exit's spool is harmless."""
        if self.flight_sink is None:
            return
        if node.incarnation in node.flights_recovered:
            return
        dump = load_flight(flight_path(self._data_dir, node.name,
                                       node.incarnation))
        if dump is None:
            return
        node.flights_recovered.append(node.incarnation)
        try:
            self.flight_sink(dump)
        except Exception:
            pass  # recovery must never take the supervisor down

    def check_health(self, restart_silent: bool = False, **forecast_kw) -> list[str]:
        """Forecast-driven liveness sweep (needs a collector).

        Returns the nodes whose silence exceeds their forecast report
        gap *while their process is still alive* — a hung node, not a
        crashed one (crashes are caught by :meth:`poll`). With
        ``restart_silent`` the supervisor treats them as dead: kill,
        then let :meth:`poll` restart under the normal policy.
        """
        if self.collector is None:
            return []
        hung = [name for name in self.collector.silent_nodes(**forecast_kw)
                if name in self.nodes and self.nodes[name].alive()]
        for name in hung:
            self.suspicions[name] = self.suspicions.get(name, 0) + 1
            if restart_silent:
                self.kill(name)
        return hung

    def kill(self, name: str) -> Optional[int]:
        """Chaos knob: SIGKILL a node's process (no drain, no warning —
        the moral equivalent of an SC98 machine dropping off the Grid).
        Returns the pid killed, or None if it was not running."""
        node = self.nodes[name]
        if not node.alive():
            return None
        pid = node.proc.pid
        node.kills += 1
        try:
            node.proc.kill()
        except OSError:
            return None
        return pid

    def alive_count(self) -> int:
        return sum(1 for node in self.nodes.values() if node.alive())

    # -- shutdown ------------------------------------------------------------
    def drain(self, grace: float = 6.0, pump=None, poll_period: float = 0.05) -> None:
        """Graceful world shutdown.

        SIGTERM every live node (their drivers turn it into a reactor
        stop + final telemetry flush), keep pumping ``pump`` (the
        collector's reactor, so those final reports actually land) until
        everyone exits or ``grace`` runs out, then SIGKILL stragglers.
        """
        self.draining = True
        for node in self.nodes.values():
            node.restart_at = None
            if node.alive():
                try:
                    node.proc.send_signal(signal.SIGTERM)
                except OSError:
                    pass
        end = self.now() + grace
        while self.alive_count() and self.now() < end:
            if pump is not None:
                pump()
            else:
                time.sleep(poll_period)
            self.poll()
        for node in self.nodes.values():
            if node.alive():
                try:
                    node.proc.kill()
                    node.proc.wait(timeout=5.0)
                except (OSError, subprocess.TimeoutExpired):
                    pass
        self.poll()

    def statuses(self) -> dict[str, dict]:
        """JSON-safe per-node supervision summary for the report."""
        out = {}
        for name in sorted(self.nodes):
            node = self.nodes[name]
            out[name] = {
                "state": node.state,
                "incarnation": node.incarnation,
                "spawns": node.spawns,
                "restarts": node.restarts,
                "kills": node.kills,
                "exit_codes": list(node.exit_codes),
                "suspicions": self.suspicions.get(name, 0),
                "flights_recovered": list(node.flights_recovered),
            }
        return out
