"""Declarative world specs and the bootstrap/discovery manifest.

A :class:`Topology` names the processes an EveryWare world is made of —
which Gossips, schedulers, persistent state managers, logging servers,
and computational clients — plus the world-wide run parameters (problem
size, reporting periods, the clients' wall-clock compute budget).
:func:`build_manifest` turns a topology into a :class:`Manifest`: every
node gets a concrete ``host:port`` contact *before any process exists*
(clients need scheduler/gossip contacts at construction time, Gossips
need the full well-known pool), and each node process reads the manifest
at startup to find itself and everyone else. This is the live analogue of
the paper's "well-known addresses around the country" (§2.3) bootstrap.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Optional

from .ports import PortAllocator

__all__ = [
    "ROLES",
    "SITES",
    "NodeSpec",
    "Topology",
    "Manifest",
    "build_manifest",
    "sc98_topology",
    "serve_topology",
]

#: The node roles the deployment plane can stand up (Figure 1's boxes:
#: G = gossip, S = scheduler, P = persistent state, L = logging,
#: A = computational client — plus the control plane's HTTP/JSON job
#: gateway, a scheduler whose work queue is fed by external users).
ROLES = ("gossip", "scheduler", "persistent", "logger", "client", "gateway")

#: Default site labels for per-site delivered-vs-available accounting
#: (DESIGN §14); clients are assigned round-robin. The names are the
#: paper's participating institutions.
SITES = ("ucsd", "utk", "anl", "ncsa")


@dataclass
class NodeSpec:
    """One process in the world: a name, a role, role-specific options."""

    name: str
    role: str
    #: Role-specific knobs (e.g. ``{"backend_dir": ...}`` for a
    #: persistent node, ``{"infra": "live"}`` for a client). Must be
    #: JSON-safe: specs travel inside the manifest.
    options: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.role not in ROLES:
            raise ValueError(f"unknown node role {self.role!r}")


@dataclass
class Topology:
    """A world spec: the node list plus world-wide run parameters."""

    nodes: list[NodeSpec] = field(default_factory=list)
    #: Ramsey search target (small by default: live runs measure the
    #: deployment plane, not the search, so counter-examples should
    #: actually be found within seconds).
    k: int = 8
    n: int = 4
    #: Per-client compute budget, ops of wall-clock second (the live
    #: twin of a simulated host's delivered speed).
    speed: float = 300_000.0
    #: Ops budget per minted work unit (small: units should complete
    #: within a live run so assignment/completion/requeue all happen).
    unit_ops_budget: float = 250_000.0
    work_period: float = 0.25
    report_period: float = 0.5
    hello_retry: float = 2.0
    gossip_poll_period: float = 1.5
    gossip_sync_period: float = 1.0
    #: How often nodes ship telemetry snapshots to the collector.
    ship_period: float = 0.5
    #: Causal tracing on live nodes (wall-clock span timestamps).
    trace: bool = True
    #: Flight-recorder ring size per node (DESIGN §14): the most recent
    #: N spans/logs recoverable from a dead incarnation's spool.
    flight_capacity: int = 2048
    seed: int = 0

    def named(self, name: str) -> NodeSpec:
        for spec in self.nodes:
            if spec.name == name:
                return spec
        raise KeyError(f"no node named {name!r} in topology")

    def by_role(self, role: str) -> list[NodeSpec]:
        return [spec for spec in self.nodes if spec.role == role]

    def index_of(self, name: str) -> int:
        for i, spec in enumerate(self.nodes):
            if spec.name == name:
                return i
        raise KeyError(f"no node named {name!r} in topology")

    def validate(self) -> None:
        """Reject worlds the node wiring cannot express."""
        names = [spec.name for spec in self.nodes]
        if len(set(names)) != len(names):
            raise ValueError("duplicate node names in topology")
        if self.by_role("client") and not (
                self.by_role("scheduler") or self.by_role("gateway")):
            raise ValueError("clients need at least one scheduler or "
                             "gateway node")

    def to_dict(self) -> dict:
        return {
            "nodes": [asdict(spec) for spec in self.nodes],
            "params": {
                "k": self.k, "n": self.n, "speed": self.speed,
                "unit_ops_budget": self.unit_ops_budget,
                "work_period": self.work_period,
                "report_period": self.report_period,
                "hello_retry": self.hello_retry,
                "gossip_poll_period": self.gossip_poll_period,
                "gossip_sync_period": self.gossip_sync_period,
                "ship_period": self.ship_period,
                "trace": self.trace,
                "flight_capacity": self.flight_capacity,
                "seed": self.seed,
            },
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Topology":
        topo = cls(nodes=[NodeSpec(**spec) for spec in d.get("nodes", [])])
        for key, value in d.get("params", {}).items():
            if hasattr(topo, key):
                setattr(topo, key, value)
        return topo


def sc98_topology(
    clients: int = 4,
    gossips: int = 2,
    schedulers: int = 1,
    persistents: int = 1,
    loggers: int = 1,
    **params,
) -> Topology:
    """The SC98 service topology (Figure 1) as a live world spec.

    Extra keyword arguments override :class:`Topology` run parameters
    (``k=7, speed=2e5, ...``).
    """
    nodes: list[NodeSpec] = []
    nodes += [NodeSpec(f"gossip{i}", "gossip") for i in range(gossips)]
    nodes += [NodeSpec(f"sched{i}", "scheduler") for i in range(schedulers)]
    nodes += [NodeSpec(f"pst{i}", "persistent") for i in range(persistents)]
    nodes += [NodeSpec(f"logger{i}", "logger") for i in range(loggers)]
    nodes += [NodeSpec(f"cli{i}", "client",
                       options={"infra": "live",
                                "site": SITES[i % len(SITES)]})
              for i in range(clients)]
    topo = Topology(nodes=nodes)
    for key, value in params.items():
        if not hasattr(topo, key):
            raise TypeError(f"unknown topology parameter {key!r}")
        setattr(topo, key, value)
    topo.validate()
    return topo


def serve_topology(
    clients: int = 2,
    gossips: int = 1,
    gateways: int = 1,
    persistents: int = 1,
    loggers: int = 1,
    **params,
) -> Topology:
    """The control-plane world: HTTP/JSON gateways in place of the
    self-feeding scheduler. Gateways *are* schedulers downward — clients
    pull externally-submitted jobs over the usual SCH_* protocol — but
    their queues start empty and fill from ``POST /jobs``.

    Extra keyword arguments override :class:`Topology` run parameters.
    """
    nodes: list[NodeSpec] = []
    nodes += [NodeSpec(f"gossip{i}", "gossip") for i in range(gossips)]
    nodes += [NodeSpec(f"gw{i}", "gateway") for i in range(gateways)]
    nodes += [NodeSpec(f"pst{i}", "persistent") for i in range(persistents)]
    nodes += [NodeSpec(f"logger{i}", "logger") for i in range(loggers)]
    nodes += [NodeSpec(f"cli{i}", "client",
                       options={"infra": "live",
                                "site": SITES[i % len(SITES)]})
              for i in range(clients)]
    topo = Topology(nodes=nodes)
    for key, value in params.items():
        if not hasattr(topo, key):
            raise TypeError(f"unknown topology parameter {key!r}")
        setattr(topo, key, value)
    topo.validate()
    return topo


@dataclass
class Manifest:
    """The bootstrap/discovery document every live node reads at startup.

    Maps each node name to its preallocated ``host:port`` contact and
    carries the collector's contact plus the full topology, so a node
    can wire itself (and find all its peers) from this one file.
    """

    topology: Topology
    contacts: dict[str, str]
    collector: str
    #: HTTP contacts for gateway nodes (name -> ``host:port``): a
    #: gateway listens on *two* preallocated ports, lingua franca for
    #: the world and HTTP/JSON for external users.
    http: dict = field(default_factory=dict)

    def contact(self, name: str) -> str:
        return self.contacts[name]

    def contacts_for(self, role: str) -> list[str]:
        """Contacts of every node with ``role``, in topology order."""
        return [self.contacts[s.name] for s in self.topology.by_role(role)]

    def http_contact(self, name: str) -> str:
        return self.http[name]

    def http_contacts(self) -> list[str]:
        """HTTP contacts of every gateway node, in topology order."""
        return [self.http[s.name] for s in self.topology.by_role("gateway")]

    def to_dict(self) -> dict:
        return {
            "topology": self.topology.to_dict(),
            "contacts": dict(self.contacts),
            "collector": self.collector,
            "http": dict(self.http),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Manifest":
        return cls(
            topology=Topology.from_dict(d["topology"]),
            contacts=dict(d["contacts"]),
            collector=str(d.get("collector", "")),
            http=dict(d.get("http", {})),
        )

    def write(self, path: str) -> str:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=1, sort_keys=True)
            fh.write("\n")
        return path

    @classmethod
    def load(cls, path: str) -> "Manifest":
        with open(path, encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))


def build_manifest(
    topology: Topology,
    collector: str,
    host: str = "127.0.0.1",
    allocator: Optional[PortAllocator] = None,
) -> Manifest:
    """Assign every node a concrete contact address.

    When the caller passes an ``allocator`` it owns the release (hold the
    reserved ports until just before the node processes spawn); otherwise
    ports are allocated and released immediately, which is only safe for
    tests that never bind them.
    """
    topology.validate()
    gateways = topology.by_role("gateway")
    own = allocator is None
    alloc = allocator if allocator is not None else PortAllocator(host)
    ports = alloc.allocate(len(topology.nodes) + len(gateways))
    if own:
        alloc.release()
    contacts = {
        spec.name: f"{host}:{port}"
        for spec, port in zip(topology.nodes, ports)
    }
    # Gateways get a second preallocated port for their HTTP listener.
    http = {
        spec.name: f"{host}:{port}"
        for spec, port in zip(gateways, ports[len(topology.nodes):])
    }
    return Manifest(topology=topology, contacts=contacts,
                    collector=collector, http=http)
