"""``repro live``: topology in, supervised world out, merged report back.

:func:`run_live` is the deployment plane's experiment harness — the live
twin of :func:`repro.experiments.sc98.run_sc98`:

1. allocate ports, write the bootstrap manifest, start the collector;
2. spawn every node as a real OS process under the :class:`Supervisor`;
3. pump the collector + supervision loop until the deadline (optionally
   SIGKILLing one node mid-run — the chaos knob — to demonstrate
   restart-with-backoff plus scheduler-side work requeue on real
   sockets);
4. while the world is still up, probe the persistent state service over
   the wire and run every stored counter-example through
   :func:`repro.ramsey.verify.verify_counter_example_object`;
5. drain gracefully (SIGTERM → final telemetry flush → SIGKILL
   stragglers) and assemble a :class:`LiveReport` — merged Chrome trace,
   merged metrics snapshot, merged logs, per-node supervision history,
   and the invariant checklist (:func:`check_invariants`).
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..core.linguafranca.messages import Message, fresh_req_id
from ..core.linguafranca.tcp import TcpClient, TcpServer, TransportError
from ..core.services.persistent import PST_FETCH, PST_KEYS, PST_LIST, PST_VALUE
from ..core.telemetry import write_trace_json
from ..ramsey.verify import ValidationError, verify_counter_example_object
from .collector import Collector
from .ports import PortAllocator
from .supervisor import RestartPolicy, Supervisor
from .topology import Manifest, Topology, build_manifest

__all__ = ["Probe", "LiveReport", "check_invariants", "run_live"]

#: Stored counter-examples fetched per persistent node when probing.
MAX_PROBED_KEYS = 64


class Probe:
    """A one-shot lingua-franca endpoint for querying a live world.

    NetDriver replies travel as fresh connections to ``message.sender``
    (datagram-style), so a plain request socket never sees them — the
    probe brings its own listening server and correlates replies by
    ``req_id``, exactly like a real EveryWare peer.
    """

    def __init__(self, host: str = "127.0.0.1") -> None:
        self.server = TcpServer(host, 0, self._handle)
        self.client = TcpClient(sender=self.server.contact)
        self._replies: list[Message] = []

    @property
    def contact(self) -> str:
        return self.server.contact

    def _handle(self, message: Message) -> Optional[Message]:
        self._replies.append(message)
        return None

    def request(self, contact: str, mtype: str, body: dict,
                timeout: float = 5.0) -> Optional[Message]:
        """Send a request to ``contact`` and wait for its correlated
        reply; None on timeout or unreachable peer."""
        host, _, port = contact.rpartition(":")
        req_id = fresh_req_id()
        try:
            self.client.send(host, int(port), Message(
                mtype=mtype, sender=self.contact, body=body,
                req_id=req_id), timeout=2.0)
        except (TransportError, OSError, ValueError):
            return None
        end = time.monotonic() + timeout
        while time.monotonic() < end:
            self.server.step(0.05)
            for message in self._replies:
                if message.reply_to == req_id:
                    self._replies.remove(message)
                    return message
        return None

    def close(self) -> None:
        self.server.close()
        self.client.close()


@dataclass
class LiveReport:
    """Everything a live run produced, in one JSON-safe document."""

    duration: float
    topology: dict
    #: Per-node merge of collector state and supervision history.
    nodes: dict[str, dict]
    #: Stored counter-examples probed from persistent state
    #: (``{"key", "k", "n", "verified"}``).
    counter_examples: list[dict]
    verify_failures: list[str]
    #: Chaos events injected (``{"t", "node", "pid"}``).
    chaos: list[dict]
    #: Merged metrics snapshot (:func:`merge_snapshots` shape).
    metrics: dict
    collector: dict
    violations: list[str] = field(default_factory=list)
    artifacts: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "duration": self.duration,
            "topology": self.topology,
            "nodes": self.nodes,
            "counter_examples": self.counter_examples,
            "verify_failures": self.verify_failures,
            "chaos": self.chaos,
            "metrics": self.metrics,
            "collector": self.collector,
            "violations": self.violations,
            "artifacts": self.artifacts,
            "ok": self.ok,
        }


def _counter_total(metrics: dict, prefix: str) -> int:
    return sum(value for key, value in metrics.get("counters", {}).items()
               if key == prefix or key.startswith(prefix + "{"))


def check_invariants(report: LiveReport) -> list[str]:
    """The live world's cross-node consistency checklist.

    Wall-clock runs are nondeterministic, so the CI gate is invariants,
    not byte-diffs: every stored counter-example must verify, no store
    may have been denied, message/assignment accounting must be sane,
    every node must have reported, and an injected kill must leave
    visible recovery evidence (a restart plus a reap or requeue).
    """
    violations: list[str] = []
    for failure in report.verify_failures:
        violations.append(f"counter-example failed verification: {failure}")
    sent = _counter_total(report.metrics, "msg.sent")
    recv = _counter_total(report.metrics, "msg.recv")
    # An abruptly-killed incarnation takes its unshipped send counts
    # with it (its peers already counted the receives), so the strict
    # direction only binds when every process died a clean death.
    unclean = bool(report.chaos) or any(
        node.get("restarts", 0) for node in report.nodes.values())
    if recv > sent and not unclean:
        violations.append(f"received more messages than were sent "
                          f"({recv} > {sent})")
    for name, node in sorted(report.nodes.items()):
        role = node.get("role")
        stats = node.get("stats", {})
        if not node.get("reports"):
            violations.append(f"{name}: never shipped a telemetry report")
        if role == "scheduler":
            if stats.get("units_completed", 0) > stats.get("units_assigned", 0):
                violations.append(
                    f"{name}: completed {stats['units_completed']} units "
                    f"but only assigned {stats['units_assigned']}")
        if role == "persistent" and stats.get("denials", 0):
            violations.append(
                f"{name}: denied {stats['denials']} store(s) — a client "
                f"shipped a corrupt counter-example")
    if report.chaos:
        restarted = [c["node"] for c in report.chaos
                     if report.nodes.get(c["node"], {}).get("restarts", 0) >= 1]
        if not restarted:
            violations.append("a node was killed but never restarted")
        recovery = sum(
            node.get("stats", {}).get("units_requeued", 0)
            + node.get("stats", {}).get("reaps", 0)
            for node in report.nodes.values()
            if node.get("role") == "scheduler")
        if recovery == 0:
            violations.append("a client was killed but no scheduler ever "
                              "reaped or requeued its work")
    return violations


def _probe_counter_examples(
    probe: Probe, manifest: Manifest
) -> tuple[list[dict], list[str]]:
    """LIST+FETCH every ``ramsey/`` key on every persistent node and
    verify the stored objects; returns (records, failure strings)."""
    found: list[dict] = []
    failures: list[str] = []
    for contact in manifest.contacts_for("persistent"):
        listing = probe.request(contact, PST_LIST, {"prefix": "ramsey/"})
        if listing is None or listing.mtype != PST_KEYS:
            failures.append(f"{contact}: persistent LIST went unanswered")
            continue
        keys = [k for k in listing.body.get("keys", []) if isinstance(k, str)]
        for key in keys[:MAX_PROBED_KEYS]:
            reply = probe.request(contact, PST_FETCH, {"key": key})
            if reply is None or reply.mtype != PST_VALUE:
                failures.append(f"{key}: fetch went unanswered")
                continue
            obj = reply.body.get("object", {})
            record = {"key": key, "k": obj.get("k"), "n": obj.get("n"),
                      "verified": False}
            try:
                verify_counter_example_object(obj)
                record["verified"] = True
            except ValidationError as exc:
                failures.append(f"{key}: {exc}")
            found.append(record)
    return found, failures


def run_live(
    topology: Topology,
    duration: float = 12.0,
    kill_at: Optional[float] = None,
    kill_node: Optional[str] = None,
    out: Optional[str] = None,
    restart: Optional[RestartPolicy] = None,
    host: str = "127.0.0.1",
    progress: Optional[Callable[[str], None]] = None,
) -> LiveReport:
    """Stand up ``topology`` as real processes, run it to ``duration``
    wall seconds, and return the merged :class:`LiveReport`.

    ``kill_at`` (seconds into the run) SIGKILLs ``kill_node`` — default:
    the first client — to demonstrate supervisor restart plus scheduler
    requeue on real sockets. With ``out``, the manifest, per-node stdout
    logs, merged ``report.json``/``metrics.json``/``trace.json``, and
    the merged world log land in that directory.
    """
    def say(text: str) -> None:
        if progress is not None:
            progress(text)

    tmp = None
    if out is not None:
        os.makedirs(out, exist_ok=True)
        run_dir = out
    else:
        tmp = tempfile.TemporaryDirectory(prefix="repro-live-")
        run_dir = tmp.name
    manifest_path = os.path.join(run_dir, "manifest.json")

    collector = Collector(host=host)
    allocator = PortAllocator(host)
    try:
        manifest = build_manifest(topology, collector.contact,
                                  host=host, allocator=allocator)
        manifest.write(manifest_path)
        supervisor = Supervisor(
            manifest, manifest_path, deadline=duration,
            collector=collector, restart=restart,
            log_dir=os.path.join(run_dir, "node-logs"))
        say(f"world of {len(topology.nodes)} nodes; manifest {manifest_path}")
        allocator.release()
        supervisor.spawn_all()

        if kill_node is None:
            clients = topology.by_role("client")
            kill_node = clients[0].name if clients else None
        chaos: list[dict] = []
        killed = False
        health_at = 1.0
        while supervisor.now() < duration:
            collector.step(0.02)
            supervisor.poll()
            now = supervisor.now()
            if now >= health_at:
                supervisor.check_health()
                health_at = now + 1.0
            if (kill_at is not None and not killed and now >= kill_at
                    and kill_node is not None):
                pid = supervisor.kill(kill_node)
                killed = True
                if pid is not None:
                    chaos.append({"t": round(now, 3), "node": kill_node,
                                  "pid": pid})
                    say(f"chaos: killed {kill_node} (pid {pid}) "
                        f"at t={now:.1f}s")

        # Probe while the services are still alive, then drain.
        probe = Probe(host)
        try:
            counter_examples, verify_failures = _probe_counter_examples(
                probe, manifest)
        finally:
            probe.close()
        say(f"probed {len(counter_examples)} stored counter-example(s); "
            "draining")
        supervisor.drain(pump=lambda: collector.step(0.02))
        # One final pump so last reports queued during drain all land.
        for _ in range(10):
            collector.step(0.01)

        nodes: dict[str, dict] = {}
        statuses = supervisor.statuses()
        for spec in topology.nodes:
            rec = collector.nodes.get(spec.name)
            nodes[spec.name] = {
                "role": spec.role,
                "contact": manifest.contact(spec.name),
                "hellos": rec.hellos if rec else 0,
                "reports": rec.reports if rec else 0,
                "stop_reason": rec.stop_reason if rec else None,
                "stats": dict(rec.stats) if rec else {},
                **statuses.get(spec.name, {}),
            }
        report = LiveReport(
            duration=duration,
            topology=topology.to_dict(),
            nodes=nodes,
            counter_examples=counter_examples,
            verify_failures=verify_failures,
            chaos=chaos,
            metrics=collector.merged_metrics(),
            collector={
                "contact": collector.contact,
                "bad_messages": collector.bad_messages,
                "reports": sum(r.reports for r in collector.nodes.values()),
                "duplicate_reports": sum(
                    r.duplicate_reports for r in collector.nodes.values()),
                "final_reports": sum(
                    r.final_reports for r in collector.nodes.values()),
            },
        )
        report.violations = check_invariants(report)

        if out is not None:
            merged = collector.merged_tracer()
            trace_path = write_trace_json(
                merged, os.path.join(out, "trace.json"))
            spans_path = os.path.join(out, "spans.json")
            with open(spans_path, "w", encoding="utf-8") as fh:
                json.dump({"spans": [s.to_dict() for s in merged.spans]},
                          fh, indent=1, sort_keys=True)
                fh.write("\n")
            metrics_path = os.path.join(out, "metrics.json")
            with open(metrics_path, "w", encoding="utf-8") as fh:
                json.dump(report.metrics, fh, indent=1, sort_keys=True)
                fh.write("\n")
            log_path = os.path.join(out, "log.txt")
            with open(log_path, "w", encoding="utf-8") as fh:
                for line in collector.merged_logs():
                    fh.write(f"{line['t']:10.3f} {line['node']:>8} "
                             f"[{line['level']}] {line['text']}\n")
            report.artifacts = {
                "manifest": manifest_path, "trace": trace_path,
                "spans": spans_path, "metrics": metrics_path,
                "log": log_path,
            }
            report_path = os.path.join(out, "report.json")
            with open(report_path, "w", encoding="utf-8") as fh:
                json.dump(report.to_dict(), fh, indent=1, sort_keys=True)
                fh.write("\n")
            report.artifacts["report"] = report_path
        return report
    finally:
        allocator.release()
        collector.close()
        if tmp is not None:
            tmp.cleanup()
