"""Persistent worker pool executing kernel tasks on real OS processes.

Transport: one duplex pipe per worker (no feeder threads, no queue
locks), drained with ``multiprocessing.connection.wait`` so the parent
can poll, block, and detect dead workers (EOF) through one mechanism.
Workers are forked, so they inherit the shared-memory arena mapping and
the loaded kernel code — a task message is just ``(ticket, task)`` with
the coloring rows replaced by an arena slot index when they fit.

Crash containment: a worker that dies mid-task takes nothing with it —
the parent keeps every in-flight task and re-executes it inline through
the *reference* kernels, which are bit-identical to the vectorized ones
the worker would have run. Fallbacks are counted, never silent.
"""

from __future__ import annotations

import os
from dataclasses import replace
from multiprocessing import connection, get_context
from time import perf_counter
from typing import Optional

from .kernels import EvalRound, Recount, StepBatch, StepBatchResult, run_task
from .shm import ROW_WORDS, ShmArena

__all__ = ["KernelPool", "CRASH_TASK"]

#: Test hook: a worker receiving this task hard-exits without replying,
#: simulating a segfault/OOM-kill for the crash-fallback path.
CRASH_TASK = "__crash__"

#: Row indices inside one arena slot.
_ROW_RED = 0
_ROW_BEST = 1

#: Marker shipped in place of mask lists that live in an arena slot.
_IN_SLOT = "__shm__"


# -- arena packing ----------------------------------------------------------
def _pack(task, arena: Optional[ShmArena], slot: Optional[int]):
    """Move the task's mask rows into ``slot``; returns the wire task.

    With no arena/slot the task ships whole (inline-payload fallback).
    """
    if arena is None or slot is None:
        return task
    if isinstance(task, (EvalRound, Recount)):
        if task.k >= ROW_WORDS:
            return task
        arena.write_row(slot, _ROW_RED, task.red)
        return replace(task, red=_IN_SLOT)
    if isinstance(task, StepBatch):
        state = task.state
        if state["k"] >= ROW_WORDS:
            return task
        arena.write_row(slot, _ROW_RED, state["red"])
        arena.write_row(slot, _ROW_BEST, state["best_red"])
        trimmed = dict(state)
        trimmed["red"] = trimmed["best_red"] = _IN_SLOT
        return replace(task, state=trimmed)
    return task


def _unpack_task(task, arena: ShmArena, slot: Optional[int]):
    """Worker side: rehydrate mask rows from the arena slot."""
    if slot is None:
        return task
    # NB: marker tests use isinstance, not identity — the string is
    # re-created by pickling on its way through the pipe.
    if isinstance(task, (EvalRound, Recount)) and isinstance(task.red, str):
        return replace(task, red=arena.row(slot, _ROW_RED)[: task.k])
    if isinstance(task, StepBatch) and isinstance(task.state["red"], str):
        k = task.state["k"]
        state = dict(task.state)
        state["red"] = arena.read_row(slot, _ROW_RED, k)
        state["best_red"] = arena.read_row(slot, _ROW_BEST, k)
        return replace(task, state=state)
    return task


def _pack_result(result, arena: ShmArena, slot: Optional[int]):
    """Worker side: write result rows back into the slot it came in."""
    if slot is None or not isinstance(result, StepBatchResult):
        return result
    state = dict(result.state)
    arena.write_row(slot, _ROW_RED, state["red"])
    arena.write_row(slot, _ROW_BEST, state["best_red"])
    state["red"] = state["best_red"] = _IN_SLOT
    return replace(result, state=state)


def _unpack_result(result, arena: Optional[ShmArena], slot: Optional[int]):
    """Parent side: rehydrate result rows before releasing the slot."""
    if (
        slot is None or arena is None
        or not isinstance(result, StepBatchResult)
        or not isinstance(result.state["red"], str)
    ):
        return result
    k = result.state["k"]
    state = dict(result.state)
    state["red"] = arena.read_row(slot, _ROW_RED, k)
    state["best_red"] = arena.read_row(slot, _ROW_BEST, k)
    return replace(result, state=state)


# -- worker loop ------------------------------------------------------------
def _worker_main(conn, arena: ShmArena) -> None:
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        if msg is None:
            break
        ticket, task, slot = msg
        if task == CRASH_TASK:
            os._exit(1)
        t0 = perf_counter()
        try:
            task = _unpack_task(task, arena, slot)
            result = _pack_result(run_task(task, vectorized=True), arena, slot)
            conn.send((ticket, True, result, perf_counter() - t0))
        except BaseException as exc:
            try:
                conn.send((ticket, False, repr(exc), perf_counter() - t0))
            except Exception:
                break
    conn.close()


class KernelPool:
    """N forked workers, a shared arena, and crash-safe task tracking."""

    def __init__(self, workers: int, arena_slots: Optional[int] = None) -> None:
        if workers <= 0:
            raise ValueError("pool needs at least one worker")
        ctx = get_context("fork")
        self.workers = workers
        self.arena = ShmArena(arena_slots or 4 * workers + 4)
        self.fallbacks = 0
        #: Cumulative wall seconds each worker spent executing kernels,
        #: measured inside the worker and shipped back with each reply.
        #: Inline-fallback time (run in the parent) is tracked apart in
        #: ``fallback_busy_s`` so oversubscription shows up honestly.
        self.worker_busy_s = [0.0] * workers
        self.fallback_busy_s = 0.0
        self._next_ticket = 0
        self._conns: list = []
        self._procs: list = []
        self._alive: list[bool] = []
        #: Per-worker in-flight tasks: ticket -> (original task, slot).
        self._pending: list[dict] = []
        self._done: list[tuple] = []
        self._closed = False
        for _ in range(workers):
            parent_end, child_end = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=_worker_main, args=(child_end, self.arena), daemon=True)
            proc.start()
            child_end.close()
            self._conns.append(parent_end)
            self._procs.append(proc)
            self._alive.append(True)
            self._pending.append({})

    # -- submission --------------------------------------------------------
    def pending_counts(self) -> list[int]:
        return [len(p) for p in self._pending]

    def submit(self, task) -> int:
        """Queue a task on the least-loaded live worker; returns a ticket.

        With no live workers the task runs inline immediately (reference
        kernels) and its result is buffered for the next ``collect``.
        """
        ticket = self._next_ticket
        self._next_ticket += 1
        wid = self._pick_worker()
        if wid is None:
            self._fallback(ticket, task)
            return ticket
        slot = None if task == CRASH_TASK else self.arena.acquire()
        wire_task = _pack(task, self.arena, slot)
        if wire_task is task and slot is not None:
            # Didn't fit the arena (k too wide): inline payload instead.
            self.arena.release(slot)
            slot = None
        try:
            self._conns[wid].send((ticket, wire_task, slot))
        except (BrokenPipeError, OSError):
            if slot is not None:
                self.arena.release(slot)
            self._reap(wid)
            self._fallback(ticket, task)
            return ticket
        self._pending[wid][ticket] = (task, slot)
        return ticket

    def _pick_worker(self) -> Optional[int]:
        best = None
        for wid, alive in enumerate(self._alive):
            if not alive:
                continue
            if best is None or len(self._pending[wid]) < len(self._pending[best]):
                best = wid
        return best

    def _fallback(self, ticket: int, task) -> None:
        """Re-execute (or first-execute) a task inline, bit-identically."""
        self.fallbacks += 1
        if task == CRASH_TASK:
            self._done.append((ticket, None))
            return
        t0 = perf_counter()
        result = run_task(task, vectorized=False)
        self.fallback_busy_s += perf_counter() - t0
        self._done.append((ticket, result))

    def _reap(self, wid: int) -> None:
        """A worker died: fall back every task it still held."""
        self._alive[wid] = False
        try:
            self._conns[wid].close()
        except OSError:
            pass
        held = self._pending[wid]
        self._pending[wid] = {}
        for ticket, (task, slot) in sorted(held.items()):
            if slot is not None:
                self.arena.release(slot)
            self._fallback(ticket, task)

    # -- collection --------------------------------------------------------
    def collect(self, block: bool = False) -> list[tuple]:
        """Harvest finished tasks as ``(ticket, result)`` pairs.

        ``block=True`` waits until at least one completion is available
        (buffered fallbacks count). Results arrive in completion order.
        """
        while True:
            self._drain(timeout=0.05 if block else 0)
            if self._done or not block:
                done, self._done = self._done, []
                return done
            if not any(self._pending):
                return []  # nothing in flight anywhere

    def _drain(self, timeout: Optional[float]) -> None:
        live = [self._conns[w] for w, ok in enumerate(self._alive) if ok]
        if not live:
            return
        ready = connection.wait(live, timeout=timeout)
        for conn in ready:
            wid = self._conns.index(conn)
            try:
                ticket, ok, payload, elapsed = conn.recv()
            except (EOFError, OSError):
                self._reap(wid)
                continue
            self.worker_busy_s[wid] += elapsed
            task, slot = self._pending[wid].pop(ticket)
            if ok:
                result = _unpack_result(payload, self.arena, slot)
                if slot is not None:
                    self.arena.release(slot)
                self._done.append((ticket, result))
            else:
                if slot is not None:
                    self.arena.release(slot)
                self._fallback(ticket, task)

    def run(self, task):
        """Submit one task and wait for its result; completions for other
        tickets are buffered for the next ``collect``."""
        ticket = self.submit(task)
        while True:
            batch = self.collect(block=True)
            mine = None
            keep = []
            for done_ticket, result in batch:
                if done_ticket == ticket:
                    mine = (result,)
                else:
                    keep.append((done_ticket, result))
            self._done = keep + self._done
            if mine is not None:
                return mine[0]

    # -- teardown ----------------------------------------------------------
    def close(self) -> None:
        """Stop workers and unlink the arena (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for wid, conn in enumerate(self._conns):
            if self._alive[wid]:
                try:
                    conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
            try:
                conn.close()
            except OSError:
                pass
        for proc in self._procs:
            proc.join(timeout=2.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=1.0)
        self.arena.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass
